//! Batch normalisation — the layer LD-BN-ADAPT adapts at test time.
//!
//! A BN layer computes `y = γ·(x − µ)/σ + β` per channel. The paper's method
//! (§III) touches both halves:
//!
//! 1. the normalisation statistics `(µ, σ)` are **recomputed from the
//!    unlabeled target batch** instead of the training-time running
//!    estimates (controlled here by [`BnStatsPolicy`]), and
//! 2. the affine parameters `(γ, β)` are **updated by one entropy-descent
//!    step** (they are the only [`Parameter`]s a
//!    [`ParamFilter::BnOnly`](crate::ParamFilter::BnOnly) leaves trainable).
//!
//! # State banks
//!
//! Everything the adaptation loop mutates — γ, β and the running statistics
//! — lives in a [`BnState`] that is **swappable**: the layer owns a resident
//! state but exposes [`BatchNorm2d::swap_state`] (trade the resident state
//! for another bank's) and per-image **lanes**
//! ([`BatchNorm2d::swap_lane`] / [`BatchNorm2d::set_lane_count`]) so one
//! batched forward can normalise every image with a *different* state while
//! the convolution weights stay shared. This is what lets a multi-stream
//! server keep per-domain normalisation banks (~1 % of the model per
//! stream) and still pay a single batched forward/backward: image `i` of
//! the batch reads and writes lane `i`'s γ/β/stats, and the backward
//! accumulates each lane's gradient into *that lane's* parameters.
//!
//! Under lane mode the batch statistics are computed **per image** (over
//! `H·W`), exactly what a dedicated batch-1 model would compute — so a lane
//! is bitwise-equivalent to giving the stream its own model copy.

// The normalisation kernels index several per-channel arrays in lockstep;
// plain index loops are clearer than zipped iterator chains here.
#![allow(clippy::needless_range_loop)]

use crate::layer::{Layer, Mode};
use crate::param::{ParamKind, Parameter};
use ld_tensor::parallel::{for_each_chunk, pool_width, ReduceArena, SendPtr};
use ld_tensor::Tensor;

/// The ε used by every BN layer in this stack (no config ever changes it).
/// Exposed so bank consumers (e.g. the quantized epilogue re-fold) can fold
/// a [`BnState`] without a [`BatchNorm2d`] at hand.
pub const BN_EPS: f32 = 1e-5;

/// Which statistics a BN layer normalises with during [`Mode::Eval`].
///
/// During [`Mode::Train`] batch statistics are always used (and running
/// estimates updated), as in every deep-learning framework.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum BnStatsPolicy {
    /// Frozen running statistics from training (standard deployment; the
    /// paper's "no adaptation" reference).
    #[default]
    Running,
    /// Statistics recomputed from the current batch (the paper's choice:
    /// "normalization … recomputed from the unlabeled data").
    Batch,
    /// Batch statistics, additionally folded into the running estimates with
    /// the given momentum — an ablation variant that retains memory across
    /// frames.
    BatchEma {
        /// Running-estimate update momentum in `(0, 1]`.
        momentum: f32,
    },
}

/// Everything a BN layer *adapts*: the affine parameters and the running
/// statistics, decoupled from the layer's geometry so it can be swapped as
/// a unit (per-stream state banks, known-good rollback snapshots).
#[derive(Debug, Clone)]
pub struct BnState {
    /// Per-channel scale γ.
    pub gamma: Parameter,
    /// Per-channel shift β.
    pub beta: Parameter,
    /// Running mean estimate (one value per channel).
    pub running_mean: Tensor,
    /// Running variance estimate (one value per channel).
    pub running_var: Tensor,
}

impl BnState {
    /// Fresh state for `channels` channels: γ=1, β=0, running stats (0, 1).
    pub fn new(name: &str, channels: usize) -> Self {
        BnState {
            gamma: Parameter::new(
                format!("{name}.gamma"),
                ParamKind::BnGamma,
                Tensor::ones(&[channels]),
            ),
            beta: Parameter::new(
                format!("{name}.beta"),
                ParamKind::BnBeta,
                Tensor::zeros(&[channels]),
            ),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.gamma.len()
    }

    /// The per-channel affine this state collapses to under frozen running
    /// statistics: `scale = γ/√(σ²_run + ε)`, `shift = β − scale·µ_run` —
    /// the same fold as [`BatchNorm2d::folded_affine`], computable from a
    /// bank without the owning layer (quantized epilogue re-folds).
    pub fn folded_affine_into(&self, eps: f32, scale: &mut [f32], shift: &mut [f32]) {
        let c = self.channels();
        assert_eq!(scale.len(), c, "folded_affine_into: scale length");
        assert_eq!(shift.len(), c, "folded_affine_into: shift length");
        for ci in 0..c {
            let s =
                self.gamma.value.as_slice()[ci] / (self.running_var.as_slice()[ci] + eps).sqrt();
            scale[ci] = s;
            shift[ci] = self.beta.value.as_slice()[ci] - s * self.running_mean.as_slice()[ci];
        }
    }

    /// Euclidean distance between the γ/β of two states (the telemetry
    /// measure of how far a bank has adapted from its initial values;
    /// running statistics are excluded — the paper's Batch policy never
    /// moves them).
    ///
    /// # Panics
    ///
    /// Panics on a channel-count mismatch.
    pub fn affine_l2_distance(&self, other: &BnState) -> f32 {
        assert_eq!(
            self.channels(),
            other.channels(),
            "affine_l2_distance: channel mismatch"
        );
        let mut sq = 0.0f64;
        for (a, b) in self
            .gamma
            .value
            .as_slice()
            .iter()
            .zip(other.gamma.value.as_slice())
        {
            sq += ((a - b) as f64).powi(2);
        }
        for (a, b) in self
            .beta
            .value
            .as_slice()
            .iter()
            .zip(other.beta.value.as_slice())
        {
            sq += ((a - b) as f64).powi(2);
        }
        (sq as f32).sqrt()
    }
}

struct BnCache {
    x_hat: Tensor,
    /// Per-channel inverse std — `c` entries in resident mode, `n·c` in lane
    /// mode (each lane normalised with its own statistics).
    inv_std: Vec<f32>,
    used_batch_stats: bool,
    /// Reduction count behind the cached statistics (`n·H·W` resident,
    /// `H·W` per lane).
    count: usize,
    /// Whether the cached forward ran in lane mode.
    laned: bool,
}

/// 2-D batch normalisation over NCHW activations.
///
/// The layer is **shared geometry** (channel count, ε, policy, caches) plus
/// a resident [`BnState`]; see the module docs for how states swap and how
/// per-image lanes let one batched forward serve several state banks.
///
/// # Example
///
/// ```
/// use ld_nn::{BatchNorm2d, Layer, Mode};
/// use ld_tensor::Tensor;
///
/// let mut bn = BatchNorm2d::new("bn", 2);
/// let x = Tensor::from_vec(vec![1.0, 3.0, -2.0, 2.0], &[1, 2, 1, 2]);
/// let y = bn.forward(&x, Mode::Train);
/// // Per-channel batch mean is removed.
/// assert!(y.as_slice()[0] + y.as_slice()[1] < 1e-5);
/// ```
pub struct BatchNorm2d {
    name: String,
    /// The resident adaptation state (used when no lanes are bound).
    state: BnState,
    channels: usize,
    /// Statistics policy applied in [`Mode::Eval`].
    pub policy: BnStatsPolicy,
    /// Momentum for running-stat updates during training.
    pub train_momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
    /// Reusable buffers for [`BatchNorm2d::folded_affine`] (sized once).
    fold_scale: Vec<f32>,
    fold_shift: Vec<f32>,
    /// Per-image lane slots (swap targets for external state banks). Only
    /// `lanes[..lanes_bound]` are live; the rest is reusable storage.
    lanes: Vec<BnState>,
    /// Number of bound lanes; 0 = resident mode.
    lanes_bound: usize,
    /// Per-image `[Σdy | Σdy·x̂]` replica slots for the batch-parallel
    /// backward (deterministic image-order reduction; grow-only).
    arena: ReduceArena,
}

impl BatchNorm2d {
    /// Creates a BN layer with γ=1, β=0, running stats (0, 1).
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(name: &str, channels: usize) -> Self {
        assert!(channels > 0, "BatchNorm2d: zero channels");
        BatchNorm2d {
            state: BnState::new(name, channels),
            name: name.to_owned(),
            channels,
            policy: BnStatsPolicy::Running,
            train_momentum: 0.1,
            eps: BN_EPS,
            cache: None,
            fold_scale: Vec::new(),
            fold_shift: Vec::new(),
            lanes: Vec::new(),
            lanes_bound: 0,
            arena: ReduceArena::new(),
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The normalisation ε.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Current running mean (one value per channel).
    pub fn running_mean(&self) -> &Tensor {
        &self.state.running_mean
    }

    /// Current running variance (one value per channel).
    pub fn running_var(&self) -> &Tensor {
        &self.state.running_var
    }

    /// Immutable access to γ.
    pub fn gamma(&self) -> &Parameter {
        &self.state.gamma
    }

    /// Immutable access to β.
    pub fn beta(&self) -> &Parameter {
        &self.state.beta
    }

    /// The resident adaptation state.
    pub fn state(&self) -> &BnState {
        &self.state
    }

    /// Mutable access to the resident state (callers that mutate between a
    /// forward and its backward get the same self-inflicted inconsistency
    /// they always could via `visit_params`).
    pub fn state_mut(&mut self) -> &mut BnState {
        &mut self.state
    }

    /// A deep copy of the resident state (bank construction).
    pub fn extract_state(&self) -> BnState {
        self.state.clone()
    }

    /// Trades the resident state for `other` (whole-bank swap). O(1): the
    /// tensors move, nothing is copied. Drops the forward cache — the cached
    /// intermediates belong to the outgoing state.
    ///
    /// # Panics
    ///
    /// Panics on a channel-count mismatch.
    pub fn swap_state(&mut self, other: &mut BnState) {
        assert_eq!(
            other.channels(),
            self.channels,
            "swap_state: {} channels, want {}",
            other.channels(),
            self.channels
        );
        std::mem::swap(&mut self.state, other);
        self.cache = None;
    }

    /// Trades the state bound to per-image lane `lane` for `state`, growing
    /// the lane storage (clones of the resident state) as needed. Call
    /// [`BatchNorm2d::set_lane_count`] to activate the bound lanes.
    ///
    /// # Panics
    ///
    /// Panics on a channel-count mismatch.
    pub fn swap_lane(&mut self, lane: usize, state: &mut BnState) {
        assert_eq!(
            state.channels(),
            self.channels,
            "swap_lane: {} channels, want {}",
            state.channels(),
            self.channels
        );
        while self.lanes.len() <= lane {
            self.lanes.push(self.state.clone());
        }
        std::mem::swap(&mut self.lanes[lane], state);
    }

    /// Sets the number of live lanes: the next forward must see a batch of
    /// exactly `count` images and will normalise image `i` with lane `i`'s
    /// state (per-image statistics under batch policies). `0` returns the
    /// layer to resident mode. Drops the forward cache either way.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the lanes bound via
    /// [`BatchNorm2d::swap_lane`].
    pub fn set_lane_count(&mut self, count: usize) {
        assert!(
            count <= self.lanes.len(),
            "set_lane_count: {count} lanes bound, only {} exist",
            self.lanes.len()
        );
        self.lanes_bound = count;
        self.cache = None;
    }

    /// Whether per-image lanes are active (the fused conv→BN path must not
    /// fold the resident state while lanes are bound).
    pub fn lanes_active(&self) -> bool {
        self.lanes_bound > 0
    }

    /// The per-channel affine this layer collapses to under **frozen running
    /// statistics**: `y = scale[c]·x + shift[c]` with
    /// `scale = γ/√(σ²_run + ε)` and `shift = β − scale·µ_run`.
    ///
    /// Drops the cached forward intermediates, making a subsequent
    /// [`Layer::backward`] panic with "backward before forward".
    ///
    /// The fused conv→BN eval path calls this when it bypasses
    /// [`Layer::forward`]: the cache would otherwise hold a *previous*
    /// input's statistics, and a backward run against it would be silently
    /// wrong rather than loudly impossible.
    pub fn invalidate_cache(&mut self) {
        self.cache = None;
    }

    /// This is the conv→BN folding used by the fused eval path
    /// ([`Conv2d::forward_fused_affine`](crate::Conv2d::forward_fused_affine)):
    /// a preceding convolution applies the affine as its output epilogue and
    /// the whole BN traversal is skipped. Only valid to *use* when the layer
    /// would normalise with running stats (eval + [`BnStatsPolicy::Running`])
    /// **and no lanes are bound**; callers check both. Recomputed on every
    /// call into reusable buffers, so current γ/β/running values are always
    /// reflected without steady-state allocation.
    pub fn folded_affine(&mut self) -> (&[f32], &[f32]) {
        self.fold_scale.resize(self.channels, 0.0);
        self.fold_shift.resize(self.channels, 0.0);
        self.state
            .folded_affine_into(self.eps, &mut self.fold_scale, &mut self.fold_shift);
        (&self.fold_scale, &self.fold_shift)
    }

    fn fold_into_running(state: &mut BnState, mean: &[f32], var: &[f32], momentum: f32) {
        for c in 0..mean.len() {
            let rm = &mut state.running_mean.as_mut_slice()[c];
            *rm = (1.0 - momentum) * *rm + momentum * mean[c];
            let rv = &mut state.running_var.as_mut_slice()[c];
            *rv = (1.0 - momentum) * *rv + momentum * var[c];
        }
    }

    /// Whether this `(mode, policy)` combination normalises with batch
    /// statistics.
    fn uses_batch_stats(&self, mode: Mode) -> bool {
        match (mode, self.policy) {
            (Mode::Train, _) => true,
            (Mode::Eval, BnStatsPolicy::Running) => false,
            (Mode::Eval, BnStatsPolicy::Batch | BnStatsPolicy::BatchEma { .. }) => true,
        }
    }

    /// The lane-mode forward: image `i` is normalised with lane `i`'s state,
    /// and batch statistics are **per image** (over `H·W`) — the exact
    /// accumulation a dedicated batch-1 model would perform, so a lane's
    /// output is bitwise-identical to that stream owning a model copy.
    fn forward_lanes(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let (n, c, h, w) = x.dims4();
        assert_eq!(
            n, self.lanes_bound,
            "BatchNorm2d {}: batch {n} does not match {} bound lanes",
            self.name, self.lanes_bound
        );
        let use_batch = self.uses_batch_stats(mode);
        let plane = h * w;
        let inv_count = 1.0 / plane as f32;

        let mut x_hat = Tensor::zeros(x.shape_dims());
        let mut out = Tensor::zeros(x.shape_dims());
        let mut inv_std = vec![0.0f32; n * c];
        let mut mean_buf = vec![0.0f32; c];
        let mut var_buf = vec![0.0f32; c];
        for ni in 0..n {
            let lane = &mut self.lanes[ni];
            if use_batch {
                for ci in 0..c {
                    let base = (ni * c + ci) * plane;
                    let mut s = 0.0;
                    for i in 0..plane {
                        s += x.as_slice()[base + i];
                    }
                    mean_buf[ci] = s * inv_count;
                }
                for ci in 0..c {
                    let base = (ni * c + ci) * plane;
                    let m = mean_buf[ci];
                    let mut s = 0.0;
                    for i in 0..plane {
                        let d = x.as_slice()[base + i] - m;
                        s += d * d;
                    }
                    var_buf[ci] = s * inv_count;
                }
                match (mode, self.policy) {
                    (Mode::Train, _) => {
                        Self::fold_into_running(lane, &mean_buf, &var_buf, self.train_momentum);
                    }
                    (Mode::Eval, BnStatsPolicy::BatchEma { momentum }) => {
                        Self::fold_into_running(lane, &mean_buf, &var_buf, momentum);
                    }
                    _ => {}
                }
            } else {
                mean_buf.copy_from_slice(lane.running_mean.as_slice());
                var_buf.copy_from_slice(lane.running_var.as_slice());
            }
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                let is = 1.0 / (var_buf[ci] + self.eps).sqrt();
                inv_std[ni * c + ci] = is;
                let mu = mean_buf[ci];
                let g = lane.gamma.value.as_slice()[ci];
                let b = lane.beta.value.as_slice()[ci];
                for i in 0..plane {
                    let xh = (x.as_slice()[base + i] - mu) * is;
                    x_hat.as_mut_slice()[base + i] = xh;
                    out.as_mut_slice()[base + i] = g * xh + b;
                }
            }
        }
        self.cache = Some(BnCache {
            x_hat,
            inv_std,
            used_batch_stats: use_batch,
            count: plane,
            laned: true,
        });
        out
    }

    /// The lane-mode backward: each lane's gradient contribution accumulates
    /// into *that lane's* γ/β, and the input gradient uses the lane's own
    /// cached statistics (reduction count `H·W`).
    ///
    /// Batch-parallel: every image's reductions land in its own replica slot
    /// and its (disjoint) `grad_in` slice; the γ/β application then walks
    /// the slots serially in lane order. Lane `i`'s gradients touch only
    /// bank `i` — the isolation contract the per-stream banks rely on — and
    /// the result is bitwise independent of pool width.
    fn backward_lanes(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("laned cache");
        let (n, c, h, w) = grad_out.dims4();
        assert_eq!(
            n, self.lanes_bound,
            "BatchNorm2d {}: gradient batch {n} does not match {} bound lanes",
            self.name, self.lanes_bound
        );
        let plane = h * w;
        let m = cache.count as f32;

        let mut grad_in = Tensor::zeros(grad_out.shape_dims());
        let gin_ptr = SendPtr(grad_in.as_mut_slice().as_mut_ptr());
        let lanes = &self.lanes[..n];
        let go = grad_out.as_slice();
        let xh = cache.x_hat.as_slice();
        let work = if n >= pool_width() {
            6 * n * c * plane
        } else {
            0
        };
        self.arena.map_slots(n, 2 * c, work, |ni, slot| {
            let (sum_dy, sum_dy_xhat) = slot.split_at_mut(c);
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                let mut s = 0.0;
                let mut sx = 0.0;
                for i in 0..plane {
                    let dy = go[base + i];
                    s += dy;
                    sx += dy * xh[base + i];
                }
                sum_dy[ci] = s;
                sum_dy_xhat[ci] = sx;
            }
            let lane = &lanes[ni];
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                let g = lane.gamma.value.as_slice()[ci];
                let is = cache.inv_std[ni * c + ci];
                // SAFETY: image `ni`'s grad_in slice is written only by the
                // chunk owning this image.
                let gin = unsafe { gin_ptr.slice_mut(base, plane) };
                if cache.used_batch_stats {
                    let k1 = sum_dy[ci] / m;
                    let k2 = sum_dy_xhat[ci] / m;
                    for i in 0..plane {
                        gin[i] = g * is * (go[base + i] - k1 - xh[base + i] * k2);
                    }
                } else {
                    let scale = g * is;
                    for i in 0..plane {
                        gin[i] = go[base + i] * scale;
                    }
                }
            }
        });
        // Per-lane parameter gradients, serially in lane order (each lane is
        // one image, so this *is* the ordered reduction).
        for ni in 0..n {
            let slot = self.arena.slot_mut(ni);
            let lane = &mut self.lanes[ni];
            if lane.gamma.trainable {
                for ci in 0..c {
                    lane.gamma.grad.as_mut_slice()[ci] += slot[c + ci];
                }
            }
            if lane.beta.trainable {
                for ci in 0..c {
                    lane.beta.grad.as_mut_slice()[ci] += slot[ci];
                }
            }
        }
        grad_in
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let (n, c, h, w) = x.dims4();
        assert_eq!(
            c, self.channels,
            "BatchNorm2d {}: {c} channels, want {}",
            self.name, self.channels
        );
        if self.lanes_bound > 0 {
            return self.forward_lanes(x, mode);
        }
        let use_batch = self.uses_batch_stats(mode);

        let (mean, var) = if use_batch {
            let m = x.channel_mean_nchw();
            let v = x.channel_var_nchw(&m);
            match (mode, self.policy) {
                (Mode::Train, _) => {
                    let mom = self.train_momentum;
                    Self::fold_into_running(&mut self.state, m.as_slice(), v.as_slice(), mom);
                }
                (Mode::Eval, BnStatsPolicy::BatchEma { momentum }) => {
                    Self::fold_into_running(&mut self.state, m.as_slice(), v.as_slice(), momentum);
                }
                _ => {}
            }
            (m, v)
        } else {
            (
                self.state.running_mean.clone(),
                self.state.running_var.clone(),
            )
        };

        let plane = h * w;
        let mut x_hat = Tensor::zeros(x.shape_dims());
        let mut out = Tensor::zeros(x.shape_dims());
        let mut inv_std = vec![0.0f32; c];
        for ci in 0..c {
            inv_std[ci] = 1.0 / (var.as_slice()[ci] + self.eps).sqrt();
        }
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                let mu = mean.as_slice()[ci];
                let is = inv_std[ci];
                let g = self.state.gamma.value.as_slice()[ci];
                let b = self.state.beta.value.as_slice()[ci];
                for i in 0..plane {
                    let xh = (x.as_slice()[base + i] - mu) * is;
                    x_hat.as_mut_slice()[base + i] = xh;
                    out.as_mut_slice()[base + i] = g * xh + b;
                }
            }
        }
        self.cache = Some(BnCache {
            x_hat,
            inv_std,
            used_batch_stats: use_batch,
            count: n * plane,
            laned: false,
        });
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("BatchNorm2d::backward before forward");
        assert_eq!(
            grad_out.shape_dims(),
            cache.x_hat.shape_dims(),
            "BatchNorm2d::backward: gradient shape mismatch"
        );
        if cache.laned {
            return self.backward_lanes(grad_out);
        }
        let (n, c, h, w) = grad_out.dims4();
        let plane = h * w;
        let m = cache.count as f32;
        let go = grad_out.as_slice();
        let xh = cache.x_hat.as_slice();
        let work = if n >= pool_width() {
            6 * n * c * plane
        } else {
            0
        };

        // Per-channel reductions Σdy and Σ dy·x̂: each image reduces into
        // its own `[Σdy | Σdy·x̂]` replica slot, then the slots fold in
        // image order — the exact accumulation order of the old sequential
        // loop, so this is bitwise-identical at every pool width.
        let mut sum_dy = vec![0.0f32; c];
        let mut sum_dy_xhat = vec![0.0f32; c];
        self.arena.map_slots(n, 2 * c, work, |ni, slot| {
            let (sd, sdx) = slot.split_at_mut(c);
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                let mut s = 0.0;
                let mut sx = 0.0;
                for i in 0..plane {
                    let dy = go[base + i];
                    s += dy;
                    sx += dy * xh[base + i];
                }
                sd[ci] = s;
                sdx[ci] = sx;
            }
        });
        self.arena.fold_ordered_at(0, &mut sum_dy);
        self.arena.fold_ordered_at(c, &mut sum_dy_xhat);

        if self.state.gamma.trainable {
            for ci in 0..c {
                self.state.gamma.grad.as_mut_slice()[ci] += sum_dy_xhat[ci];
            }
        }
        if self.state.beta.trainable {
            for ci in 0..c {
                self.state.beta.grad.as_mut_slice()[ci] += sum_dy[ci];
            }
        }

        // The input-gradient pass is per-element given the global sums:
        // images fan over the pool, each writing its disjoint slice.
        let mut grad_in = Tensor::zeros(grad_out.shape_dims());
        let gin_ptr = SendPtr(grad_in.as_mut_slice().as_mut_ptr());
        let gamma = self.state.gamma.value.as_slice();
        let use_batch = cache.used_batch_stats;
        let inv_std = &cache.inv_std;
        let (sum_dy, sum_dy_xhat) = (&sum_dy, &sum_dy_xhat);
        for_each_chunk(n, work, |images| {
            for ni in images {
                for ci in 0..c {
                    let base = (ni * c + ci) * plane;
                    let g = gamma[ci];
                    let is = inv_std[ci];
                    // SAFETY: image `ni`'s grad_in slice is written only by
                    // the chunk owning this image.
                    let gin = unsafe { gin_ptr.slice_mut(base, plane) };
                    if use_batch {
                        let k1 = sum_dy[ci] / m;
                        let k2 = sum_dy_xhat[ci] / m;
                        for i in 0..plane {
                            gin[i] = g * is * (go[base + i] - k1 - xh[base + i] * k2);
                        }
                    } else {
                        let scale = g * is;
                        for i in 0..plane {
                            gin[i] = go[base + i] * scale;
                        }
                    }
                }
            }
        });
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        f(&mut self.state.gamma);
        f(&mut self.state.beta);
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
        let prefix = self.name.clone();
        f(&format!("{prefix}.gamma"), &mut self.state.gamma.value);
        f(&format!("{prefix}.beta"), &mut self.state.beta.value);
        f(
            &format!("{prefix}.running_mean"),
            &mut self.state.running_mean,
        );
        f(
            &format!("{prefix}.running_var"),
            &mut self.state.running_var,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_tensor::rng::SeededRng;

    #[test]
    fn train_forward_normalises_batch() {
        let mut bn = BatchNorm2d::new("bn", 2);
        let mut rng = SeededRng::new(1);
        let x = rng.uniform_tensor(&[4, 2, 3, 3], -3.0, 5.0);
        let y = bn.forward(&x, Mode::Train);
        let m = y.channel_mean_nchw();
        let v = y.channel_var_nchw(&m);
        for c in 0..2 {
            assert!(m.as_slice()[c].abs() < 1e-4);
            assert!((v.as_slice()[c] - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn train_updates_running_stats_toward_batch() {
        let mut bn = BatchNorm2d::new("bn", 1);
        let x = Tensor::full(&[2, 1, 2, 2], 10.0);
        bn.forward(&x, Mode::Train);
        // mean moved from 0 toward 10 by momentum 0.1.
        assert!((bn.running_mean().as_slice()[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn eval_running_policy_uses_frozen_stats() {
        let mut bn = BatchNorm2d::new("bn", 1);
        bn.state_mut().running_mean = Tensor::from_vec(vec![5.0], &[1]);
        bn.state_mut().running_var = Tensor::from_vec(vec![4.0], &[1]);
        let x = Tensor::full(&[1, 1, 1, 2], 9.0);
        let y = bn.forward(&x, Mode::Eval);
        // (9 − 5)/2 = 2.
        for &v in y.as_slice() {
            assert!((v - 2.0).abs() < 1e-4);
        }
    }

    #[test]
    fn eval_batch_policy_recomputes_stats() {
        let mut bn = BatchNorm2d::new("bn", 1);
        bn.policy = BnStatsPolicy::Batch;
        // Running stats are garbage; batch stats must be used instead.
        bn.state_mut().running_mean = Tensor::from_vec(vec![1000.0], &[1]);
        let x = Tensor::from_vec(vec![1.0, 3.0], &[1, 1, 1, 2]);
        let y = bn.forward(&x, Mode::Eval);
        assert!(
            (y.as_slice()[0] + y.as_slice()[1]).abs() < 1e-4,
            "batch-normalised output sums to ~0"
        );
        // Batch policy must NOT touch running stats.
        assert_eq!(bn.running_mean().as_slice()[0], 1000.0);
    }

    #[test]
    fn eval_batch_ema_policy_updates_running() {
        let mut bn = BatchNorm2d::new("bn", 1);
        bn.policy = BnStatsPolicy::BatchEma { momentum: 0.5 };
        let x = Tensor::full(&[1, 1, 1, 2], 8.0);
        bn.forward(&x, Mode::Eval);
        assert!((bn.running_mean().as_slice()[0] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn backward_matches_finite_difference_batch_stats() {
        let mut bn = BatchNorm2d::new("bn", 2);
        let mut rng = SeededRng::new(3);
        bn.state_mut().gamma.value = rng.uniform_tensor(&[2], 0.5, 1.5);
        bn.state_mut().beta.value = rng.uniform_tensor(&[2], -0.5, 0.5);
        let x = rng.uniform_tensor(&[2, 2, 2, 2], -1.0, 1.0);

        // loss = Σ y² / 2  ⇒ dL/dy = y.
        let y = bn.forward(&x, Mode::Train);
        let gin = bn.backward(&y);

        let eps = 1e-2;
        let loss = |bn: &mut BatchNorm2d, x: &Tensor| {
            let y = bn.forward(x, Mode::Train);
            0.5 * y.sq_norm()
        };
        for &idx in &[0usize, 5, 10, 15] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fd = (loss(&mut bn, &xp) - loss(&mut bn, &xm)) / (2.0 * eps);
            let an = gin.as_slice()[idx];
            assert!((fd - an).abs() < 2e-2, "dx[{idx}]: fd {fd} an {an}");
        }
        // γ gradient.
        let _ = loss(&mut bn, &x); // refresh cache
        bn.zero_grad();
        let y = bn.forward(&x, Mode::Train);
        bn.backward(&y.clone());
        for ci in 0..2 {
            let base = bn.gamma().value.clone();
            let mut gp = base.clone();
            gp.as_mut_slice()[ci] += eps;
            bn.state_mut().gamma.value = gp;
            let fp = loss(&mut bn, &x);
            let mut gm = base.clone();
            gm.as_mut_slice()[ci] -= eps;
            bn.state_mut().gamma.value = gm;
            let fm = loss(&mut bn, &x);
            bn.state_mut().gamma.value = base;
            let fd = (fp - fm) / (2.0 * eps);
            let an = bn.gamma().grad.as_slice()[ci];
            assert!((fd - an).abs() < 3e-2, "dγ[{ci}]: fd {fd} an {an}");
        }
    }

    #[test]
    fn backward_running_stats_is_linear_scaling() {
        let mut bn = BatchNorm2d::new("bn", 1);
        bn.state_mut().running_var = Tensor::from_vec(vec![3.0], &[1]);
        bn.state_mut().gamma.value = Tensor::from_vec(vec![2.0], &[1]);
        let x = Tensor::full(&[1, 1, 1, 3], 1.0);
        bn.forward(&x, Mode::Eval);
        let g = bn.backward(&Tensor::ones(&[1, 1, 1, 3]));
        let want = 2.0 / (3.0f32 + 1e-5).sqrt();
        for &v in g.as_slice() {
            assert!((v - want).abs() < 1e-5);
        }
    }

    #[test]
    fn folded_affine_equals_running_stats_forward() {
        let mut bn = BatchNorm2d::new("bn", 3);
        let mut rng = SeededRng::new(21);
        bn.state_mut().gamma.value = rng.uniform_tensor(&[3], 0.5, 1.5);
        bn.state_mut().beta.value = rng.uniform_tensor(&[3], -0.5, 0.5);
        bn.state_mut().running_mean = rng.uniform_tensor(&[3], -1.0, 1.0);
        bn.state_mut().running_var = rng.uniform_tensor(&[3], 0.5, 2.0);
        let x = rng.uniform_tensor(&[2, 3, 4, 4], -2.0, 2.0);
        let want = bn.forward(&x, Mode::Eval);
        let (scale, shift) = bn.folded_affine();
        let (n, c, h, w) = x.dims4();
        let plane = h * w;
        for ni in 0..n {
            for ci in 0..c {
                for i in 0..plane {
                    let idx = (ni * c + ci) * plane + i;
                    let got = scale[ci] * x.as_slice()[idx] + shift[ci];
                    let ref_v = want.as_slice()[idx];
                    assert!((got - ref_v).abs() < 1e-5, "{got} vs {ref_v}");
                }
            }
        }
    }

    #[test]
    fn bn_param_count_is_two_per_channel() {
        let mut bn = BatchNorm2d::new("bn", 8);
        assert_eq!(bn.param_count(), 16);
    }

    #[test]
    fn single_image_batch_uses_spatial_statistics() {
        // bs=1 adaptation works because stats are over H·W.
        let mut bn = BatchNorm2d::new("bn", 1);
        bn.policy = BnStatsPolicy::Batch;
        let x = Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0], &[1, 1, 2, 2]);
        let y = bn.forward(&x, Mode::Eval);
        let mean: f32 = y.as_slice().iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
    }

    #[test]
    fn swap_state_trades_whole_banks() {
        let mut bn = BatchNorm2d::new("bn", 2);
        bn.policy = BnStatsPolicy::Running;
        let mut other = BnState::new("bank", 2);
        other.gamma.value = Tensor::from_vec(vec![2.0, 3.0], &[2]);
        let x = Tensor::ones(&[1, 2, 1, 1]);

        let resident = bn.forward(&x, Mode::Eval).as_slice().to_vec();
        bn.swap_state(&mut other);
        let swapped = bn.forward(&x, Mode::Eval).as_slice().to_vec();
        assert_ne!(resident, swapped, "bank affine must take effect");
        // `other` now holds the original resident state.
        assert_eq!(other.gamma.value.as_slice(), &[1.0, 1.0]);
        bn.swap_state(&mut other);
        let back = bn.forward(&x, Mode::Eval).as_slice().to_vec();
        assert_eq!(resident, back, "round-trip restores the resident state");
    }

    #[test]
    #[should_panic(expected = "channels")]
    fn swap_state_rejects_channel_mismatch() {
        let mut bn = BatchNorm2d::new("bn", 2);
        bn.swap_state(&mut BnState::new("bad", 3));
    }

    /// Per-image lanes: a batch where each image carries its own state bank
    /// must match, bitwise, running each image alone through a layer holding
    /// that bank as its resident state (forward AND parameter gradients).
    #[test]
    fn lane_forward_backward_bitwise_match_dedicated_layers() {
        let mut rng = SeededRng::new(17);
        let c = 3;
        let n = 2;
        let x = rng.uniform_tensor(&[n, c, 4, 5], -2.0, 2.0);
        let gout = rng.uniform_tensor(&[n, c, 4, 5], -1.0, 1.0);

        for policy in [BnStatsPolicy::Batch, BnStatsPolicy::Running] {
            // Two divergent banks.
            let mut banks: Vec<BnState> = (0..n)
                .map(|i| {
                    let mut s = BnState::new("bank", c);
                    s.gamma.value = rng.uniform_tensor(&[c], 0.5, 1.5 + i as f32);
                    s.beta.value = rng.uniform_tensor(&[c], -0.5, 0.5);
                    s.running_mean = rng.uniform_tensor(&[c], -1.0, 1.0);
                    s.running_var = rng.uniform_tensor(&[c], 0.5, 2.0);
                    s
                })
                .collect();

            // Reference: each image alone in a dedicated layer.
            let mut want_out = Vec::new();
            let mut want_gin = Vec::new();
            let mut want_ggrad = Vec::new();
            for (i, bank) in banks.iter_mut().enumerate() {
                let mut solo = BatchNorm2d::new("bn", c);
                solo.policy = policy;
                solo.swap_state(bank);
                let xi = Tensor::from_vec(x.image(i).to_vec(), &[1, c, 4, 5]);
                let gi = Tensor::from_vec(gout.image(i).to_vec(), &[1, c, 4, 5]);
                want_out.push(solo.forward(&xi, Mode::Eval));
                want_gin.push(solo.backward(&gi));
                solo.swap_state(bank);
                want_ggrad.push(bank.gamma.grad.clone());
                bank.gamma.zero_grad();
                bank.beta.zero_grad();
            }

            // Lanes: one batched layer, per-image banks.
            let mut bn = BatchNorm2d::new("bn", c);
            bn.policy = policy;
            for (i, bank) in banks.iter_mut().enumerate() {
                bn.swap_lane(i, bank);
            }
            bn.set_lane_count(n);
            let out = bn.forward(&x, Mode::Eval);
            let gin = bn.backward(&gout);
            for (i, bank) in banks.iter_mut().enumerate() {
                bn.swap_lane(i, bank);
            }
            bn.set_lane_count(0);

            for i in 0..n {
                assert_eq!(out.image(i), want_out[i].as_slice(), "{policy:?} out {i}");
                assert_eq!(gin.image(i), want_gin[i].as_slice(), "{policy:?} gin {i}");
                assert_eq!(
                    banks[i].gamma.grad.as_slice(),
                    want_ggrad[i].as_slice(),
                    "{policy:?} γ-grad {i}"
                );
            }
        }
    }

    #[test]
    fn lane_count_zero_restores_resident_behaviour() {
        let mut rng = SeededRng::new(31);
        let x = rng.uniform_tensor(&[2, 2, 3, 3], -1.0, 1.0);
        let mut bn = BatchNorm2d::new("bn", 2);
        bn.policy = BnStatsPolicy::Batch;
        let resident = bn.forward(&x, Mode::Eval);

        let mut bank = BnState::new("bank", 2);
        bank.gamma.value = Tensor::from_vec(vec![5.0, 5.0], &[2]);
        bn.swap_lane(0, &mut bank);
        bn.swap_lane(1, &mut BnState::new("b1", 2));
        bn.set_lane_count(2);
        let laned = bn.forward(&x, Mode::Eval);
        assert_ne!(resident.as_slice(), laned.as_slice());

        bn.set_lane_count(0);
        let back = bn.forward(&x, Mode::Eval);
        assert_eq!(resident.as_slice(), back.as_slice());
    }

    #[test]
    fn affine_l2_distance_tracks_movement() {
        let a = BnState::new("a", 4);
        let mut b = BnState::new("b", 4);
        assert_eq!(a.affine_l2_distance(&b), 0.0);
        b.gamma.value.as_mut_slice()[0] += 3.0;
        b.beta.value.as_mut_slice()[1] -= 4.0;
        assert!((a.affine_l2_distance(&b) - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "bound lanes")]
    fn lane_mode_rejects_mismatched_batch() {
        let mut bn = BatchNorm2d::new("bn", 1);
        bn.swap_lane(0, &mut BnState::new("b", 1));
        bn.set_lane_count(1);
        bn.forward(&Tensor::zeros(&[2, 1, 2, 2]), Mode::Eval);
    }
}
