//! The [`Layer`] trait: stateful forward/backward building blocks.

use crate::param::{ParamFilter, Parameter};
use ld_tensor::Tensor;

/// Whether a forward pass runs in training or evaluation conditions.
///
/// Batch-norm is the only layer that behaves differently: in [`Mode::Train`]
/// it normalises with batch statistics and updates its running estimates; in
/// [`Mode::Eval`] its behaviour is governed by its
/// [`BnStatsPolicy`](crate::bn::BnStatsPolicy) (the knob LD-BN-ADAPT turns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Training: batch statistics, running-stat updates, caches for backward.
    Train,
    /// Evaluation / deployment: statistics per the layer's policy.
    Eval,
}

/// A differentiable network module.
///
/// Layers are *stateful*: `forward` caches whatever `backward` needs, and
/// `backward` accumulates parameter gradients internally while returning the
/// gradient with respect to the layer input.
///
/// The contract is strictly `forward` → `backward` (at most once per
/// forward); implementations may panic if `backward` is called without a
/// cached forward.
pub trait Layer {
    /// Computes the layer output, caching intermediates when they will be
    /// needed by [`Layer::backward`].
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor;

    /// Propagates `grad_out` (∂loss/∂output) to the input, accumulating
    /// parameter gradients for trainable parameters.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward` or with a gradient whose shape does
    /// not match the last forward output.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits every parameter (mutably) in a stable order.
    ///
    /// The default implementation visits nothing (for parameter-free layers
    /// such as ReLU and pooling).
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Parameter)) {}

    /// Zeroes all parameter gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Marks parameters trainable according to `filter`.
    fn apply_filter(&mut self, filter: ParamFilter) {
        self.visit_params(&mut |p| p.trainable = filter.admits(p.kind));
    }

    /// Total number of scalar parameters.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }

    /// Number of scalar parameters currently marked trainable.
    fn trainable_param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| {
            if p.trainable {
                n += p.len()
            }
        });
        n
    }

    /// Visits every piece of persistent state by name: parameter values
    /// *plus* non-trainable buffers (batch-norm running statistics).
    ///
    /// This is the snapshot/restore surface used for model checkpoints and
    /// for resetting a deployed model between adaptation experiments. The
    /// default implementation visits parameter values only; layers with
    /// extra buffers (and containers) override it.
    fn visit_state(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
        self.visit_params(&mut |p| {
            let name = p.name.clone();
            f(&name, &mut p.value);
        });
    }
}

/// A sequence of boxed layers applied in order.
///
/// # Example
///
/// ```
/// use ld_nn::{Sequential, Relu, Layer, Mode};
/// use ld_tensor::Tensor;
///
/// let mut net = Sequential::new();
/// net.push(Relu::new());
/// let y = net.forward(&Tensor::from_vec(vec![-1.0, 2.0], &[1, 2, 1, 1]), Mode::Eval);
/// assert_eq!(y.as_slice(), &[0.0, 2.0]);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// An empty sequence.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the sequence holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Iterates over the boxed layers.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Box<dyn Layer>> {
        self.layers.iter_mut()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, mode);
        }
        cur
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_state(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::Relu;

    #[test]
    fn sequential_forwards_in_order_and_backwards_in_reverse() {
        let mut net = Sequential::new();
        net.push(Relu::new());
        net.push(Relu::new());
        let x = Tensor::from_vec(vec![-3.0, 4.0], &[1, 2, 1, 1]);
        let y = net.forward(&x, Mode::Train);
        assert_eq!(y.as_slice(), &[0.0, 4.0]);
        let g = net.backward(&Tensor::ones(&[1, 2, 1, 1]));
        assert_eq!(g.as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn empty_sequential_is_identity() {
        let mut net = Sequential::new();
        assert!(net.is_empty());
        let x = Tensor::from_vec(vec![1.5], &[1, 1, 1, 1]);
        let y = net.forward(&x, Mode::Eval);
        assert_eq!(y, x);
    }
}
