//! 2-D convolution via im2col + GEMM, with full backward pass.

use crate::layer::{Layer, Mode};
use crate::param::{ParamKind, Parameter};
use ld_tensor::conv::{im2col, ConvGeom};
use ld_tensor::linalg::{gemm, Trans};
use ld_tensor::rng::SeededRng;
use ld_tensor::Tensor;

struct ConvCache {
    /// One im2col matrix `(K, OH·OW)` per batch image.
    cols: Vec<Tensor>,
    geom: ConvGeom,
    batch: usize,
}

/// A 2-D convolution layer (square kernel, equal stride/pad on both axes).
///
/// Weights are stored `(out_ch, in_ch, k, k)`; activations are NCHW.
///
/// # Example
///
/// ```
/// use ld_nn::{Conv2d, Layer, Mode};
/// use ld_tensor::Tensor;
///
/// let mut conv = Conv2d::new("c", 3, 8, 3, 1, 1, true, 42);
/// let x = Tensor::zeros(&[2, 3, 8, 8]);
/// let y = conv.forward(&x, Mode::Eval);
/// assert_eq!(y.shape_dims(), &[2, 8, 8, 8]);
/// ```
pub struct Conv2d {
    weight: Parameter,
    bias: Option<Parameter>,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    cache: Option<ConvCache>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-normal weights.
    ///
    /// # Panics
    ///
    /// Panics if `in_ch`, `out_ch`, `kernel` or `stride` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        seed: u64,
    ) -> Self {
        assert!(in_ch > 0 && out_ch > 0 && kernel > 0 && stride > 0, "Conv2d: zero dimension");
        let fan_in = in_ch * kernel * kernel;
        let mut rng = SeededRng::new(seed);
        let weight = Parameter::new(
            format!("{name}.weight"),
            ParamKind::ConvWeight,
            rng.kaiming_tensor(&[out_ch, in_ch, kernel, kernel], fan_in),
        );
        let bias = bias.then(|| {
            Parameter::new(format!("{name}.bias"), ParamKind::ConvBias, Tensor::zeros(&[out_ch]))
        });
        Conv2d { weight, bias, in_ch, out_ch, kernel, stride, pad, cache: None }
    }

    /// Output spatial dims for an input of `h × w`.
    pub fn out_dims(&self, h: usize, w: usize) -> (usize, usize) {
        let g = self.geom(h, w);
        (g.out_h(), g.out_w())
    }

    fn geom(&self, h: usize, w: usize) -> ConvGeom {
        ConvGeom {
            c: self.in_ch,
            h,
            w,
            kh: self.kernel,
            kw: self.kernel,
            stride: self.stride,
            pad: self.pad,
        }
    }

    /// The weight tensor viewed as a `(out_ch, K)` matrix.
    fn weight_matrix(&self) -> Tensor {
        let k = self.in_ch * self.kernel * self.kernel;
        self.weight.value.to_shape(&[self.out_ch, k])
    }

    /// Immutable access to the weight parameter (for tests/censuses).
    pub fn weight(&self) -> &Parameter {
        &self.weight
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let (n, c, h, w) = x.dims4();
        assert_eq!(c, self.in_ch, "Conv2d {}: input has {c} channels, want {}", self.weight.name, self.in_ch);
        let g = self.geom(h, w);
        let (oh, ow) = (g.out_h(), g.out_w());
        let k = g.col_rows();
        let spatial = oh * ow;
        let wmat = self.weight_matrix();

        let mut out = Tensor::zeros(&[n, self.out_ch, oh, ow]);
        let mut cols = Vec::with_capacity(n);
        for ni in 0..n {
            let mut col = Tensor::zeros(&[k, spatial]);
            im2col(x.image(ni), g, col.as_mut_slice());
            // y_i = W[O,K] · col[K, S]
            let mut y = Tensor::zeros(&[self.out_ch, spatial]);
            gemm(1.0, &wmat, Trans::No, &col, Trans::No, 0.0, &mut y);
            if let Some(b) = &self.bias {
                for o in 0..self.out_ch {
                    let bv = b.value.as_slice()[o];
                    for v in &mut y.as_mut_slice()[o * spatial..(o + 1) * spatial] {
                        *v += bv;
                    }
                }
            }
            out.image_mut(ni).copy_from_slice(y.as_slice());
            cols.push(col);
        }
        self.cache = Some(ConvCache { cols, geom: g, batch: n });
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("Conv2d::backward before forward");
        let g = cache.geom;
        let (n, oc, oh, ow) = grad_out.dims4();
        assert_eq!(n, cache.batch, "Conv2d::backward: batch mismatch");
        assert_eq!(oc, self.out_ch, "Conv2d::backward: channel mismatch");
        assert_eq!((oh, ow), (g.out_h(), g.out_w()), "Conv2d::backward: spatial mismatch");
        let spatial = oh * ow;
        let k = g.col_rows();
        let wmat = self.weight_matrix();

        let mut grad_in = Tensor::zeros(&[n, g.c, g.h, g.w]);
        let mut dw = Tensor::zeros(&[self.out_ch, k]);
        let compute_dw = self.weight.trainable;

        for ni in 0..n {
            let dy = Tensor::from_vec(grad_out.image(ni).to_vec(), &[self.out_ch, spatial]);
            if compute_dw {
                // dW[O,K] += dY[O,S] · colᵀ[S,K]
                gemm(1.0, &dy, Trans::No, &cache.cols[ni], Trans::Yes, 1.0, &mut dw);
            }
            // dcol[K,S] = Wᵀ[K,O] · dY[O,S]
            let mut dcol = Tensor::zeros(&[k, spatial]);
            gemm(1.0, &wmat, Trans::Yes, &dy, Trans::No, 0.0, &mut dcol);
            ld_tensor::conv::col2im(dcol.as_slice(), g, grad_in.image_mut(ni));
        }

        if compute_dw {
            self.weight.grad.axpy(
                1.0,
                &dw.reshape(&[self.out_ch, self.in_ch, self.kernel, self.kernel]),
            );
        }
        if let Some(b) = &mut self.bias {
            if b.trainable {
                for ni in 0..n {
                    let img = grad_out.image(ni);
                    for o in 0..self.out_ch {
                        let s: f32 = img[o * spatial..(o + 1) * spatial].iter().sum();
                        b.grad.as_mut_slice()[o] += s;
                    }
                }
            }
        }
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual_conv_single(
        x: &Tensor,
        w: &Tensor,
        b: Option<&Tensor>,
        stride: usize,
        pad: usize,
    ) -> Tensor {
        let (n, c, h, wd) = x.dims4();
        let oc = w.shape_dims()[0];
        let k = w.shape_dims()[2];
        let oh = (h + 2 * pad - k) / stride + 1;
        let ow = (wd + 2 * pad - k) / stride + 1;
        let mut out = Tensor::zeros(&[n, oc, oh, ow]);
        for ni in 0..n {
            for o in 0..oc {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = b.map_or(0.0, |bb| bb.as_slice()[o]);
                        for ci in 0..c {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let iy = (oy * stride + ky) as isize - pad as isize;
                                    let ix = (ox * stride + kx) as isize - pad as isize;
                                    if iy >= 0 && iy < h as isize && ix >= 0 && ix < wd as isize {
                                        acc += x.at(&[ni, ci, iy as usize, ix as usize])
                                            * w.at(&[o, ci, ky, kx]);
                                    }
                                }
                            }
                        }
                        *out.at_mut(&[ni, o, oy, ox]) = acc;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn forward_matches_direct_convolution() {
        let mut conv = Conv2d::new("t", 2, 3, 3, 2, 1, true, 7);
        let mut rng = SeededRng::new(1);
        let x = rng.uniform_tensor(&[2, 2, 7, 6], -1.0, 1.0);
        // Give the bias a nonzero value so it is exercised.
        conv.bias.as_mut().unwrap().value = rng.uniform_tensor(&[3], -0.5, 0.5);
        let got = conv.forward(&x, Mode::Train);
        let want = manual_conv_single(
            &x,
            &conv.weight.value,
            Some(&conv.bias.as_ref().unwrap().value),
            2,
            1,
        );
        assert_eq!(got.shape_dims(), want.shape_dims());
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn backward_gradients_match_finite_difference() {
        let mut conv = Conv2d::new("t", 1, 2, 3, 1, 1, true, 3);
        let mut rng = SeededRng::new(2);
        let x = rng.uniform_tensor(&[1, 1, 5, 5], -1.0, 1.0);

        // Analytic gradients for loss = sum(conv(x)).
        let y = conv.forward(&x, Mode::Train);
        let gin = conv.backward(&Tensor::ones(y.shape_dims()));

        let eps = 1e-2;
        // dL/dx check (a few positions).
        for &(i, j) in &[(0usize, 0usize), (2, 3), (4, 4)] {
            let mut xp = x.clone();
            *xp.at_mut(&[0, 0, i, j]) += eps;
            let mut xm = x.clone();
            *xm.at_mut(&[0, 0, i, j]) -= eps;
            let fp = conv.forward(&xp, Mode::Train).sum();
            let fm = conv.forward(&xm, Mode::Train).sum();
            let fd = (fp - fm) / (2.0 * eps);
            let an = gin.at(&[0, 0, i, j]);
            assert!((fd - an).abs() < 1e-2, "dx({i},{j}): fd {fd} an {an}");
        }

        // dL/dw check.
        let base_w = conv.weight.value.clone();
        for &wi in &[0usize, 5, 17] {
            let mut wp = base_w.clone();
            wp.as_mut_slice()[wi] += eps;
            conv.weight.value = wp;
            let fp = conv.forward(&x, Mode::Train).sum();
            let mut wm = base_w.clone();
            wm.as_mut_slice()[wi] -= eps;
            conv.weight.value = wm;
            let fm = conv.forward(&x, Mode::Train).sum();
            conv.weight.value = base_w.clone();
            let fd = (fp - fm) / (2.0 * eps);
            let an = conv.weight.grad.as_slice()[wi];
            assert!((fd - an).abs() < 2e-2, "dw[{wi}]: fd {fd} an {an}");
        }

        // dL/db = number of output positions per channel.
        let spatial = (5 * 5) as f32;
        for &g in conv.bias.as_ref().unwrap().grad.as_slice() {
            assert!((g - spatial).abs() < 1e-3);
        }
    }

    #[test]
    fn frozen_weight_skips_gradient() {
        let mut conv = Conv2d::new("t", 1, 1, 3, 1, 1, false, 4);
        conv.weight.trainable = false;
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let y = conv.forward(&x, Mode::Eval);
        conv.backward(&Tensor::ones(y.shape_dims()));
        assert!(conv.weight.grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    #[should_panic(expected = "channels")]
    fn rejects_wrong_input_channels() {
        let mut conv = Conv2d::new("t", 3, 4, 3, 1, 1, false, 5);
        conv.forward(&Tensor::zeros(&[1, 2, 6, 6]), Mode::Eval);
    }

    #[test]
    fn param_visitation_and_counts() {
        let mut conv = Conv2d::new("t", 2, 4, 3, 1, 1, true, 6);
        assert_eq!(conv.param_count(), 4 * 2 * 3 * 3 + 4);
        let mut names = Vec::new();
        conv.visit_params(&mut |p| names.push(p.name.clone()));
        assert_eq!(names, vec!["t.weight", "t.bias"]);
    }
}
