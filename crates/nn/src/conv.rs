//! 2-D convolution via im2col + GEMM, with full backward pass.
//!
//! This is the layer the 30 FPS adaptation loop spends its time in, so the
//! forward/backward paths are written to be **allocation-free at steady
//! state**: the im2col/col2im column panels live in a per-layer scratch
//! arena sized once on the first frame and reused for every following frame
//! at the same input shape ([`Conv2d::scratch_reallocs`] counts the sizings,
//! and a test pins it to one). The GEMM runs straight from the weight
//! storage into the output tensor via [`ld_tensor::linalg::gemm_raw`] — no
//! reshaped weight copies, no per-image `y` temporaries — and both the
//! forward and backward batch loops fan images out over the persistent
//! worker pool. The backward uses per-image gradient replica slots with a
//! fixed-order reduction (`ld_tensor::parallel::ReduceArena`), so parallel
//! gradients are bitwise independent of pool width and thread timing.

use crate::layer::{Layer, Mode};
use crate::param::{ParamKind, Parameter};
use ld_tensor::conv::{col2im, im2col, ConvGeom};
use ld_tensor::linalg::{gemm_raw, Trans};
use ld_tensor::parallel::{for_each_chunk, ReduceArena, SendPtr};
use ld_tensor::rng::SeededRng;
use ld_tensor::Tensor;

/// Reusable per-layer work buffers (column panels + backward scratch).
///
/// `cols` holds one `(K, OH·OW)` im2col matrix per batch image,
/// back-to-back; it doubles as the forward cache consumed by `backward`.
/// `dcol` holds one backward column panel per image (each image in the
/// batch-parallel backward owns its own panel), and `arena` holds the
/// per-image `[dW | db]` gradient replica slots for the deterministic
/// ordered reduction.
#[derive(Default)]
struct ConvScratch {
    cols: Vec<f32>,
    dcol: Vec<f32>,
    arena: ReduceArena,
    geom: Option<ConvGeom>,
    batch: usize,
    reallocs: usize,
}

impl ConvScratch {
    /// Sizes the arena for a `(batch, geom)` problem; counts real (re)sizes.
    fn ensure(&mut self, batch: usize, geom: ConvGeom) {
        let per_image = geom.col_rows() * geom.col_cols();
        let need = batch * per_image;
        if self.cols.len() < need || self.dcol.len() < need {
            self.cols.resize(need, 0.0);
            self.dcol.resize(need, 0.0);
            self.reallocs += 1;
        }
        self.geom = Some(geom);
        self.batch = batch;
    }
}

/// A 2-D convolution layer (square kernel, equal stride/pad on both axes).
///
/// Weights are stored `(out_ch, in_ch, k, k)`; activations are NCHW.
///
/// # Example
///
/// ```
/// use ld_nn::{Conv2d, Layer, Mode};
/// use ld_tensor::Tensor;
///
/// let mut conv = Conv2d::new("c", 3, 8, 3, 1, 1, true, 42);
/// let x = Tensor::zeros(&[2, 3, 8, 8]);
/// let y = conv.forward(&x, Mode::Eval);
/// assert_eq!(y.shape_dims(), &[2, 8, 8, 8]);
/// ```
pub struct Conv2d {
    weight: Parameter,
    bias: Option<Parameter>,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    skip_input_grad: bool,
    scratch: ConvScratch,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-normal weights.
    ///
    /// # Panics
    ///
    /// Panics if `in_ch`, `out_ch`, `kernel` or `stride` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        seed: u64,
    ) -> Self {
        assert!(
            in_ch > 0 && out_ch > 0 && kernel > 0 && stride > 0,
            "Conv2d: zero dimension"
        );
        let fan_in = in_ch * kernel * kernel;
        let mut rng = SeededRng::new(seed);
        let weight = Parameter::new(
            format!("{name}.weight"),
            ParamKind::ConvWeight,
            rng.kaiming_tensor(&[out_ch, in_ch, kernel, kernel], fan_in),
        );
        let bias = bias.then(|| {
            Parameter::new(
                format!("{name}.bias"),
                ParamKind::ConvBias,
                Tensor::zeros(&[out_ch]),
            )
        });
        Conv2d {
            weight,
            bias,
            in_ch,
            out_ch,
            kernel,
            stride,
            pad,
            skip_input_grad: false,
            scratch: ConvScratch::default(),
        }
    }

    /// Opts this layer out of computing the input gradient in `backward`
    /// (a zero tensor of the right shape is returned instead).
    ///
    /// Correct **only** when nothing upstream consumes the gradient — i.e.
    /// this is the first layer of the network and the caller discards the
    /// returned input gradient, as the adaptation server does. For a
    /// ResNet stem conv the dX GEMM + col2im over the full-resolution input
    /// is the single most expensive backward op, and it feeds nothing.
    /// Defaults to off; gradient-fidelity tests rely on the exact default.
    pub fn set_skip_input_grad(&mut self, skip: bool) {
        self.skip_input_grad = skip;
    }

    /// Output spatial dims for an input of `h × w`.
    pub fn out_dims(&self, h: usize, w: usize) -> (usize, usize) {
        let g = self.geom(h, w);
        (g.out_h(), g.out_w())
    }

    fn geom(&self, h: usize, w: usize) -> ConvGeom {
        ConvGeom {
            c: self.in_ch,
            h,
            w,
            kh: self.kernel,
            kw: self.kernel,
            stride: self.stride,
            pad: self.pad,
        }
    }

    /// Immutable access to the weight parameter (for tests/censuses).
    pub fn weight(&self) -> &Parameter {
        &self.weight
    }

    /// Immutable access to the bias parameter, when present.
    pub fn bias(&self) -> Option<&Parameter> {
        self.bias.as_ref()
    }

    /// Convolution geometry `(kernel, stride, pad)` — what a quantized
    /// snapshot of this layer needs besides the weights.
    pub fn geometry(&self) -> (usize, usize, usize) {
        (self.kernel, self.stride, self.pad)
    }

    /// How many times the scratch arena has been (re)sized.
    ///
    /// At a fixed input shape this stays at 1 after the first forward — the
    /// steady-state zero-allocation invariant the adaptation loop relies on.
    pub fn scratch_reallocs(&self) -> usize {
        self.scratch.reallocs
    }

    /// Shared forward machinery: im2col + GEMM into `out`, then an optional
    /// per-channel affine epilogue `y = scale[o]·y + shift[o]` (used by the
    /// fused conv→BN eval path; `None` applies just the conv bias).
    fn forward_impl(&mut self, x: &Tensor, affine: Option<(&[f32], &[f32])>) -> Tensor {
        let (n, c, h, w) = x.dims4();
        assert_eq!(
            c, self.in_ch,
            "Conv2d {}: input has {c} channels, want {}",
            self.weight.name, self.in_ch
        );
        let g = self.geom(h, w);
        let (oh, ow) = (g.out_h(), g.out_w());
        let k = g.col_rows();
        let spatial = oh * ow;
        self.scratch.ensure(n, g);

        let mut out = Tensor::zeros(&[n, self.out_ch, oh, ow]);
        // The weight tensor (O, C, K, K) is row-major, so its storage *is*
        // the (O, C·K·K) GEMM operand — no reshape copy.
        let wmat = self.weight.value.as_slice();
        let bias = self.bias.as_ref().map(|b| b.value.as_slice());
        let out_ptr = SendPtr(out.as_mut_slice().as_mut_ptr());
        let cols_ptr = SendPtr(self.scratch.cols.as_mut_ptr());
        let per_image = k * spatial;
        let image_out = self.out_ch * spatial;
        let out_ch = self.out_ch;

        // One unit of work per batch image; each image owns a disjoint
        // column panel and output slice. GEMMs nested inside run inline on
        // the owning thread (the pool refuses nested dispatch), so image-
        // level parallelism only pays when the batch can occupy the pool —
        // smaller batches run the image loop inline and let each GEMM split
        // itself across the workers instead.
        let work = if n >= ld_tensor::parallel::pool_width() {
            2 * n * out_ch * spatial * k
        } else {
            0
        };
        for_each_chunk(n, work, |images| {
            for ni in images {
                // SAFETY: per-image slices are disjoint across the chunked range.
                let col = unsafe { cols_ptr.slice_mut(ni * per_image, per_image) };
                im2col(x.image(ni), g, col);
                let y = unsafe { out_ptr.slice_mut(ni * image_out, image_out) };
                // y[O, S] = W[O, K] · col[K, S]
                gemm_raw(
                    1.0,
                    wmat,
                    Trans::No,
                    col,
                    Trans::No,
                    0.0,
                    y,
                    out_ch,
                    k,
                    spatial,
                );
                match (affine, bias) {
                    (Some((scale, shift)), b) => {
                        for o in 0..out_ch {
                            let bv = b.map_or(0.0, |b| b[o]);
                            let (s, t) = (scale[o], shift[o] + scale[o] * bv);
                            for v in &mut y[o * spatial..(o + 1) * spatial] {
                                *v = s * *v + t;
                            }
                        }
                    }
                    (None, Some(b)) => {
                        for o in 0..out_ch {
                            let bv = b[o];
                            for v in &mut y[o * spatial..(o + 1) * spatial] {
                                *v += bv;
                            }
                        }
                    }
                    (None, None) => {}
                }
            }
        });
        out
    }

    /// Inference-only forward with a fused per-channel affine epilogue:
    /// `y = scale[o] · conv(x) + shift[o]`.
    ///
    /// This is the folded conv→BN path: a following eval-mode BatchNorm with
    /// frozen running statistics collapses to exactly such an affine, so the
    /// whole BN traversal (plus its normalisation cache) is skipped. The
    /// conv's own bias, when present, folds into `shift`.
    ///
    /// Does **not** populate the backward cache contract beyond what
    /// [`Layer::forward`] does; use it only for inference.
    ///
    /// # Panics
    ///
    /// Panics if `scale`/`shift` lengths differ from the output channels.
    pub fn forward_fused_affine(&mut self, x: &Tensor, scale: &[f32], shift: &[f32]) -> Tensor {
        assert_eq!(
            scale.len(),
            self.out_ch,
            "forward_fused_affine: scale length"
        );
        assert_eq!(
            shift.len(),
            self.out_ch,
            "forward_fused_affine: shift length"
        );
        self.forward_impl(x, Some((scale, shift)))
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        self.forward_impl(x, None)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.scratch.geom.expect("Conv2d::backward before forward");
        let (n, oc, oh, ow) = grad_out.dims4();
        assert_eq!(n, self.scratch.batch, "Conv2d::backward: batch mismatch");
        assert_eq!(oc, self.out_ch, "Conv2d::backward: channel mismatch");
        assert_eq!(
            (oh, ow),
            (g.out_h(), g.out_w()),
            "Conv2d::backward: spatial mismatch"
        );
        let spatial = oh * ow;
        let k = g.col_rows();
        let compute_dw = self.weight.trainable;
        let compute_db = self.bias.as_ref().is_some_and(|b| b.trainable);
        let compute_dx = !self.skip_input_grad;

        // Batch-parallel over images with per-image gradient replicas: each
        // image computes its whole contribution — a `[dW | db]` slot in the
        // reduce arena plus its (already disjoint) `grad_in` image — then the
        // slots fold into the shared grads strictly in image order. Results
        // are bitwise independent of pool width and scheduling; see
        // `ld_tensor::parallel` module docs for the contract.
        let dw_len = if compute_dw { self.out_ch * k } else { 0 };
        let db_len = if compute_db { self.out_ch } else { 0 };
        let slot_len = dw_len + db_len;

        let mut grad_in = Tensor::zeros(&[n, g.c, g.h, g.w]);
        let per_image = k * spatial;
        let image_in = g.c * g.h * g.w;
        let out_ch = self.out_ch;
        let wmat = self.weight.value.as_slice();
        let scratch = &mut self.scratch;
        let cols: &[f32] = &scratch.cols;
        let dcol_ptr = SendPtr(scratch.dcol.as_mut_ptr());
        let gin_ptr = SendPtr(grad_in.as_mut_slice().as_mut_ptr());
        // Same policy as forward: image-level fan-out only when the batch
        // can occupy the pool; otherwise run the image loop inline and let
        // each GEMM split itself across the workers.
        let work = if n >= ld_tensor::parallel::pool_width() {
            2 * n * out_ch * spatial * k * (compute_dw as usize + compute_dx as usize)
        } else {
            0
        };
        scratch.arena.map_slots(n, slot_len, work, |ni, slot| {
            // dY[O, S] is exactly the image slice of grad_out — no copy.
            let dy = grad_out.image(ni);
            if compute_dw {
                // dW_i[O, K] = dY[O, S] · colᵀ[S, K] into this image's slot
                // ((O, C, K, K) grad storage is the (O, K) matrix).
                gemm_raw(
                    1.0,
                    dy,
                    Trans::No,
                    &cols[ni * per_image..(ni + 1) * per_image],
                    Trans::Yes,
                    0.0,
                    &mut slot[..dw_len],
                    out_ch,
                    spatial,
                    k,
                );
            }
            if compute_db {
                for o in 0..out_ch {
                    slot[dw_len + o] = dy[o * spatial..(o + 1) * spatial].iter().sum();
                }
            }
            if compute_dx {
                // SAFETY: image `ni`'s dcol panel and grad_in slice are
                // touched only by the chunk owning this image.
                let dcol = unsafe { dcol_ptr.slice_mut(ni * per_image, per_image) };
                // dcol[K, S] = Wᵀ[K, O] · dY[O, S]
                gemm_raw(
                    1.0,
                    wmat,
                    Trans::Yes,
                    dy,
                    Trans::No,
                    0.0,
                    dcol,
                    k,
                    out_ch,
                    spatial,
                );
                let gin = unsafe { gin_ptr.slice_mut(ni * image_in, image_in) };
                col2im(dcol, g, gin);
            }
        });
        if compute_dw {
            scratch
                .arena
                .fold_ordered_at(0, self.weight.grad.as_mut_slice());
        }
        if compute_db {
            let b = self.bias.as_mut().expect("compute_db without bias");
            scratch.arena.fold_ordered_at(dw_len, b.grad.as_mut_slice());
        }
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual_conv_single(
        x: &Tensor,
        w: &Tensor,
        b: Option<&Tensor>,
        stride: usize,
        pad: usize,
    ) -> Tensor {
        let (n, c, h, wd) = x.dims4();
        let oc = w.shape_dims()[0];
        let k = w.shape_dims()[2];
        let oh = (h + 2 * pad - k) / stride + 1;
        let ow = (wd + 2 * pad - k) / stride + 1;
        let mut out = Tensor::zeros(&[n, oc, oh, ow]);
        for ni in 0..n {
            for o in 0..oc {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = b.map_or(0.0, |bb| bb.as_slice()[o]);
                        for ci in 0..c {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let iy = (oy * stride + ky) as isize - pad as isize;
                                    let ix = (ox * stride + kx) as isize - pad as isize;
                                    if iy >= 0 && iy < h as isize && ix >= 0 && ix < wd as isize {
                                        acc += x.at(&[ni, ci, iy as usize, ix as usize])
                                            * w.at(&[o, ci, ky, kx]);
                                    }
                                }
                            }
                        }
                        *out.at_mut(&[ni, o, oy, ox]) = acc;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn forward_matches_direct_convolution() {
        let mut conv = Conv2d::new("t", 2, 3, 3, 2, 1, true, 7);
        let mut rng = SeededRng::new(1);
        let x = rng.uniform_tensor(&[2, 2, 7, 6], -1.0, 1.0);
        // Give the bias a nonzero value so it is exercised.
        conv.bias.as_mut().unwrap().value = rng.uniform_tensor(&[3], -0.5, 0.5);
        let got = conv.forward(&x, Mode::Train);
        let want = manual_conv_single(
            &x,
            &conv.weight.value,
            Some(&conv.bias.as_ref().unwrap().value),
            2,
            1,
        );
        assert_eq!(got.shape_dims(), want.shape_dims());
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn backward_gradients_match_finite_difference() {
        let mut conv = Conv2d::new("t", 1, 2, 3, 1, 1, true, 3);
        let mut rng = SeededRng::new(2);
        let x = rng.uniform_tensor(&[1, 1, 5, 5], -1.0, 1.0);

        // Analytic gradients for loss = sum(conv(x)).
        let y = conv.forward(&x, Mode::Train);
        let gin = conv.backward(&Tensor::ones(y.shape_dims()));

        let eps = 1e-2;
        // dL/dx check (a few positions).
        for &(i, j) in &[(0usize, 0usize), (2, 3), (4, 4)] {
            let mut xp = x.clone();
            *xp.at_mut(&[0, 0, i, j]) += eps;
            let mut xm = x.clone();
            *xm.at_mut(&[0, 0, i, j]) -= eps;
            let fp = conv.forward(&xp, Mode::Train).sum();
            let fm = conv.forward(&xm, Mode::Train).sum();
            let fd = (fp - fm) / (2.0 * eps);
            let an = gin.at(&[0, 0, i, j]);
            assert!((fd - an).abs() < 1e-2, "dx({i},{j}): fd {fd} an {an}");
        }

        // dL/dw check.
        let base_w = conv.weight.value.clone();
        for &wi in &[0usize, 5, 17] {
            let mut wp = base_w.clone();
            wp.as_mut_slice()[wi] += eps;
            conv.weight.value = wp;
            let fp = conv.forward(&x, Mode::Train).sum();
            let mut wm = base_w.clone();
            wm.as_mut_slice()[wi] -= eps;
            conv.weight.value = wm;
            let fm = conv.forward(&x, Mode::Train).sum();
            conv.weight.value = base_w.clone();
            let fd = (fp - fm) / (2.0 * eps);
            let an = conv.weight.grad.as_slice()[wi];
            assert!((fd - an).abs() < 2e-2, "dw[{wi}]: fd {fd} an {an}");
        }

        // dL/db = number of output positions per channel.
        let spatial = (5 * 5) as f32;
        for &g in conv.bias.as_ref().unwrap().grad.as_slice() {
            assert!((g - spatial).abs() < 1e-3);
        }
    }

    #[test]
    fn frozen_weight_skips_gradient() {
        let mut conv = Conv2d::new("t", 1, 1, 3, 1, 1, false, 4);
        conv.weight.trainable = false;
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let y = conv.forward(&x, Mode::Eval);
        conv.backward(&Tensor::ones(y.shape_dims()));
        assert!(conv.weight.grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    #[should_panic(expected = "channels")]
    fn rejects_wrong_input_channels() {
        let mut conv = Conv2d::new("t", 3, 4, 3, 1, 1, false, 5);
        conv.forward(&Tensor::zeros(&[1, 2, 6, 6]), Mode::Eval);
    }

    #[test]
    fn param_visitation_and_counts() {
        let mut conv = Conv2d::new("t", 2, 4, 3, 1, 1, true, 6);
        assert_eq!(conv.param_count(), 4 * 2 * 3 * 3 + 4);
        let mut names = Vec::new();
        conv.visit_params(&mut |p| names.push(p.name.clone()));
        assert_eq!(names, vec!["t.weight", "t.bias"]);
    }

    /// The steady-state zero-allocation contract: at a fixed input shape the
    /// scratch arena is sized exactly once, and repeated forwards are
    /// bit-identical (same buffers, same arithmetic, same results).
    #[test]
    fn scratch_is_reused_and_outputs_bit_identical() {
        let mut conv = Conv2d::new("t", 3, 8, 3, 1, 1, true, 11);
        let x = SeededRng::new(12).uniform_tensor(&[2, 3, 10, 12], -1.0, 1.0);
        let y0 = conv.forward(&x, Mode::Eval);
        assert_eq!(conv.scratch_reallocs(), 1, "first frame sizes the arena");
        for _ in 0..10 {
            let y = conv.forward(&x, Mode::Eval);
            assert_eq!(y.as_slice(), y0.as_slice(), "repeat forwards bit-identical");
        }
        assert_eq!(conv.scratch_reallocs(), 1, "no steady-state reallocation");

        // A larger shape regrows once; returning to the original does not.
        let big = Tensor::zeros(&[2, 3, 20, 24]);
        conv.forward(&big, Mode::Eval);
        assert_eq!(conv.scratch_reallocs(), 2);
        conv.forward(&x, Mode::Eval);
        assert_eq!(conv.scratch_reallocs(), 2, "smaller shape reuses the arena");
    }

    /// The batch-server contract: after one forward at the largest batch the
    /// arena serves *any* smaller batch with zero further sizing, and each
    /// image's output is bit-identical to its single-image forward (the
    /// per-image im2col + GEMM never sees the rest of the batch).
    #[test]
    fn scratch_is_batch_size_agnostic_after_max_batch_warmup() {
        let mut conv = Conv2d::new("t", 3, 6, 3, 1, 1, true, 17);
        let x4 = SeededRng::new(18).uniform_tensor(&[4, 3, 9, 11], -1.0, 1.0);
        let y4 = conv.forward(&x4, Mode::Eval);
        assert_eq!(conv.scratch_reallocs(), 1, "max batch sizes the arena once");
        for batch in [1usize, 2, 3, 4, 2, 1] {
            let mut xb = Tensor::zeros(&[batch, 3, 9, 11]);
            for i in 0..batch {
                xb.image_mut(i).copy_from_slice(x4.image(i));
            }
            let yb = conv.forward(&xb, Mode::Eval);
            for i in 0..batch {
                assert_eq!(yb.image(i), y4.image(i), "batch {batch} image {i}");
            }
        }
        assert_eq!(conv.scratch_reallocs(), 1, "batch changes reuse the arena");
    }

    /// Backward must consume the forward's cached columns, so interleaved
    /// forward/backward at the same shape also stays allocation-stable.
    #[test]
    fn train_loop_is_allocation_stable() {
        let mut conv = Conv2d::new("t", 2, 4, 3, 1, 1, false, 13);
        let x = SeededRng::new(14).uniform_tensor(&[1, 2, 8, 8], -1.0, 1.0);
        for _ in 0..5 {
            let y = conv.forward(&x, Mode::Train);
            conv.backward(&Tensor::ones(y.shape_dims()));
        }
        assert_eq!(conv.scratch_reallocs(), 1);
    }

    /// The batch-parallel backward is bitwise-identical to the sequential
    /// (width 1) schedule, and its replica arena reuses its allocation.
    #[test]
    fn parallel_backward_matches_sequential_bitwise() {
        use ld_tensor::parallel::run_sequential;
        let bits = |s: &[f32]| s.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        let x = SeededRng::new(22).uniform_tensor(&[8, 3, 10, 10], -1.0, 1.0);
        let gy = SeededRng::new(23).uniform_tensor(&[8, 5, 10, 10], -1.0, 1.0);

        let mut par = Conv2d::new("t", 3, 5, 3, 1, 1, true, 21);
        let mut seq = Conv2d::new("t", 3, 5, 3, 1, 1, true, 21);
        par.forward(&x, Mode::Train);
        seq.forward(&x, Mode::Train);
        let gin_par = par.backward(&gy);
        let gin_seq = run_sequential(|| seq.backward(&gy));

        assert_eq!(bits(gin_par.as_slice()), bits(gin_seq.as_slice()));
        assert_eq!(
            bits(par.weight.grad.as_slice()),
            bits(seq.weight.grad.as_slice())
        );
        assert_eq!(
            bits(par.bias.as_ref().unwrap().grad.as_slice()),
            bits(seq.bias.as_ref().unwrap().grad.as_slice())
        );

        // Steady state: repeated backwards never regrow the replica arena
        // and stay bit-identical.
        let w0 = bits(par.weight.grad.as_slice());
        for _ in 0..3 {
            par.weight.grad.as_mut_slice().fill(0.0);
            par.forward(&x, Mode::Train);
            par.backward(&gy);
            assert_eq!(bits(par.weight.grad.as_slice()), w0);
        }
        assert_eq!(par.scratch.arena.reallocs(), 1);
        assert_eq!(par.scratch_reallocs(), 1);
    }

    /// `set_skip_input_grad` suppresses only dX: parameter grads are
    /// unchanged bitwise and the returned input gradient is zero.
    #[test]
    fn skip_input_grad_preserves_param_grads() {
        let bits = |s: &[f32]| s.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        let x = SeededRng::new(31).uniform_tensor(&[2, 2, 8, 8], -1.0, 1.0);
        let gy = SeededRng::new(32).uniform_tensor(&[2, 4, 8, 8], -1.0, 1.0);
        let mut full = Conv2d::new("t", 2, 4, 3, 1, 1, true, 30);
        let mut skip = Conv2d::new("t", 2, 4, 3, 1, 1, true, 30);
        skip.set_skip_input_grad(true);
        full.forward(&x, Mode::Train);
        skip.forward(&x, Mode::Train);
        full.backward(&gy);
        let gin = skip.backward(&gy);
        assert!(gin.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(
            bits(full.weight.grad.as_slice()),
            bits(skip.weight.grad.as_slice())
        );
    }

    /// `forward_fused_affine(scale, shift)` equals conv → per-channel affine.
    #[test]
    fn fused_affine_matches_conv_then_affine() {
        let mut conv = Conv2d::new("t", 2, 3, 3, 1, 1, true, 15);
        let mut rng = SeededRng::new(16);
        conv.bias.as_mut().unwrap().value = rng.uniform_tensor(&[3], -0.5, 0.5);
        let x = rng.uniform_tensor(&[2, 2, 6, 6], -1.0, 1.0);
        let scale: Vec<f32> = (0..3).map(|_| rng.uniform(0.5, 1.5)).collect();
        let shift: Vec<f32> = (0..3).map(|_| rng.uniform(-0.5, 0.5)).collect();

        let base = conv.forward(&x, Mode::Eval);
        let fused = conv.forward_fused_affine(&x, &scale, &shift);
        let (n, oc, oh, ow) = base.dims4();
        let spatial = oh * ow;
        for ni in 0..n {
            for o in 0..oc {
                for s in 0..spatial {
                    let idx = (ni * oc + o) * spatial + s;
                    let want = scale[o] * base.as_slice()[idx] + shift[o];
                    let got = fused.as_slice()[idx];
                    assert!((want - got).abs() < 1e-5, "{want} vs {got}");
                }
            }
        }
    }
}
