//! Optimizers: SGD with momentum and Adam.
//!
//! Optimizers hold their per-parameter state (momentum / moment estimates)
//! keyed by the parameter's unique id, and are applied through a model's
//! [`Layer::visit_params`](crate::Layer::visit_params) visitation:
//!
//! ```
//! use ld_nn::{Linear, Layer, Mode, Sgd};
//! use ld_tensor::Tensor;
//!
//! let mut fc = Linear::new("fc", 2, 2, 0);
//! let mut opt = Sgd::new(0.1).momentum(0.9);
//! let y = fc.forward(&Tensor::ones(&[1, 2]), Mode::Train);
//! fc.backward(&y); // loss = ||y||²/2
//! fc.visit_params(&mut |p| opt.update(p));
//! ```

use crate::param::Parameter;
use ld_tensor::Tensor;
use std::collections::HashMap;

/// Stochastic gradient descent with optional momentum and weight decay.
///
/// Update rule (PyTorch convention):
/// `v ← µ·v + (g + λ·w)`, `w ← w − lr·v`.
#[derive(Debug, Default)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<u64, Tensor>,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "Sgd: bad learning rate {lr}");
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// Sets the momentum coefficient (builder style).
    pub fn momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Sets L2 weight decay (builder style).
    pub fn weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr.is_finite() && lr > 0.0, "Sgd: bad learning rate {lr}");
        self.lr = lr;
    }

    /// Current momentum coefficient.
    pub fn momentum_coeff(&self) -> f32 {
        self.momentum
    }

    /// The momentum buffer for `p`, if one has been created by a prior
    /// [`Sgd::update`]. Velocity is keyed by the parameter's process-unique
    /// id, so state migrated through a byte-level snapshot (which mints
    /// fresh parameters, hence fresh ids) must be re-keyed: extract with
    /// this accessor against the *old* parameter, then
    /// [`Sgd::set_velocity`] against the new one.
    pub fn velocity(&self, p: &Parameter) -> Option<&Tensor> {
        self.velocity.get(&p.id())
    }

    /// Installs (or replaces) the momentum buffer for `p`.
    ///
    /// # Panics
    ///
    /// Panics if `v`'s length differs from the parameter's.
    pub fn set_velocity(&mut self, p: &Parameter, v: Tensor) {
        assert_eq!(
            v.len(),
            p.value.len(),
            "Sgd::set_velocity: buffer/parameter length mismatch"
        );
        self.velocity.insert(p.id(), v);
    }

    /// Drops the momentum buffer for `p` (detached streams must not leak
    /// velocity into a slot's next occupant).
    pub fn clear_velocity(&mut self, p: &Parameter) {
        self.velocity.remove(&p.id());
    }

    /// Applies one update to a parameter (no-op when not trainable).
    pub fn update(&mut self, p: &mut Parameter) {
        if !p.trainable {
            return;
        }
        if self.momentum == 0.0 && self.weight_decay == 0.0 {
            p.value.axpy(-self.lr, &p.grad);
            return;
        }
        let mut g = p.grad.clone();
        if self.weight_decay != 0.0 {
            g.axpy(self.weight_decay, &p.value);
        }
        if self.momentum != 0.0 {
            let v = self
                .velocity
                .entry(p.id())
                .or_insert_with(|| Tensor::zeros(p.value.shape_dims()));
            v.scale(self.momentum);
            v.axpy(1.0, &g);
            p.value.axpy(-self.lr, v);
        } else {
            p.value.axpy(-self.lr, &g);
        }
    }
}

/// Adam optimizer (Kingma & Ba, 2015).
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    /// Per-parameter step counters and moment estimates.
    state: HashMap<u64, AdamState>,
}

#[derive(Debug)]
struct AdamState {
    t: u32,
    m: Tensor,
    v: Tensor,
}

impl Adam {
    /// Creates Adam with standard betas `(0.9, 0.999)`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "Adam: bad learning rate {lr}");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            state: HashMap::new(),
        }
    }

    /// Sets L2 weight decay (builder style).
    pub fn weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr.is_finite() && lr > 0.0, "Adam: bad learning rate {lr}");
        self.lr = lr;
    }

    /// Applies one update to a parameter (no-op when not trainable).
    pub fn update(&mut self, p: &mut Parameter) {
        if !p.trainable {
            return;
        }
        let st = self.state.entry(p.id()).or_insert_with(|| AdamState {
            t: 0,
            m: Tensor::zeros(p.value.shape_dims()),
            v: Tensor::zeros(p.value.shape_dims()),
        });
        st.t += 1;
        let (b1, b2) = (self.beta1, self.beta2);
        let bias1 = 1.0 - b1.powi(st.t as i32);
        let bias2 = 1.0 - b2.powi(st.t as i32);
        let wd = self.weight_decay;
        for i in 0..p.value.len() {
            let mut g = p.grad.as_slice()[i];
            if wd != 0.0 {
                g += wd * p.value.as_slice()[i];
            }
            let m = &mut st.m.as_mut_slice()[i];
            *m = b1 * *m + (1.0 - b1) * g;
            let v = &mut st.v.as_mut_slice()[i];
            *v = b2 * *v + (1.0 - b2) * g * g;
            let mhat = *m / bias1;
            let vhat = *v / bias2;
            p.value.as_mut_slice()[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

/// Cosine learning-rate schedule from `lr0` to `lr_min` over `total` steps.
///
/// ```
/// let lr = ld_nn::cosine_lr(0.1, 0.0, 0, 100);
/// assert!((lr - 0.1).abs() < 1e-6);
/// assert!(ld_nn::cosine_lr(0.1, 0.0, 100, 100) < 1e-6);
/// ```
pub fn cosine_lr(lr0: f32, lr_min: f32, step: usize, total: usize) -> f32 {
    if total == 0 {
        return lr0;
    }
    let t = (step.min(total)) as f32 / total as f32;
    lr_min + 0.5 * (lr0 - lr_min) * (1.0 + (std::f32::consts::PI * t).cos())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamKind;

    fn param_with_grad(value: f32, grad: f32) -> Parameter {
        let mut p = Parameter::new("p", ParamKind::LinearWeight, Tensor::full(&[2], value));
        p.grad = Tensor::full(&[2], grad);
        p
    }

    #[test]
    fn sgd_plain_step() {
        let mut opt = Sgd::new(0.5);
        let mut p = param_with_grad(1.0, 2.0);
        opt.update(&mut p);
        assert_eq!(p.value.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn sgd_momentum_accumulates() {
        let mut opt = Sgd::new(1.0).momentum(0.5);
        let mut p = param_with_grad(0.0, 1.0);
        opt.update(&mut p); // v=1, w=-1
        assert_eq!(p.value.as_slice()[0], -1.0);
        p.grad = Tensor::full(&[2], 1.0);
        opt.update(&mut p); // v=1.5, w=-2.5
        assert_eq!(p.value.as_slice()[0], -2.5);
    }

    #[test]
    fn sgd_weight_decay_pulls_to_zero() {
        let mut opt = Sgd::new(0.1).weight_decay(1.0);
        let mut p = param_with_grad(2.0, 0.0);
        opt.update(&mut p);
        assert!((p.value.as_slice()[0] - 1.8).abs() < 1e-6);
    }

    #[test]
    fn frozen_parameter_is_untouched() {
        let mut opt = Sgd::new(0.5);
        let mut p = param_with_grad(1.0, 5.0);
        p.trainable = false;
        opt.update(&mut p);
        assert_eq!(p.value.as_slice()[0], 1.0);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, |Δw| of the first step ≈ lr.
        let mut opt = Adam::new(0.01);
        let mut p = param_with_grad(0.0, 3.0);
        opt.update(&mut p);
        assert!((p.value.as_slice()[0] + 0.01).abs() < 1e-4);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimise f(w) = (w − 3)²/2 with Adam.
        let mut opt = Adam::new(0.1);
        let mut p = Parameter::new("w", ParamKind::LinearWeight, Tensor::zeros(&[1]));
        for _ in 0..300 {
            let w = p.value.as_slice()[0];
            p.grad = Tensor::from_vec(vec![w - 3.0], &[1]);
            opt.update(&mut p);
        }
        assert!((p.value.as_slice()[0] - 3.0).abs() < 0.05);
    }

    #[test]
    fn cosine_schedule_endpoints_and_midpoint() {
        assert!((cosine_lr(1.0, 0.0, 0, 10) - 1.0).abs() < 1e-6);
        assert!((cosine_lr(1.0, 0.0, 5, 10) - 0.5).abs() < 1e-6);
        assert!(cosine_lr(1.0, 0.0, 10, 10) < 1e-6);
        // Steps past the horizon clamp.
        assert!(cosine_lr(1.0, 0.0, 20, 10) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn sgd_rejects_bad_lr() {
        Sgd::new(-1.0);
    }

    /// Velocity extracted from one parameter and installed on a fresh one
    /// (new id, same values) continues the exact same trajectory — the
    /// migration re-keying contract.
    #[test]
    fn sgd_velocity_rekeying_preserves_trajectory() {
        let step = |opt: &mut Sgd, p: &mut Parameter| {
            p.grad = Tensor::full(&[2], 1.0);
            opt.update(p);
        };

        // Reference: three steps on one parameter.
        let mut opt_ref = Sgd::new(1.0).momentum(0.5);
        let mut p_ref = param_with_grad(0.0, 1.0);
        for _ in 0..3 {
            step(&mut opt_ref, &mut p_ref);
        }

        // Migrated: two steps, then move value + velocity to a fresh
        // parameter (fresh id) under a fresh optimizer, then one more step.
        let mut opt_a = Sgd::new(1.0).momentum(0.5);
        let mut p_a = param_with_grad(0.0, 1.0);
        for _ in 0..2 {
            step(&mut opt_a, &mut p_a);
        }
        let v = opt_a.velocity(&p_a).expect("velocity exists").clone();
        let mut p_b = Parameter::new("p", ParamKind::LinearWeight, p_a.value.clone());
        assert_ne!(p_a.id(), p_b.id());
        let mut opt_b = Sgd::new(1.0).momentum(0.5);
        assert!(opt_b.velocity(&p_b).is_none());
        opt_b.set_velocity(&p_b, v);
        step(&mut opt_b, &mut p_b);

        assert_eq!(
            p_ref.value.as_slice()[0].to_bits(),
            p_b.value.as_slice()[0].to_bits()
        );
        opt_b.clear_velocity(&p_b);
        assert!(opt_b.velocity(&p_b).is_none());
    }
}
