//! Spatial pooling layers.

use crate::layer::{Layer, Mode};
use ld_tensor::conv::conv_out_dim;
use ld_tensor::parallel::{for_each_chunk, pool_width, SendPtr};
use ld_tensor::Tensor;

/// Max pooling over NCHW activations (square window).
///
/// The ResNet stem uses a 3×3/stride-2 max pool after the first convolution.
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    pad: usize,
    /// Flat input index of each output's argmax, plus the input shape.
    cache: Option<(Vec<usize>, Vec<usize>)>,
}

impl MaxPool2d {
    /// Creates a max-pool layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize, pad: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "MaxPool2d: zero kernel/stride");
        MaxPool2d {
            kernel,
            stride,
            pad,
            cache: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let (n, c, h, w) = x.dims4();
        let oh = conv_out_dim(h, self.kernel, self.stride, self.pad);
        let ow = conv_out_dim(w, self.kernel, self.stride, self.pad);
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let mut argmax = vec![0usize; n * c * oh * ow];
        let xs = x.as_slice();
        let mut oi = 0usize;
        for ni in 0..n {
            for ci in 0..c {
                let plane = (ni * c + ci) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = plane; // fallback (all-padding window)
                        for ky in 0..self.kernel {
                            let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..self.kernel {
                                let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let idx = plane + iy as usize * w + ix as usize;
                                if xs[idx] > best {
                                    best = xs[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        // All-padding windows (possible only with pad ≥ kernel)
                        // cannot occur because conv_out_dim validates geometry.
                        out.as_mut_slice()[oi] = best;
                        argmax[oi] = best_idx;
                        oi += 1;
                    }
                }
            }
        }
        self.cache = Some((argmax, x.shape_dims().to_vec()));
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (argmax, in_shape) = self
            .cache
            .as_ref()
            .expect("MaxPool2d::backward before forward");
        assert_eq!(
            grad_out.len(),
            argmax.len(),
            "MaxPool2d::backward: size mismatch"
        );
        let mut gin = Tensor::zeros(in_shape);
        // Every argmax of image `ni` lies inside image `ni`'s input plane,
        // so the scatter is per-image disjoint and fans over the pool
        // (element order within an image is unchanged → bitwise-stable).
        let n = in_shape[0];
        let per_in = gin.len() / n;
        let per_out = argmax.len() / n;
        let go = grad_out.as_slice();
        let gin_ptr = SendPtr(gin.as_mut_slice().as_mut_ptr());
        let work = if n >= pool_width() {
            4 * argmax.len()
        } else {
            0
        };
        for_each_chunk(n, work, |images| {
            for ni in images {
                // SAFETY: image `ni`'s input slice is written only by the
                // chunk owning this image.
                let gi = unsafe { gin_ptr.slice_mut(ni * per_in, per_in) };
                let base = ni * per_in;
                for oi in ni * per_out..(ni + 1) * per_out {
                    gi[argmax[oi] - base] += go[oi];
                }
            }
        });
        gin
    }
}

/// Global average pooling: NCHW → `(N, C, 1, 1)`.
#[derive(Default)]
pub struct GlobalAvgPool {
    in_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { in_shape: None }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let (n, c, h, w) = x.dims4();
        let plane = h * w;
        let mut out = Tensor::zeros(&[n, c, 1, 1]);
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                let s: f32 = x.as_slice()[base..base + plane].iter().sum();
                out.as_mut_slice()[ni * c + ci] = s / plane as f32;
            }
        }
        self.in_shape = Some(x.shape_dims().to_vec());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .in_shape
            .as_ref()
            .expect("GlobalAvgPool::backward before forward");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let plane = h * w;
        let mut gin = Tensor::zeros(shape);
        for ni in 0..n {
            for ci in 0..c {
                let g = grad_out.as_slice()[ni * c + ci] / plane as f32;
                let base = (ni * c + ci) * plane;
                for i in 0..plane {
                    gin.as_mut_slice()[base + i] = g;
                }
            }
        }
        gin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_window_maxima() {
        let mut mp = MaxPool2d::new(2, 2, 0);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        );
        let y = mp.forward(&x, Mode::Eval);
        assert_eq!(y.shape_dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn maxpool_routes_gradient_to_argmax() {
        let mut mp = MaxPool2d::new(2, 2, 0);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        mp.forward(&x, Mode::Eval);
        let g = mp.backward(&Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]));
        assert_eq!(g.as_slice(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn maxpool_with_padding_ignores_padding() {
        let mut mp = MaxPool2d::new(3, 2, 1);
        let x = Tensor::from_vec(vec![-1.0, -2.0, -3.0, -4.0], &[1, 1, 2, 2]);
        let y = mp.forward(&x, Mode::Eval);
        // Padding zeros must not win: max of the window is the max of real values.
        assert_eq!(y.as_slice()[0], -1.0);
    }

    #[test]
    fn gap_averages_and_spreads_gradient() {
        let mut gap = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 2, 2]);
        let y = gap.forward(&x, Mode::Eval);
        assert_eq!(y.as_slice(), &[4.0]);
        let g = gap.backward(&Tensor::from_vec(vec![8.0], &[1, 1, 1, 1]));
        assert_eq!(g.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }
}
