//! Trainable parameters and parameter-group filters.
//!
//! The paper's central idea — *adapt only the batch-norm scale/shift* — and
//! its §III ablation (conv-only / FC-only adaptation) are expressed here as
//! first-class [`ParamFilter`]s applied over a model's parameter set.

use ld_tensor::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_PARAM_ID: AtomicU64 = AtomicU64::new(1);

/// Which architectural group a parameter belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// Convolution filter weights.
    ConvWeight,
    /// Convolution bias.
    ConvBias,
    /// Batch-norm scale (γ).
    BnGamma,
    /// Batch-norm shift (β).
    BnBeta,
    /// Fully-connected weight matrix.
    LinearWeight,
    /// Fully-connected bias.
    LinearBias,
}

impl ParamKind {
    /// `true` for batch-norm parameters (γ, β).
    pub fn is_bn(self) -> bool {
        matches!(self, ParamKind::BnGamma | ParamKind::BnBeta)
    }

    /// `true` for convolution parameters.
    pub fn is_conv(self) -> bool {
        matches!(self, ParamKind::ConvWeight | ParamKind::ConvBias)
    }

    /// `true` for fully-connected parameters.
    pub fn is_fc(self) -> bool {
        matches!(self, ParamKind::LinearWeight | ParamKind::LinearBias)
    }
}

/// A tensor-valued trainable parameter with its gradient accumulator.
#[derive(Debug, Clone)]
pub struct Parameter {
    /// Unique id (stable for the lifetime of the process) used by optimizers
    /// to key momentum state.
    id: u64,
    /// Human-readable name, e.g. `"layer2.0.bn1.gamma"`.
    pub name: String,
    /// Parameter group.
    pub kind: ParamKind,
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Whether optimizers may update this parameter and layers should spend
    /// time computing its gradient.
    pub trainable: bool,
}

impl Parameter {
    /// Creates a trainable parameter with a zeroed gradient.
    pub fn new(name: impl Into<String>, kind: ParamKind, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape_dims());
        Parameter {
            id: NEXT_PARAM_ID.fetch_add(1, Ordering::Relaxed),
            name: name.into(),
            kind,
            value,
            grad,
            trainable: true,
        }
    }

    /// The parameter's process-unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// `true` if the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Zeroes the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }
}

/// Selects which parameter groups are trainable during adaptation.
///
/// `LD-BN-ADAPT` uses [`ParamFilter::BnOnly`]; the paper's §III ablation also
/// evaluates [`ParamFilter::ConvOnly`] and [`ParamFilter::FcOnly`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ParamFilter {
    /// Every parameter is trainable (regular training / full fine-tuning).
    #[default]
    All,
    /// Only batch-norm γ/β (the paper's method).
    BnOnly,
    /// Only convolution weights/biases (ablation).
    ConvOnly,
    /// Only fully-connected weights/biases (ablation).
    FcOnly,
    /// Nothing trainable (pure inference).
    Frozen,
}

impl ParamFilter {
    /// Whether a parameter of `kind` is trainable under this filter.
    pub fn admits(self, kind: ParamKind) -> bool {
        match self {
            ParamFilter::All => true,
            ParamFilter::BnOnly => kind.is_bn(),
            ParamFilter::ConvOnly => kind.is_conv(),
            ParamFilter::FcOnly => kind.is_fc(),
            ParamFilter::Frozen => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let a = Parameter::new("a", ParamKind::BnGamma, Tensor::ones(&[2]));
        let b = Parameter::new("b", ParamKind::BnBeta, Tensor::zeros(&[2]));
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn grad_matches_value_shape_and_zeroes() {
        let mut p = Parameter::new("w", ParamKind::ConvWeight, Tensor::ones(&[2, 3]));
        assert_eq!(p.grad.shape_dims(), &[2, 3]);
        p.grad.fill(1.0);
        p.zero_grad();
        assert!(p.grad.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn filter_admits_expected_groups() {
        use ParamKind::*;
        assert!(ParamFilter::BnOnly.admits(BnGamma));
        assert!(ParamFilter::BnOnly.admits(BnBeta));
        assert!(!ParamFilter::BnOnly.admits(ConvWeight));
        assert!(!ParamFilter::BnOnly.admits(LinearWeight));
        assert!(ParamFilter::ConvOnly.admits(ConvWeight));
        assert!(!ParamFilter::ConvOnly.admits(BnGamma));
        assert!(ParamFilter::FcOnly.admits(LinearBias));
        assert!(!ParamFilter::FcOnly.admits(ConvBias));
        assert!(ParamFilter::All.admits(BnGamma) && ParamFilter::All.admits(ConvWeight));
        assert!(!ParamFilter::Frozen.admits(BnGamma));
    }

    #[test]
    fn kind_predicates() {
        assert!(ParamKind::BnGamma.is_bn());
        assert!(ParamKind::ConvBias.is_conv());
        assert!(ParamKind::LinearWeight.is_fc());
        assert!(!ParamKind::LinearWeight.is_bn());
    }
}
