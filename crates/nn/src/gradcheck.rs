//! Finite-difference gradient checking utilities.
//!
//! Every layer and loss in this stack is verified against central finite
//! differences; this module provides the shared machinery (also used by the
//! downstream `ld-ufld` tests for whole-network checks).

use crate::layer::{Layer, Mode};
use ld_tensor::Tensor;

/// Result of a gradient check: worst absolute and relative deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheck {
    /// Maximum absolute difference between analytic and numeric gradients.
    pub max_abs_err: f32,
    /// Maximum relative difference (normalised by magnitude + 1e-3).
    pub max_rel_err: f32,
}

impl GradCheck {
    /// `true` when both deviations are below the tolerances.
    pub fn passes(&self, abs_tol: f32, rel_tol: f32) -> bool {
        self.max_abs_err <= abs_tol || self.max_rel_err <= rel_tol
    }
}

/// Checks a layer's input gradient for the scalar loss `L = Σ y²/2`
/// (so `∂L/∂y = y`) at the probe indices.
///
/// Returns the worst deviations across the probes.
///
/// # Panics
///
/// Panics if a probe index is out of range for `x`.
pub fn check_input_gradient(
    layer: &mut dyn Layer,
    x: &Tensor,
    mode: Mode,
    probes: &[usize],
    eps: f32,
) -> GradCheck {
    let y = layer.forward(x, mode);
    let analytic = layer.backward(&y);
    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for &i in probes {
        let mut xp = x.clone();
        xp.as_mut_slice()[i] += eps;
        let fp = 0.5 * layer.forward(&xp, mode).sq_norm();
        let mut xm = x.clone();
        xm.as_mut_slice()[i] -= eps;
        let fm = 0.5 * layer.forward(&xm, mode).sq_norm();
        let numeric = (fp - fm) / (2.0 * eps);
        let a = analytic.as_slice()[i];
        let abs = (numeric - a).abs();
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(abs / (numeric.abs().max(a.abs()) + 1e-3));
    }
    // Restore a coherent cache for the caller.
    let _ = layer.forward(x, mode);
    GradCheck {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
    }
}

/// Checks the gradient of every trainable parameter of `layer` (probing up
/// to `probes_per_param` entries each) for the loss `L = Σ y²/2`.
pub fn check_param_gradients(
    layer: &mut dyn Layer,
    x: &Tensor,
    mode: Mode,
    probes_per_param: usize,
    eps: f32,
) -> GradCheck {
    // Accumulate analytic grads.
    layer.zero_grad();
    let y = layer.forward(x, mode);
    layer.backward(&y);

    // Snapshot analytic gradients.
    let mut grads: Vec<(u64, Tensor)> = Vec::new();
    layer.visit_params(&mut |p| {
        if p.trainable {
            grads.push((p.id(), p.grad.clone()));
        }
    });

    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for (pid, analytic) in grads {
        let n = analytic.len();
        let step = (n / probes_per_param.max(1)).max(1);
        for i in (0..n).step_by(step) {
            let perturb = |delta: f32, layer: &mut dyn Layer| {
                layer.visit_params(&mut |p| {
                    if p.id() == pid {
                        p.value.as_mut_slice()[i] += delta;
                    }
                });
            };
            perturb(eps, layer);
            let fp = 0.5 * layer.forward(x, mode).sq_norm();
            perturb(-2.0 * eps, layer);
            let fm = 0.5 * layer.forward(x, mode).sq_norm();
            perturb(eps, layer); // restore
            let numeric = (fp - fm) / (2.0 * eps);
            let a = analytic.as_slice()[i];
            let abs = (numeric - a).abs();
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(abs / (numeric.abs().max(a.abs()) + 1e-3));
        }
    }
    let _ = layer.forward(x, mode);
    GradCheck {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::Relu;
    use crate::conv::Conv2d;
    use crate::linear::Linear;
    use ld_tensor::rng::SeededRng;

    #[test]
    fn relu_input_gradient_checks() {
        let mut layer = Relu::new();
        let x = SeededRng::new(1).uniform_tensor(&[2, 3, 4, 4], -1.0, 1.0);
        let probes: Vec<usize> = (0..x.len()).step_by(7).collect();
        let r = check_input_gradient(&mut layer, &x, Mode::Train, &probes, 1e-2);
        assert!(r.passes(2e-2, 1e-2), "{r:?}");
    }

    #[test]
    fn conv_param_gradients_check() {
        let mut layer = Conv2d::new("c", 2, 3, 3, 1, 1, true, 11);
        let x = SeededRng::new(2).uniform_tensor(&[2, 2, 5, 5], -1.0, 1.0);
        let r = check_param_gradients(&mut layer, &x, Mode::Train, 6, 1e-2);
        assert!(r.passes(5e-2, 2e-2), "{r:?}");
    }

    #[test]
    fn linear_both_gradients_check() {
        let mut layer = Linear::new("fc", 6, 4, 12);
        let x = SeededRng::new(3).uniform_tensor(&[3, 6], -1.0, 1.0);
        let probes: Vec<usize> = (0..x.len()).collect();
        let ri = check_input_gradient(&mut layer, &x, Mode::Train, &probes, 1e-2);
        assert!(ri.passes(2e-2, 1e-2), "{ri:?}");
        let rp = check_param_gradients(&mut layer, &x, Mode::Train, 8, 1e-2);
        assert!(rp.passes(5e-2, 2e-2), "{rp:?}");
    }
}
