//! Finite-difference gradient checking utilities.
//!
//! Every layer and loss in this stack is verified against central finite
//! differences; this module provides the shared machinery (also used by the
//! downstream `ld-ufld` tests for whole-network checks).
//!
//! Since the backward pass went batch-parallel, every check can run under
//! either [`Schedule::Pooled`] (the production fan-out) or
//! [`Schedule::Sequential`] (the inline width-1 reference), and
//! [`parallel_matches_sequential`] asserts the two schedules agree
//! **bitwise** on every gradient byte — the determinism contract of
//! `ld_tensor::parallel`'s ordered reduction.

use crate::layer::{Layer, Mode};
use ld_tensor::parallel::run_sequential;
use ld_tensor::Tensor;

/// Which backward schedule a gradient check runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// The production schedule: batch fans over the worker pool.
    Pooled,
    /// The width-1 reference: everything inline on the caller, in order
    /// (via `ld_tensor::parallel::run_sequential`).
    Sequential,
}

impl Schedule {
    fn run<R>(self, f: impl FnOnce() -> R) -> R {
        match self {
            Schedule::Pooled => f(),
            Schedule::Sequential => run_sequential(f),
        }
    }
}

/// Result of a gradient check: worst absolute and relative deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheck {
    /// Maximum absolute difference between analytic and numeric gradients.
    pub max_abs_err: f32,
    /// Maximum relative difference (normalised by magnitude + 1e-3).
    pub max_rel_err: f32,
}

impl GradCheck {
    /// `true` when both deviations are below the tolerances.
    pub fn passes(&self, abs_tol: f32, rel_tol: f32) -> bool {
        self.max_abs_err <= abs_tol || self.max_rel_err <= rel_tol
    }
}

/// Checks a layer's input gradient for the scalar loss `L = Σ y²/2`
/// (so `∂L/∂y = y`) at the probe indices.
///
/// Returns the worst deviations across the probes.
///
/// # Panics
///
/// Panics if a probe index is out of range for `x`.
pub fn check_input_gradient(
    layer: &mut dyn Layer,
    x: &Tensor,
    mode: Mode,
    probes: &[usize],
    eps: f32,
) -> GradCheck {
    check_input_gradient_on(layer, x, mode, probes, eps, Schedule::Pooled)
}

/// [`check_input_gradient`] under an explicit backward [`Schedule`].
pub fn check_input_gradient_on(
    layer: &mut dyn Layer,
    x: &Tensor,
    mode: Mode,
    probes: &[usize],
    eps: f32,
    schedule: Schedule,
) -> GradCheck {
    let y = schedule.run(|| layer.forward(x, mode));
    let analytic = schedule.run(|| layer.backward(&y));
    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for &i in probes {
        let mut xp = x.clone();
        xp.as_mut_slice()[i] += eps;
        let fp = 0.5 * layer.forward(&xp, mode).sq_norm();
        let mut xm = x.clone();
        xm.as_mut_slice()[i] -= eps;
        let fm = 0.5 * layer.forward(&xm, mode).sq_norm();
        let numeric = (fp - fm) / (2.0 * eps);
        let a = analytic.as_slice()[i];
        let abs = (numeric - a).abs();
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(abs / (numeric.abs().max(a.abs()) + 1e-3));
    }
    // Restore a coherent cache for the caller.
    let _ = layer.forward(x, mode);
    GradCheck {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
    }
}

/// Checks the gradient of every trainable parameter of `layer` (probing up
/// to `probes_per_param` entries each) for the loss `L = Σ y²/2`.
pub fn check_param_gradients(
    layer: &mut dyn Layer,
    x: &Tensor,
    mode: Mode,
    probes_per_param: usize,
    eps: f32,
) -> GradCheck {
    check_param_gradients_on(layer, x, mode, probes_per_param, eps, Schedule::Pooled)
}

/// [`check_param_gradients`] under an explicit backward [`Schedule`].
pub fn check_param_gradients_on(
    layer: &mut dyn Layer,
    x: &Tensor,
    mode: Mode,
    probes_per_param: usize,
    eps: f32,
    schedule: Schedule,
) -> GradCheck {
    // Accumulate analytic grads.
    layer.zero_grad();
    let y = schedule.run(|| layer.forward(x, mode));
    schedule.run(|| layer.backward(&y));

    // Snapshot analytic gradients.
    let mut grads: Vec<(u64, Tensor)> = Vec::new();
    layer.visit_params(&mut |p| {
        if p.trainable {
            grads.push((p.id(), p.grad.clone()));
        }
    });

    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for (pid, analytic) in grads {
        let n = analytic.len();
        let step = (n / probes_per_param.max(1)).max(1);
        for i in (0..n).step_by(step) {
            let perturb = |delta: f32, layer: &mut dyn Layer| {
                layer.visit_params(&mut |p| {
                    if p.id() == pid {
                        p.value.as_mut_slice()[i] += delta;
                    }
                });
            };
            perturb(eps, layer);
            let fp = 0.5 * layer.forward(x, mode).sq_norm();
            perturb(-2.0 * eps, layer);
            let fm = 0.5 * layer.forward(x, mode).sq_norm();
            perturb(eps, layer); // restore
            let numeric = (fp - fm) / (2.0 * eps);
            let a = analytic.as_slice()[i];
            let abs = (numeric - a).abs();
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(abs / (numeric.abs().max(a.abs()) + 1e-3));
        }
    }
    let _ = layer.forward(x, mode);
    GradCheck {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
    }
}

/// Every gradient a backward pass produced, as raw bit patterns: the input
/// gradient followed by every trainable parameter gradient (visit order).
/// Bit patterns — not `f32` compares — so `-0.0` vs `0.0` and NaN payloads
/// count as divergence.
pub fn gradient_bits(layer: &mut dyn Layer, grad_in: &Tensor) -> Vec<u32> {
    let mut bits: Vec<u32> = grad_in.as_slice().iter().map(|v| v.to_bits()).collect();
    layer.visit_params(&mut |p| {
        if p.trainable {
            bits.extend(p.grad.as_slice().iter().map(|v| v.to_bits()));
        }
    });
    bits
}

/// Runs `layer`'s forward+backward under the pooled schedule and again under
/// the sequential reference, and returns `true` iff **every** gradient —
/// input gradient and all trainable parameter gradients — matches bitwise.
///
/// This is the executable form of the determinism contract: the pooled
/// backward must be indistinguishable, byte for byte, from the width-1
/// schedule at any pool width (the integration suites re-run it under
/// `LD_POOL_THREADS` overrides of 2 and 8).
pub fn parallel_matches_sequential(
    layer: &mut dyn Layer,
    x: &Tensor,
    grad_out: &Tensor,
    mode: Mode,
) -> bool {
    layer.zero_grad();
    let _ = layer.forward(x, mode);
    let gin = layer.backward(grad_out);
    let pooled = gradient_bits(layer, &gin);

    layer.zero_grad();
    let gin = run_sequential(|| {
        let _ = layer.forward(x, mode);
        layer.backward(grad_out)
    });
    let sequential = gradient_bits(layer, &gin);
    pooled == sequential
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::Relu;
    use crate::bn::{BatchNorm2d, BnStatsPolicy};
    use crate::conv::Conv2d;
    use crate::linear::Linear;
    use ld_tensor::rng::SeededRng;

    #[test]
    fn relu_input_gradient_checks() {
        let mut layer = Relu::new();
        let x = SeededRng::new(1).uniform_tensor(&[2, 3, 4, 4], -1.0, 1.0);
        let probes: Vec<usize> = (0..x.len()).step_by(7).collect();
        let r = check_input_gradient(&mut layer, &x, Mode::Train, &probes, 1e-2);
        assert!(r.passes(2e-2, 1e-2), "{r:?}");
    }

    #[test]
    fn conv_param_gradients_check() {
        let mut layer = Conv2d::new("c", 2, 3, 3, 1, 1, true, 11);
        let x = SeededRng::new(2).uniform_tensor(&[2, 2, 5, 5], -1.0, 1.0);
        let r = check_param_gradients(&mut layer, &x, Mode::Train, 6, 1e-2);
        assert!(r.passes(5e-2, 2e-2), "{r:?}");
    }

    /// Batch > 1, both schedules: the batch-parallel backward must stay
    /// finite-difference-correct under the pooled and sequential schedules.
    #[test]
    fn conv_batched_param_gradients_check_both_schedules() {
        let x = SeededRng::new(41).uniform_tensor(&[8, 2, 5, 5], -1.0, 1.0);
        for schedule in [Schedule::Pooled, Schedule::Sequential] {
            let mut layer = Conv2d::new("c", 2, 3, 3, 1, 1, true, 11);
            let r = check_param_gradients_on(&mut layer, &x, Mode::Train, 6, 1e-2, schedule);
            assert!(r.passes(5e-2, 2e-2), "{schedule:?}: {r:?}");
        }
    }

    #[test]
    fn bn_batched_gradients_check_both_schedules() {
        let x = SeededRng::new(42).uniform_tensor(&[8, 3, 4, 4], -1.0, 1.0);
        let probes: Vec<usize> = (0..x.len()).step_by(11).collect();
        for schedule in [Schedule::Pooled, Schedule::Sequential] {
            let mut layer = BatchNorm2d::new("bn", 3);
            layer.policy = BnStatsPolicy::Batch;
            let ri = check_input_gradient_on(&mut layer, &x, Mode::Eval, &probes, 1e-2, schedule);
            assert!(ri.passes(2e-2, 1e-2), "{schedule:?}: {ri:?}");
            let rp = check_param_gradients_on(&mut layer, &x, Mode::Eval, 4, 1e-2, schedule);
            assert!(rp.passes(5e-2, 2e-2), "{schedule:?}: {rp:?}");
        }
    }

    /// Pooled ≡ sequential, bitwise, for every batch-parallel layer.
    #[test]
    fn parallel_backward_is_bitwise_sequential() {
        let mut rng = SeededRng::new(43);
        let x = rng.uniform_tensor(&[8, 3, 6, 6], -1.0, 1.0);

        let mut conv = Conv2d::new("c", 3, 4, 3, 1, 1, true, 19);
        let gy = rng.uniform_tensor(&[8, 4, 6, 6], -1.0, 1.0);
        assert!(parallel_matches_sequential(&mut conv, &x, &gy, Mode::Train));

        let mut bn = BatchNorm2d::new("bn", 3);
        bn.policy = BnStatsPolicy::Batch;
        let gy = rng.uniform_tensor(&[8, 3, 6, 6], -1.0, 1.0);
        assert!(parallel_matches_sequential(&mut bn, &x, &gy, Mode::Eval));

        let mut fc = Linear::new("fc", 9, 5, 23);
        let xf = rng.uniform_tensor(&[8, 9], -1.0, 1.0);
        let gy = rng.uniform_tensor(&[8, 5], -1.0, 1.0);
        assert!(parallel_matches_sequential(&mut fc, &xf, &gy, Mode::Train));
    }

    #[test]
    fn linear_both_gradients_check() {
        let mut layer = Linear::new("fc", 6, 4, 12);
        let x = SeededRng::new(3).uniform_tensor(&[3, 6], -1.0, 1.0);
        let probes: Vec<usize> = (0..x.len()).collect();
        let ri = check_input_gradient(&mut layer, &x, Mode::Train, &probes, 1e-2);
        assert!(ri.passes(2e-2, 1e-2), "{ri:?}");
        let rp = check_param_gradients(&mut layer, &x, Mode::Train, 8, 1e-2);
        assert!(rp.passes(5e-2, 2e-2), "{rp:?}");
    }
}
