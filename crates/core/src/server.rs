//! The **multi-stream adaptation server**: N camera streams, one model,
//! one entropy-governed adaptation loop.
//!
//! The paper deploys LD-BN-ADAPT for a single camera; this module batches
//! several logical camera streams (e.g. a [`ld_carlane::StreamSet`], each
//! stream on its own drift schedule) through one shared UFLD model so the
//! batch-parallel dense kernels run at useful occupancy and the adaptation
//! backward is paid once per tick instead of once per stream.
//!
//! # The mux/demux contract
//!
//! Each [`AdaptServer::process_batch`] call takes at most one frame per
//! stream, packs them into a single NCHW batch, runs **one** batched
//! forward, and demultiplexes per-stream statistics back out:
//!
//! * **Shared across streams** — the model weights, the BN statistics seen
//!   by the forward (under [`ld_nn::BnStatsPolicy::Batch`] the batch
//!   statistics mix all admitted streams: every camera sees the same
//!   normalisation, which is what lets one backward serve all of them), the
//!   SGD optimizer state, and the known-good BN snapshot used for safety
//!   rollback.
//! * **Per-stream** — the entropy reference band (each stream's notion of
//!   "confident" tracks *its* conditions), warm-up progress, and the
//!   duty-cycle telemetry ([`GovernorStats`]): a stream driving into a
//!   tunnel adapts while a stream in steady daylight skips, even inside the
//!   same tick.
//!
//! # Per-stream BN state banks
//!
//! The shared split above has one deliberate compromise: divergent domains
//! fight over one set of γ/β and one batch's statistics — a tunnel camera
//! and a noon camera drag each other off-domain (CARLANE's MuLane
//! multi-target setting is exactly this regime). With
//! [`ServerConfig::with_bn_banks`], the normalisation state moves from
//! "shared" to "per-stream": every stream owns a [`BnBank`] (one
//! [`ld_nn::BnState`] per BN layer, ~1 % of the model), plus its own SGD
//! momentum, known-good rollback snapshot and entropy band, while conv/FC
//! weights stay shared.
//!
//! **Bank swap lifecycle of one tick.** At mux time the admitted streams'
//! banks are swapped into the model's per-image BN *lanes*
//! ([`UfldModel::bind_bn_lanes`] — O(layers·batch) pointer swaps, nothing
//! copied): the single batched forward then normalises image `i` with
//! stream `i`'s own γ/β and **per-image** batch statistics, and the single
//! batched backward accumulates each lane's entropy gradient into *that
//! stream's* bank. After the backward the banks are swapped back out,
//! each triggered stream's optimizer steps its own bank, confident streams
//! bless their own known-good snapshots, and a poisoned stream rolls back
//! *its* bank without touching anyone else's. Per-image statistics make a
//! lane bitwise-identical to giving that stream a dedicated model copy —
//! the isolation tests pin this — so banks recover dedicated-model
//! accuracy at a fraction of the memory, and one batched GEMM pass still
//! serves every stream.
//!
//! **Interaction with the quantized fast path.** The int8 snapshot's BN
//! fold lives in per-channel epilogue tables, so banks quantize cheaply:
//! the snapshot keeps one epilogue table per stream
//! ([`QuantUfldModel::ensure_banks`]) and serves a mixed batch with
//! per-image table selection ([`QuantUfldModel::forward_frames_banked`]).
//! A *per-stream* dirty flag replaces the shared one: when stream `s`
//! adapts or rolls back, only its table is stale, and the lazy
//! [`QuantUfldModel::refresh_affine_bank`] re-fold before `s`'s next
//! served frame is O(channels) **for that stream alone** — integer weights
//! and the other streams' tables are untouched. The tables are
//! path-agnostic (zero-point 0 on both the i16 and u8 activation paths
//! keeps the fold the same `scale·acc + shift` form), so the u8
//! `vpdpbusd` fast path inherits the same O(channels) refresh.
//!
//! The adaptation step reuses the tick's forward activations: the entropy
//! gradient is masked to the triggered streams (renormalised to their
//! count) and backpropagated once. A triggered frame therefore costs one
//! forward + a shared slice of one backward (plus an optional telemetry
//! forward per tick), where the pre-refactor single-stream loop paid three
//! forwards + one backward per frame — batching wins even before
//! core-count parallelism enters, and `BENCH_server.json` tracks the
//! margin against the stock [`crate::AdaptGovernor`] API.
//!
//! # Deadline-aware admission
//!
//! With an [`AdmissionGate`] configured, [`AdaptServer::serve`] asks the
//! Orin cost model how many offered frames fit the frame budget
//! (`cost(batch) ≤ deadline`, [`ld_orin::admit_batch`]): surplus frames
//! defer to the next tick and the adapt step is shed first when the budget
//! is tight — frames are hard real-time, adaptation is a quality
//! refinement.
//!
//! The single-camera API is preserved exactly: [`crate::AdaptGovernor`] is
//! now a thin wrapper over a one-stream server and its behaviour (trigger
//! maths, rollback, telemetry) is unchanged.
//!
//! # The int8 inference fast path
//!
//! With [`ServerConfig::with_quantized_inference`], serving runs on an
//! [`ld_quant::QuantUfldModel`] snapshot of the shared f32 model: every
//! admitted frame's logits/entropy come from the quantized forward (the
//! stem on the signed i16 kernel, every post-ReLU interior layer on the
//! u8 `vpdpbusd` kernel — [`ld_quant::ActPath`] — for ~4–8× arithmetic
//! density), and only **triggered** streams pay f32 — one exact
//! forward over the triggered sub-batch to populate the backward's
//! activation caches, then the shared entropy-descent step as before. The
//! snapshot is dirty-flagged on every parameter movement (adaptation step
//! or rollback) and lazily re-synchronised before the next quantized tick —
//! an O(channels) epilogue re-fold, since BN-only adaptation never touches
//! the integer weights ([`ld_quant::QuantUfldModel::refresh_affine`]).
//! Pair the fast path with an [`AdmissionGate::with_precision`]
//! ([`Precision::Int8`]) gate so the deadline query credits the cheaper
//! inference ticks and admits more streams per tick.
//!
//! # Measured-latency admission feedback
//!
//! The gate's roofline predictions carry model error and host jitter. With
//! [`ServerConfig::with_latency_feedback`], [`AdaptServer::serve`] measures
//! each tick's actual wall-clock, maintains an EWMA of
//! `actual / predicted`, and feeds it to [`ld_orin::admit_batch_with`] as a
//! cost-scale on the next tick's query — a slow host shrinks admissions
//! before deadlines slip, a fast host grows them before capacity idles.
//!
//! # The ingest lifecycle: mailbox → age-gated admission → batch → decode
//!
//! [`AdaptServer::serve`] *polls* its streams synchronously — fine for
//! experiments, but real cameras deliver frames on their own jittered
//! clocks and keep delivering while the server is busy.
//! [`AdaptServer::serve_ingest`] serves an [`ld_ingest::IngestFrontEnd`]
//! instead, and one tick flows through four stages:
//!
//! 1. **Mailbox** — each camera's producer pushes stamped frames (sequence
//!    number + due time) into its own lock-free bounded
//!    [`ld_ingest::Mailbox`] on the camera's clock. A slow tick never
//!    blocks a camera: overflow evicts the oldest frame at ingest, and
//!    every loss is observable (eviction counters, sequence-gap
//!    accounting). At each tick boundary the server drains the mailboxes
//!    under their [`ld_ingest::OverflowPolicy`]; frames come out stamped
//!    with their queue **age**.
//! 2. **Age-gated admission** — the drained frames (plus any deferred
//!    backlog) go to [`ld_orin::admit_batch_aged`] through the
//!    [`AdmissionGate`]: a frame whose age plus the predicted tick latency
//!    exceeds the gate's staleness bound
//!    ([`AdmissionGate::with_staleness`]) is **shed before batching** — it
//!    would arrive expired, and its slot shrinks the batch so the frames
//!    that remain serve fresher. Shed and deferral are distinct:
//!    deferred frames wait (and age) in the pending queue, shed frames are
//!    dropped and tallied ([`ServerStats::stale_shed_frames`]).
//! 3. **Batch** — the admitted frames ride the ordinary tick
//!    (`process_batch_gated`): one batched forward, per-stream governor
//!    demux, shared (or banked) adaptation, exactly the synchronous
//!    engine. At nominal load the tick batches are identical to
//!    [`AdaptServer::serve`]'s, and the adaptation state is **bitwise**
//!    identical — the parity tests pin this.
//! 4. **Decode** — lanes are decoded and scored per stream, and the tick's
//!    busy time is folded back into the front end
//!    ([`ld_ingest::IngestFrontEnd::record_busy`]): measured wall-clock on
//!    the real clock, the gate's predicted latency on the deterministic
//!    manual clock, counting tick-deadline overruns either way.
//!
//! Backpressure telemetry flows out through [`ServerStats`]
//! (`stale_shed_frames`, `ingest_dropped_frames`, `tick_overruns`) and
//! per-stream through [`StreamReport::ingest`]
//! ([`ld_ingest::CamReport`]: produced/delivered/dropped, peak queue
//! depth).
//!
//! # Self-healing serving
//!
//! A fleet server outlives its sensors: cameras wedge, DMA engines hand
//! over NaN-splattered or frozen buffers, and an unlucky update can drive
//! one stream's normalisation state numerically divergent. With
//! [`ServerConfig::with_self_healing`] the server defends itself at three
//! layers, all per stream, none of which can disturb a healthy neighbour:
//!
//! 1. **Frame integrity guard** ([`AdaptServer::screen_frame`]) — before a
//!    frame costs any batching/forward budget, it is screened for
//!    non-finite pixels and for frozen content (a run of bitwise-identical
//!    frames longer than [`SelfHealConfig::freeze_threshold`] means the
//!    capture pipeline is wedged, and a frozen frame would keep folding
//!    into the entropy reference as fraudulent "confidence"). Rejected
//!    frames are tallied ([`StreamFaultStats::rejected_frames`],
//!    [`ServerStats::rejected_frames`]) and the stream simply skips the
//!    tick. Both serving pumps apply the guard; callers driving
//!    [`AdaptServer::process_batch`] directly can invoke it themselves.
//! 2. **Divergence watchdog** — a non-finite serving entropy (or, in bank
//!    mode, a non-finite bank gradient) is numerical divergence, not
//!    drift: the trigger maths would compare NaN and silently do nothing
//!    while the reference band rots. The watchdog books the event, rolls
//!    the stream back to its blessed snapshot (the shared BN state, or the
//!    stream's own bank), and opens a **quarantine**.
//! 3. **Quarantine with doubling backoff** — a quarantined stream keeps
//!    being served (eval-only: its frames ride the batched — possibly
//!    int8 — forward as usual) but cannot adapt for
//!    [`SelfHealConfig::quarantine_base`] served ticks; each re-divergence
//!    doubles the next term up to [`SelfHealConfig::quarantine_max`]. When
//!    the cooldown expires the tick index is recorded in
//!    [`StreamFaultStats::recovery_tick`] and the stream resumes normal
//!    triggering. On the ingest pump, cameras the front end has declared
//!    [`ld_ingest::CamHealth::Dead`] are additionally excluded from the
//!    drain ([`ld_ingest::IngestFrontEnd::dead_mask`]), so a wedged sensor
//!    costs zero serving budget until it comes back.
//!
//! Self-healing is **opt-in** and the default path is bitwise untouched;
//! the chaos suite (`tests/chaos_serving.rs`) pins that faults injected
//! into one stream leave every healthy stream's adaptation state bitwise
//! identical to a fault-free run.

use crate::bn_adapt::{AdaptStep, FrameOutcome, LdBnAdaptConfig};
use crate::governor::{GovernorConfig, GovernorStats};
use ld_carlane::{LabeledFrame, StreamSet};
use ld_ingest::{CamReport, IngestFrame, IngestFrontEnd};
use ld_nn::{loss, Layer, Mode, ParamFilter, Sgd};
use ld_obs::{apportion, KernelSink, MetricsRegistry, ObsConfig, Span, TickTrace};
use ld_orin::{
    admit_batch_aged, admit_batch_with, AdaptCostModel, AgedAdmission, BatchAdmission, Deadline,
    FrameLatency, PowerMode, Precision,
};
use ld_quant::{QuantUfldModel, QuantizeModel};
use ld_tensor::Tensor;
use ld_ufld::{decode_batch, score_image, AccuracyReport, BankMeta, BnBank, UfldModel};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// Copies the current BN parameter values (name → value).
pub(crate) fn snapshot_bn(model: &mut UfldModel) -> Vec<(String, Tensor)> {
    let mut out = Vec::new();
    model.visit_params(&mut |p| {
        if p.kind.is_bn() {
            out.push((p.name.clone(), p.value.clone()));
        }
    });
    out
}

/// Restores BN parameter values captured by [`snapshot_bn`].
pub(crate) fn restore_bn(model: &mut UfldModel, state: &[(String, Tensor)]) {
    let mut i = 0;
    model.visit_params(&mut |p| {
        if p.kind.is_bn() {
            debug_assert_eq!(p.name, state[i].0);
            p.value = state[i].1.clone();
            i += 1;
        }
    });
}

/// Per-stream governor state — everything that must NOT be shared when
/// several cameras ride one model.
#[derive(Debug, Default)]
struct StreamState {
    /// EMA over this stream's accepted-confident frame entropies.
    reference_entropy: Option<f32>,
    /// This stream's duty-cycle telemetry.
    stats: GovernorStats,
    /// This stream's BN state bank (bank mode only). Taken out of the slot
    /// while bound to a model lane during a tick.
    bank: Option<BnBank>,
    /// This stream's known-good bank snapshot for safety rollback (bank
    /// mode only).
    good_bank: Option<BnBank>,
    /// This stream's optimizer (bank mode only: momentum must not leak
    /// across domains).
    opt: Option<Sgd>,
    /// Ticks on which this stream's bank was swapped into a model lane.
    bank_swaps: usize,
    /// Last tick index on which this stream's quantized epilogue table was
    /// re-folded from its bank.
    last_refold_tick: Option<usize>,
    /// Last tick on which this stream blessed its good-bank snapshot
    /// (bank mode; `None` until the first confident serve). Rides the
    /// migration metadata so a moved bank is self-describing.
    last_bless_tick: Option<usize>,
    /// This stream's self-healing state (guard memory + quarantine;
    /// dormant unless [`ServerConfig::with_self_healing`] armed it).
    fault: StreamFaultState,
}

/// Deadline gate: the Orin cost model + power mode + deadline the admission
/// query runs against.
#[derive(Debug, Clone)]
pub struct AdmissionGate {
    cost: AdaptCostModel,
    mode: PowerMode,
    deadline: Deadline,
    infer: Precision,
    /// End-to-end freshness bound for the ingest path (ms): a frame whose
    /// queue age plus predicted tick latency exceeds it is shed at ingest.
    /// `None` disables staleness shedding.
    staleness_ms: Option<f64>,
}

impl AdmissionGate {
    /// Builds a gate from a cost model (hand-calibrated or refreshed from
    /// `BENCH_gemm.json` via [`ld_orin::Roofline::agx_orin_calibrated`]).
    /// Inference is costed at f32; see [`AdmissionGate::with_precision`].
    pub fn new(cost: AdaptCostModel, mode: PowerMode, deadline: Deadline) -> Self {
        AdmissionGate {
            cost,
            mode,
            deadline,
            infer: Precision::Fp32,
            staleness_ms: None,
        }
    }

    /// Costs the inference forward at `infer` (builder style) — pair
    /// [`Precision::Int8`] with [`ServerConfig::with_quantized_inference`]
    /// so the gate credits the quantized ticks.
    pub fn with_precision(mut self, infer: Precision) -> Self {
        self.infer = infer;
        self
    }

    /// Sets the end-to-end freshness bound of the ingest path (builder
    /// style): a drained frame is shed before batching when its queue age
    /// plus the predicted tick latency exceeds `ms` (see
    /// [`ld_orin::admit_batch_aged`]). A sensible deployment bound is a
    /// small multiple of the deadline budget.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is not positive and finite.
    pub fn with_staleness(mut self, ms: f64) -> Self {
        assert!(ms.is_finite() && ms > 0.0, "bad staleness bound {ms}");
        self.staleness_ms = Some(ms);
        self
    }

    /// The configured staleness bound, if any.
    pub fn staleness_ms(&self) -> Option<f64> {
        self.staleness_ms
    }

    /// The batch-aware deadline query (see [`ld_orin::admit_batch`]).
    pub fn admit(&self, offered: usize) -> BatchAdmission {
        self.admit_scaled(offered, 1.0)
    }

    /// The age-aware admission query of the ingest path: staleness
    /// shedding (against the [`AdmissionGate::with_staleness`] bound;
    /// no-op without one) plus the batch verdict over the fresh frames.
    ///
    /// Pathological inputs degrade instead of panicking — this sits on the
    /// serving hot path, where a poisoned timestamp (clock skew producing a
    /// negative age, a NaN from corrupted telemetry) must cost one shed
    /// frame, not the whole server. A non-finite or negative age is shed as
    /// stale before the strict [`ld_orin::admit_batch_aged`] preconditions
    /// see it; an empty (or fully-poisoned) offer admits nothing.
    pub fn admit_aged(&self, ages_ms: &[f64], cost_scale: f64) -> AgedAdmission {
        let poisoned = |a: &f64| !a.is_finite() || *a < 0.0;
        let mut stale: Vec<bool> = ages_ms.iter().map(poisoned).collect();
        let sane: Vec<f64> = ages_ms.iter().filter(|a| !poisoned(a)).copied().collect();
        if sane.is_empty() {
            return AgedAdmission {
                stale,
                admission: None,
            };
        }
        let aged = admit_batch_aged(
            &self.cost,
            self.mode,
            self.deadline.budget_ms,
            &sane,
            self.infer,
            Self::sane_scale(cost_scale),
            self.staleness_ms.unwrap_or(f64::INFINITY),
        );
        // Scatter the sane-subset verdicts back over the pre-shed slots so
        // `stale` stays in offer order.
        let mut verdicts = aged.stale.iter();
        for slot in stale.iter_mut().filter(|s| !**s) {
            *slot = *verdicts.next().expect("verdict per sane offer");
        }
        AgedAdmission {
            stale,
            admission: aged.admission,
        }
    }

    /// [`AdmissionGate::admit`] with a measured-latency cost-scale applied
    /// to every prediction (see [`ld_orin::admit_batch_with`]).
    ///
    /// Degrades on pathological input rather than panicking: a zero-frame
    /// offer admits nothing (a trivially on-deadline no-adapt verdict), and
    /// a non-finite or non-positive cost-scale falls back to the
    /// uncorrected roofline prediction.
    pub fn admit_scaled(&self, offered: usize, cost_scale: f64) -> BatchAdmission {
        if offered == 0 {
            return BatchAdmission {
                batch: 0,
                adapt: false,
                latency_ms: 0.0,
                fits_deadline: true,
            };
        }
        admit_batch_with(
            &self.cost,
            self.mode,
            self.deadline.budget_ms,
            offered,
            self.infer,
            Self::sane_scale(cost_scale),
        )
    }

    /// A measured-latency correction must be a positive finite ratio; a
    /// poisoned sample (NaN timer, zero-duration division) falls back to
    /// the uncorrected roofline instead of panicking the gate.
    fn sane_scale(cost_scale: f64) -> f64 {
        if cost_scale.is_finite() && cost_scale > 0.0 {
            cost_scale
        } else {
            1.0
        }
    }

    /// The configured inference-costing precision.
    pub fn precision(&self) -> Precision {
        self.infer
    }

    /// Uncorrected predicted latency of a tick that served `batch` frames,
    /// of which `adapted` triggered the f32 adaptation step, plus an
    /// optional `remeasured`-frame f32 telemetry forward
    /// ([`ServerConfig::measure_entropy_after`]) — the denominator of the
    /// measured-latency feedback sample. Predicting the work the tick
    /// *actually did* matters: pricing an inference-only (or
    /// sub-batch-adapting quantized) tick at the all-triggered admission
    /// estimate biases samples low, and omitting the telemetry forward
    /// biases adapting ticks high; either way the "corrected" gate drifts
    /// off the true host ratio.
    pub fn predict_ms(&self, batch: usize, adapted: usize, remeasured: usize) -> f64 {
        let (lat, remeasure_ms) = self.predict_stages(batch, adapted, remeasured);
        lat.total_ms() + remeasure_ms
    }

    /// The stage-level breakdown behind [`AdmissionGate::predict_ms`]: the
    /// tick's [`FrameLatency`] plus the telemetry re-measure forward's cost
    /// (0 when `remeasured == 0`). Tick tracing apportions a manual-clock
    /// tick's busy time over exactly these components, so the exported
    /// stage spans sum to the recorded busy time by construction.
    pub fn predict_stages(
        &self,
        batch: usize,
        adapted: usize,
        remeasured: usize,
    ) -> (FrameLatency, f64) {
        let lat = self
            .cost
            .mixed_tick_at(self.mode, batch, adapted, self.infer);
        let remeasure_ms = if remeasured > 0 {
            self.cost.forward_only_ms(self.mode, remeasured)
        } else {
            0.0
        };
        (lat, remeasure_ms)
    }
}

/// Thresholds of the self-healing layer (see the *self-healing serving*
/// module docs). [`SelfHealConfig::default`] is a sensible deployment
/// posture; construct-and-override for anything custom.
#[derive(Debug, Clone, Copy)]
pub struct SelfHealConfig {
    /// Reject frames containing non-finite pixels before batching.
    pub reject_nonfinite: bool,
    /// Consecutive bitwise-identical frames tolerated before the stream is
    /// treated as frozen and further repeats are rejected. `0` disables
    /// freeze detection.
    pub freeze_threshold: u32,
    /// Base quarantine term after a divergence, in served ticks of the
    /// affected stream.
    pub quarantine_base: u32,
    /// Backoff clamp: no quarantine term grows past this.
    pub quarantine_max: u32,
}

impl Default for SelfHealConfig {
    fn default() -> Self {
        SelfHealConfig {
            reject_nonfinite: true,
            freeze_threshold: 3,
            quarantine_base: 4,
            quarantine_max: 64,
        }
    }
}

/// Configuration of the multi-stream server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The adaptation engine settings (learning rate, momentum, BN policy,
    /// parameter filter). `batch_size` must be 1: the server triggers per
    /// frame and forms its own batches from concurrently-admitted streams.
    pub adapt: LdBnAdaptConfig,
    /// Per-stream trigger policy.
    pub governor: GovernorConfig,
    /// Hard cap on frames per tick (the packing buffer / scratch budget).
    pub max_batch: usize,
    /// Optional deadline gate consulted by [`AdaptServer::serve`].
    pub admission: Option<AdmissionGate>,
    /// Whether adaptation steps re-run the forward to report
    /// `entropy_after` ([`AdaptStep`] telemetry). The single-stream wrapper
    /// keeps it on for parity with [`crate::LdBnAdapter`]; throughput-bound
    /// servers turn it off and save a forward per adapted tick.
    pub measure_entropy_after: bool,
    /// Serve confident streams from an int8 [`QuantUfldModel`] snapshot of
    /// the shared model (see the module docs). Requires
    /// [`ld_nn::ParamFilter::BnOnly`] adaptation — the snapshot re-folds BN
    /// movement without requantizing weights.
    pub quantized_inference: bool,
    /// Blend the EWMA of measured tick wall-clock over predicted latency
    /// into the admission query (no effect without an [`AdmissionGate`]).
    pub latency_feedback: bool,
    /// Give every stream its own BN state bank (γ/β + statistics + SGD
    /// momentum + rollback snapshot), swapped into per-image model lanes at
    /// demux — the multi-target configuration (see the module docs). Off by
    /// default: the shared-normalisation behaviour of the original server
    /// is preserved behind this flag. Requires
    /// [`ld_nn::ParamFilter::BnOnly`] adaptation.
    pub bn_banks: bool,
    /// Self-healing: frame integrity guard + divergence quarantine (see
    /// the module docs). `None` (the default) leaves every serving path
    /// bitwise identical to the pre-self-healing server.
    pub self_heal: Option<SelfHealConfig>,
    /// Observability: tick tracing + kernel counters (see `ld_obs`). Off
    /// by default; enabling records telemetry around the serving hot path
    /// but never touches batching, admission, or the model, so served
    /// bytes stay bitwise identical either way (pinned by
    /// `tests/obs_tracing.rs`).
    pub obs: ObsConfig,
}

impl ServerConfig {
    /// Server configuration with no admission gate and full telemetry.
    pub fn new(adapt: LdBnAdaptConfig, governor: GovernorConfig, max_batch: usize) -> Self {
        ServerConfig {
            adapt,
            governor,
            max_batch,
            admission: None,
            measure_entropy_after: true,
            quantized_inference: false,
            latency_feedback: false,
            bn_banks: false,
            self_heal: None,
            obs: ObsConfig::default(),
        }
    }

    /// Attaches a deadline gate (builder style).
    pub fn with_admission(mut self, gate: AdmissionGate) -> Self {
        self.admission = Some(gate);
        self
    }

    /// Disables the post-step entropy telemetry forward (builder style).
    pub fn without_step_telemetry(mut self) -> Self {
        self.measure_entropy_after = false;
        self
    }

    /// Serves confident streams from the int8 snapshot (builder style).
    pub fn with_quantized_inference(mut self) -> Self {
        self.quantized_inference = true;
        self
    }

    /// Closes the admission loop on measured tick latency (builder style).
    pub fn with_latency_feedback(mut self) -> Self {
        self.latency_feedback = true;
        self
    }

    /// Gives every stream its own BN state bank (builder style; see the
    /// module docs for the swap lifecycle).
    pub fn with_bn_banks(mut self) -> Self {
        self.bn_banks = true;
        self
    }

    /// Arms the self-healing layer (builder style; see the *self-healing
    /// serving* module docs).
    ///
    /// # Panics
    ///
    /// Panics if `heal.quarantine_base == 0` or
    /// `heal.quarantine_max < heal.quarantine_base`.
    pub fn with_self_healing(mut self, heal: SelfHealConfig) -> Self {
        assert!(heal.quarantine_base > 0, "SelfHealConfig: zero quarantine");
        assert!(
            heal.quarantine_max >= heal.quarantine_base,
            "SelfHealConfig: quarantine_max {} below base {}",
            heal.quarantine_max,
            heal.quarantine_base
        );
        self.self_heal = Some(heal);
        self
    }

    /// Arms observability (builder style): per-tick stage spans + kernel
    /// counters, drained via [`AdaptServer::take_traces`].
    pub fn with_observability(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }
}

/// Whole-server telemetry (per-stream counters live in [`GovernorStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerStats {
    /// Batched ticks processed.
    pub ticks: usize,
    /// Frames processed across all streams.
    pub frames: usize,
    /// Shared adaptation steps taken.
    pub adapt_steps: usize,
    /// Ticks where triggered streams wanted adaptation but the admission
    /// verdict shed it (deadline pressure).
    pub shed_adapt_ticks: usize,
    /// Frame-deferrals: offered frames pushed to a later tick because the
    /// admitted batch was smaller than the offer.
    pub deferred_frames: usize,
    /// Ticks on which a poisoned-BN rollback fired.
    pub rollback_ticks: usize,
    /// Ingest path only: frames shed *before batching* because their queue
    /// age plus the predicted tick latency exceeded the gate's staleness
    /// bound (see [`AdmissionGate::with_staleness`]).
    pub stale_shed_frames: usize,
    /// Ingest path only: frames dropped inside the mailboxes (overflow
    /// evictions and latest-wins skips), per the front end's sequence-gap
    /// accounting.
    pub ingest_dropped_frames: usize,
    /// Ingest path only: ticks whose processing time exceeded the tick
    /// period (measured on the real clock, predicted on the manual one).
    pub tick_overruns: usize,
    /// Self-healing only: frames rejected by the integrity guard
    /// (non-finite pixels or frozen content) before batching.
    pub rejected_frames: usize,
    /// Self-healing only: divergence events booked by the watchdog
    /// (non-finite serving entropy or bank gradient).
    pub divergence_events: usize,
    /// Self-healing only: served stream-ticks spent in quarantine
    /// (eval-only serving while a cooldown runs down).
    pub quarantine_ticks: usize,
}

/// Per-stream self-healing telemetry (`None` unless the server runs with
/// [`ServerConfig::with_self_healing`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamFaultStats {
    /// Frames the integrity guard rejected before batching (includes the
    /// frozen ones).
    pub rejected_frames: usize,
    /// Rejected frames that were frozen repeats specifically.
    pub frozen_frames: usize,
    /// Divergence events (non-finite serving entropy or bank gradient),
    /// each of which rolled the stream back to its blessed state.
    pub divergence_events: usize,
    /// Served ticks this stream spent quarantined (eval-only).
    pub quarantine_ticks: usize,
    /// Quarantines opened (re-divergence inside a running cooldown
    /// restarts the countdown instead of opening a new one).
    pub quarantines: usize,
    /// Server tick on which the most recent quarantine expired and
    /// adaptation resumed (`None` while quarantined or never quarantined).
    pub recovery_tick: Option<usize>,
}

/// Per-stream self-healing state: the integrity guard's frame memory plus
/// the quarantine countdown (see the *self-healing serving* module docs).
/// `Clone` because stream migration carries it verbatim — a quarantined
/// stream must stay quarantined on its new shard.
#[derive(Debug, Default, Clone)]
struct StreamFaultState {
    /// Content hash of the last screened frame (freeze detection).
    last_frame_hash: Option<u64>,
    /// Consecutive screened frames with an identical hash.
    repeat_count: u32,
    /// Served ticks of eval-only quarantine still to run (0 = not
    /// quarantined).
    cooldown: u32,
    /// The term the current quarantine was opened with (re-divergence
    /// reloads the countdown to this).
    term: u32,
    /// The term the *next* quarantine would impose; doubles on every
    /// opened quarantine, clamped to [`SelfHealConfig::quarantine_max`].
    /// 0 means "unset — use the configured base".
    backoff: u32,
    stats: StreamFaultStats,
}

impl StreamFaultState {
    /// Books one divergence: opens a quarantine (doubling the next term)
    /// or restarts a running countdown.
    fn diverge(&mut self, heal: &SelfHealConfig) {
        self.stats.divergence_events += 1;
        if self.cooldown == 0 {
            self.term = self.backoff.max(heal.quarantine_base);
            self.cooldown = self.term;
            self.backoff = (self.term * 2).min(heal.quarantine_max);
            self.stats.quarantines += 1;
            self.stats.recovery_tick = None;
        } else {
            self.cooldown = self.term;
        }
    }
}

/// Whether a bank's affine values (γ/β — the state serving actually
/// normalises with; the frozen running statistics cannot diverge through
/// serving) are all finite.
fn bank_affine_finite(bank: &BnBank) -> bool {
    bank.states().iter().all(|s| {
        s.gamma.value.as_slice().iter().all(|v| v.is_finite())
            && s.beta.value.as_slice().iter().all(|v| v.is_finite())
    })
}

/// FNV-1a over the frame's pixel bit patterns — the frozen-frame detector
/// compares content identity, so the bitwise hash (not an approximate
/// one) is the right tool.
fn hash_frame(frame: &Tensor) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in frame.as_slice() {
        h ^= u64::from(v.to_bits());
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Per-stream BN-bank telemetry (bank mode only; see
/// [`ServerConfig::with_bn_banks`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BankTelemetry {
    /// Ticks on which this stream's bank was active in a served batch
    /// (an f32 lane swap, or epilogue-table selection on the int8 path).
    pub bank_swaps: usize,
    /// Last tick on which the stream's quantized epilogue table was
    /// re-folded from its bank (`None` until the int8 fast path first
    /// serves the stream; always `None` on the f32 path).
    pub last_refold_tick: Option<usize>,
    /// Euclidean distance of the bank's γ/β from their initial values —
    /// how far this domain has adapted away from the deployed weights.
    pub l2_from_init: f32,
}

/// Per-stream serving outcome of [`AdaptServer::serve`].
#[derive(Debug, Clone, Default)]
pub struct StreamReport {
    /// Trigger/duty telemetry.
    pub stats: GovernorStats,
    /// Decoded-lane accuracy against the stream's labels.
    pub report: AccuracyReport,
    /// Frames of this stream actually served.
    pub frames: usize,
    /// BN-bank telemetry (`None` unless the server runs with
    /// [`ServerConfig::with_bn_banks`]).
    pub bank: Option<BankTelemetry>,
    /// Per-camera ingest backpressure counters (`None` unless served
    /// through [`AdaptServer::serve_ingest`]).
    pub ingest: Option<CamReport>,
    /// Self-healing telemetry (`None` unless the server runs with
    /// [`ServerConfig::with_self_healing`]).
    pub fault: Option<StreamFaultStats>,
}

/// Aggregate result of a serving run.
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// One entry per stream.
    pub per_stream: Vec<StreamReport>,
    /// Whole-server counters.
    pub server: ServerStats,
}

/// A detached stream's complete adaptation state — the migration unit
/// produced by [`AdaptServer::detach_stream`] and consumed by
/// [`AdaptServer::attach_stream`] (same server or a different shard).
///
/// The banks travel as **tagged `LDBK` v2 bytes** ([`BnBank::to_bytes_tagged`]
/// with the camera tag and blessed tick as metadata) — the same CRC-framed
/// format banks persist with, so the in-process transport and a future
/// socket transport ship identical bytes, and a flipped bit anywhere is
/// rejected at attach. Momentum buffers ride alongside in canonical layer
/// order, because `LDBK` deliberately excludes optimizer state and velocity
/// is keyed by process-unique parameter ids that do not survive a decode
/// (see [`Sgd::velocity`]).
#[derive(Debug, Clone)]
pub struct StreamSnapshot {
    /// Fleet-global camera tag the snapshot was detached under.
    cam: u64,
    /// Tagged `LDBK` bytes of the live bank.
    bank_bytes: Vec<u8>,
    /// Tagged `LDBK` bytes of the blessed rollback snapshot.
    good_bank_bytes: Vec<u8>,
    /// Per-layer momentum buffers `(γ, β)` in canonical bank order
    /// (`None` where the optimizer had not created one yet).
    velocities: Vec<(Option<Tensor>, Option<Tensor>)>,
    reference_entropy: Option<f32>,
    stats: GovernorStats,
    bank_swaps: usize,
    last_refold_tick: Option<usize>,
    last_bless_tick: Option<usize>,
    fault: StreamFaultState,
    /// Source-server hyperparameters, asserted against the target config.
    lr: f32,
    momentum: f32,
}

impl StreamSnapshot {
    /// The camera tag carried in the bank metadata.
    pub fn cam_tag(&self) -> u64 {
        self.cam
    }

    /// The live bank's tagged `LDBK` v2 bytes — the wire format; bitwise
    /// preservation of these bytes across a migration is the contract the
    /// fleet tests pin.
    pub fn bank_bytes(&self) -> &[u8] {
        &self.bank_bytes
    }

    /// The blessed rollback snapshot's tagged `LDBK` v2 bytes.
    pub fn good_bank_bytes(&self) -> &[u8] {
        &self.good_bank_bytes
    }

    /// The detached stream's trigger/duty telemetry.
    pub fn stats(&self) -> GovernorStats {
        self.stats
    }

    /// Tick of the last good-bank blessing on the source server (also in
    /// the bank metadata, as [`BankMeta::blessed_tick`]).
    pub fn last_bless_tick(&self) -> Option<usize> {
        self.last_bless_tick
    }

    /// γ/β L2 distance of the carried live bank from `init` — the
    /// "cheapest to move" statistic the rebalancer ranks candidates by.
    pub fn l2_from_init(&self, init: &BnBank) -> f32 {
        let (bank, _) = BnBank::from_bytes_tagged(&self.bank_bytes).expect("snapshot bank bytes");
        bank.affine_l2_distance(init)
    }
}

/// The multi-stream adaptation server (see the module docs for the
/// mux/demux contract).
///
/// # Example
///
/// ```
/// use ld_adapt::{AdaptServer, GovernorConfig, LdBnAdaptConfig, ServerConfig};
/// use ld_ufld::{UfldConfig, UfldModel};
/// use ld_tensor::Tensor;
///
/// let cfg = UfldConfig::tiny(2);
/// let mut model = UfldModel::new(&cfg, 3);
/// let server_cfg = ServerConfig::new(
///     LdBnAdaptConfig::paper(1),
///     GovernorConfig::default(),
///     2,
/// );
/// let mut server = AdaptServer::new(server_cfg, 2, &mut model);
/// let f0 = Tensor::zeros(&[3, cfg.input_height, cfg.input_width]);
/// let f1 = Tensor::zeros(&[3, cfg.input_height, cfg.input_width]);
/// let outcomes = server.process_batch(&mut model, &[(0, &f0), (1, &f1)]);
/// assert_eq!(outcomes.len(), 2);
/// ```
#[derive(Debug)]
pub struct AdaptServer {
    cfg: ServerConfig,
    /// Shared optimizer (momentum state spans all streams' updates).
    opt: Sgd,
    /// Per-stream governor state.
    streams: Vec<StreamState>,
    /// Shared last-known-good BN snapshot for safety rollback.
    good_bn_state: Vec<(String, Tensor)>,
    /// The int8 serving snapshot (lazily built on the first quantized
    /// tick, which doubles as its calibration batch).
    quant: Option<QuantReplica>,
    /// The deployment-time bank every stream's bank started from (bank
    /// mode only; the reference point of the L2 telemetry).
    init_bank: Option<BnBank>,
    /// EWMA of measured-over-predicted tick latency (1.0 = roofline
    /// trusted; fed back into admission when latency feedback is on).
    latency_ratio: f64,
    /// Whole-server counters — the one source of truth [`ServerStats`],
    /// [`StreamReport`] and the fleet report render from.
    metrics: MetricsRegistry,
    /// Tick tracing state (`None` unless [`ServerConfig::obs`] is on).
    obs: Option<Box<ServerObs>>,
}

/// Tick-tracing state of one server: the kernel sink its ticks bind, and
/// the tick traces accumulated since the last [`AdaptServer::take_traces`].
#[derive(Debug)]
struct ServerObs {
    sink: Arc<KernelSink>,
    traces: Vec<TickTrace>,
}

/// The quantized serving snapshot plus its staleness flags.
struct QuantReplica {
    model: QuantUfldModel,
    /// Shared mode: set whenever the f32 parameters move (adaptation step,
    /// rollback); cleared by the lazy epilogue re-fold before the next
    /// quantized tick.
    dirty: bool,
    /// Bank mode: one flag per stream — only the stream whose bank moved
    /// pays a re-fold, and only for its own epilogue table.
    bank_dirty: Vec<bool>,
}

impl std::fmt::Debug for QuantReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantReplica")
            .field("dirty", &self.dirty)
            .field("bank_dirty", &self.bank_dirty)
            .finish_non_exhaustive()
    }
}

/// Splits one tick's batched logits back into per-frame [`FrameOutcome`]s
/// (shared by the f32 and quantized paths).
fn assemble_outcomes(
    logits: &Tensor,
    entropies: &[f32],
    triggered: &[bool],
    do_adapt: bool,
    step_before: &[f32],
    step_after: &[f32],
) -> Vec<FrameOutcome> {
    let ldims = logits.shape_dims();
    let per_frame_dims = [1, ldims[1], ldims[2], ldims[3]];
    (0..ldims[0])
        .map(|i| {
            let frame_logits = Tensor::from_vec(logits.image(i).to_vec(), &per_frame_dims);
            let adapted = (triggered[i] && do_adapt).then_some(AdaptStep {
                entropy_before: step_before[i],
                entropy_after: step_after[i],
            });
            FrameOutcome {
                logits: frame_logits,
                entropy: entropies[i],
                adapted,
            }
        })
        .collect()
}

/// Momentum of the measured-latency EWMA (per served tick).
const LATENCY_EWMA_MOMENTUM: f64 = 0.2;
/// Clamp on each tick's measured/predicted ratio sample (spurious stalls
/// must not poison the correction).
const LATENCY_RATIO_CLAMP: (f64, f64) = (0.05, 20.0);

impl AdaptServer {
    /// Creates the server and configures `model` for deployment-time
    /// adaptation (BN policy + trainability filter), exactly as
    /// [`crate::LdBnAdapter::new`] does for the single-camera loop.
    ///
    /// # Panics
    ///
    /// Panics if `n_streams == 0`, `max_batch == 0`, or
    /// `cfg.adapt.batch_size != 1` (the server forms its own batches from
    /// concurrent streams; a frame-accumulation batch size would double-
    /// batch).
    pub fn new(cfg: ServerConfig, n_streams: usize, model: &mut UfldModel) -> Self {
        assert!(n_streams > 0, "AdaptServer: zero streams");
        assert!(cfg.max_batch > 0, "AdaptServer: zero max batch");
        assert_eq!(
            cfg.adapt.batch_size, 1,
            "AdaptServer requires adapt batch size 1 (the tick batch is formed from streams)"
        );
        assert!(
            !cfg.quantized_inference || cfg.adapt.filter == ParamFilter::BnOnly,
            "AdaptServer: quantized inference requires BnOnly adaptation \
             (the int8 snapshot re-folds BN movement without requantizing weights)"
        );
        assert!(
            !cfg.bn_banks || cfg.adapt.filter == ParamFilter::BnOnly,
            "AdaptServer: BN banks require BnOnly adaptation \
             (per-stream state is exactly the BN state; conv/FC weights stay shared)"
        );
        assert!(
            !cfg.bn_banks
                || matches!(
                    cfg.adapt.stats_policy,
                    ld_nn::BnStatsPolicy::Batch | ld_nn::BnStatsPolicy::Running
                ),
            "AdaptServer: BN banks require a stats policy whose running estimates \
             are frozen during serving (Batch or Running) — under BatchEma the \
             rollback-refresh and telemetry re-forwards of a tick would fold a \
             confident stream's EMA statistics several times whenever *another* \
             stream triggers, breaking the per-stream isolation contract"
        );
        if let Some(gate) = &cfg.admission {
            let expect = if cfg.quantized_inference {
                Precision::Int8
            } else {
                Precision::Fp32
            };
            assert_eq!(
                gate.precision(),
                expect,
                "AdaptServer: the admission gate must cost inference at the \
                 precision the server actually serves ({expect:?} here) — a \
                 mismatched gate admits batches priced for the wrong forward"
            );
        }
        model.set_bn_policy(cfg.adapt.stats_policy);
        model.apply_filter(cfg.adapt.filter);
        // The server always discards the input gradient its backwards
        // return, so the stem conv's dX — the largest backward GEMM +
        // col2im, over the full-resolution input — is skipped. Parameter
        // gradients are unaffected.
        model.set_skip_stem_input_grad(true);
        let opt = Sgd::new(cfg.adapt.lr).momentum(cfg.adapt.momentum);
        let good_bn_state = snapshot_bn(model);
        // Banks inherit the resident state's *values*, never its transient
        // gradient accumulators (pretraining leaves its last step's grads
        // behind; the first banked backward must start from zero exactly as
        // a dedicated adapter's `zero_grad` would).
        let init_bank = cfg.bn_banks.then(|| {
            let mut bank = model.extract_bn_bank();
            bank.zero_grads();
            bank
        });
        let streams = (0..n_streams)
            .map(|_| {
                let mut st = StreamState::default();
                if let Some(init) = &init_bank {
                    st.bank = Some(init.clone());
                    st.good_bank = Some(init.clone());
                    st.opt = Some(Sgd::new(cfg.adapt.lr).momentum(cfg.adapt.momentum));
                }
                st
            })
            .collect();
        let obs = cfg.obs.enabled.then(|| {
            Box::new(ServerObs {
                sink: Arc::new(KernelSink::new()),
                traces: Vec::new(),
            })
        });
        AdaptServer {
            cfg,
            opt,
            streams,
            good_bn_state,
            quant: None,
            init_bank,
            latency_ratio: 1.0,
            metrics: MetricsRegistry::new(),
            obs,
        }
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Number of streams.
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    /// Whole-server counters, assembled from the metrics registry (the
    /// public [`ServerStats`] fields are preserved; the registry is the
    /// single source of truth behind them).
    pub fn server_stats(&self) -> ServerStats {
        let c = |name: &str| self.metrics.counter(name) as usize;
        ServerStats {
            ticks: c("server.ticks"),
            frames: c("server.frames"),
            adapt_steps: c("server.adapt_steps"),
            shed_adapt_ticks: c("server.shed_adapt_ticks"),
            deferred_frames: c("server.deferred_frames"),
            rollback_ticks: c("server.rollback_ticks"),
            stale_shed_frames: c("server.stale_shed_frames"),
            ingest_dropped_frames: c("server.ingest_dropped_frames"),
            tick_overruns: c("server.tick_overruns"),
            rejected_frames: c("server.rejected_frames"),
            divergence_events: c("server.divergence_events"),
            quarantine_ticks: c("server.quarantine_ticks"),
        }
    }

    /// The server's metrics registry (counters backing [`ServerStats`];
    /// shard registries merge into fleet-wide ones via
    /// [`ld_obs::MetricsRegistry::merge`]).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Batched ticks processed so far (the tick index the serving paths
    /// stamp telemetry with).
    fn tick_count(&self) -> usize {
        self.metrics.counter("server.ticks") as usize
    }

    /// Takes the tick traces accumulated since the last call (empty unless
    /// [`ServerConfig::obs`] is enabled).
    pub fn take_traces(&mut self) -> Vec<TickTrace> {
        self.obs
            .as_mut()
            .map(|o| std::mem::take(&mut o.traces))
            .unwrap_or_default()
    }

    /// Telemetry of one stream.
    ///
    /// # Panics
    ///
    /// Panics if `stream` is out of range.
    pub fn stream_stats(&self, stream: usize) -> GovernorStats {
        self.streams[stream].stats
    }

    /// Current entropy reference of one stream (None before its first
    /// frame).
    ///
    /// # Panics
    ///
    /// Panics if `stream` is out of range.
    pub fn reference_entropy(&self, stream: usize) -> Option<f32> {
        self.streams[stream].reference_entropy
    }

    /// The deployment-time bank every stream started from (`None` unless
    /// the server runs with [`ServerConfig::with_bn_banks`]).
    pub fn init_bank(&self) -> Option<&BnBank> {
        self.init_bank.as_ref()
    }

    /// Detaches stream `stream`'s complete adaptation state for migration,
    /// resetting the slot to its pristine (deployment-time) state so it can
    /// host a future [`AdaptServer::attach_stream`].
    ///
    /// `cam_tag` is the fleet-global camera id stamped into the bank
    /// metadata (use the slot index when there is no fleet). Must be called
    /// **between ticks** (banks are back in their slots and gradients are
    /// zero — always true outside `process_batch`/`serve_ingest`).
    ///
    /// # Panics
    ///
    /// Panics if the server does not run BN banks (without per-stream
    /// banks there is no per-stream state to move), or `stream` is out of
    /// range.
    pub fn detach_stream(&mut self, stream: usize, cam_tag: u64) -> StreamSnapshot {
        assert!(
            self.cfg.bn_banks,
            "detach_stream requires bank mode (per-stream state is the BN bank)"
        );
        assert!(
            stream < self.streams.len(),
            "detach_stream: unknown stream {stream}"
        );
        let init = self.init_bank.clone().expect("bank mode");
        let pristine = StreamState {
            bank: Some(init.clone()),
            good_bank: Some(init),
            opt: Some(Sgd::new(self.cfg.adapt.lr).momentum(self.cfg.adapt.momentum)),
            ..StreamState::default()
        };
        let st = std::mem::replace(&mut self.streams[stream], pristine);
        // The slot's epilogue table (if the int8 fast path built one) now
        // describes the departed bank; re-fold before its next quant tick.
        if let Some(q) = &mut self.quant {
            if let Some(flag) = q.bank_dirty.get_mut(stream) {
                *flag = true;
            }
        }
        let bank = st.bank.expect("bank present between ticks");
        let good = st.good_bank.expect("bank mode");
        let opt = st.opt.expect("bank mode");
        let velocities = bank
            .states()
            .iter()
            .map(|s| {
                (
                    opt.velocity(&s.gamma).cloned(),
                    opt.velocity(&s.beta).cloned(),
                )
            })
            .collect();
        let meta = BankMeta {
            cam: cam_tag,
            blessed_tick: st.last_bless_tick.map(|t| t as u64),
        };
        StreamSnapshot {
            cam: cam_tag,
            bank_bytes: bank.to_bytes_tagged(&meta),
            good_bank_bytes: good.to_bytes_tagged(&meta),
            velocities,
            reference_entropy: st.reference_entropy,
            stats: st.stats,
            bank_swaps: st.bank_swaps,
            last_refold_tick: st.last_refold_tick,
            last_bless_tick: st.last_bless_tick,
            fault: st.fault,
            lr: self.cfg.adapt.lr,
            momentum: self.cfg.adapt.momentum,
        }
    }

    /// Installs a detached stream's state into slot `stream`, decoding the
    /// tagged `LDBK` bytes (CRC-verified) and re-keying the momentum
    /// buffers onto the freshly-minted bank parameters. After attach the
    /// stream's trajectory continues bitwise from where the detach cut it —
    /// the round-trip and migration tests pin this.
    ///
    /// # Panics
    ///
    /// Panics if the server does not run BN banks, `stream` is out of
    /// range, the bank bytes fail their CRC or do not match this server's
    /// model (layer names/channels), or the snapshot's optimizer
    /// hyperparameters differ from this server's configuration.
    pub fn attach_stream(&mut self, stream: usize, snapshot: StreamSnapshot) {
        assert!(
            self.cfg.bn_banks,
            "attach_stream requires bank mode (per-stream state is the BN bank)"
        );
        assert!(
            stream < self.streams.len(),
            "attach_stream: unknown stream {stream}"
        );
        assert_eq!(
            (snapshot.lr, snapshot.momentum),
            (self.cfg.adapt.lr, self.cfg.adapt.momentum),
            "attach_stream: optimizer hyperparameters differ from this server's \
             (a migrated stream must continue the same trajectory)"
        );
        let (bank, _meta) =
            BnBank::from_bytes_tagged(&snapshot.bank_bytes).expect("attach_stream: bank bytes");
        let (good, _) = BnBank::from_bytes_tagged(&snapshot.good_bank_bytes)
            .expect("attach_stream: good-bank bytes");
        let init = self.init_bank.as_ref().expect("bank mode");
        assert_eq!(
            bank.layer_count(),
            init.layer_count(),
            "attach_stream: bank layer count does not match this server's model"
        );
        for (got, want) in bank.states().iter().zip(init.states()) {
            assert_eq!(
                (got.gamma.name.as_str(), got.channels()),
                (want.gamma.name.as_str(), want.channels()),
                "attach_stream: bank layer does not match this server's model"
            );
        }
        assert_eq!(
            snapshot.velocities.len(),
            bank.layer_count(),
            "attach_stream: velocity table does not align with the bank"
        );
        let mut opt = Sgd::new(self.cfg.adapt.lr).momentum(self.cfg.adapt.momentum);
        for (state, (vg, vb)) in bank.states().iter().zip(&snapshot.velocities) {
            if let Some(v) = vg {
                opt.set_velocity(&state.gamma, v.clone());
            }
            if let Some(v) = vb {
                opt.set_velocity(&state.beta, v.clone());
            }
        }
        self.streams[stream] = StreamState {
            reference_entropy: snapshot.reference_entropy,
            stats: snapshot.stats,
            bank: Some(bank),
            good_bank: Some(good),
            opt: Some(opt),
            bank_swaps: snapshot.bank_swaps,
            last_refold_tick: snapshot.last_refold_tick,
            last_bless_tick: snapshot.last_bless_tick,
            fault: snapshot.fault,
        };
        if let Some(q) = &mut self.quant {
            if let Some(flag) = q.bank_dirty.get_mut(stream) {
                *flag = true;
            }
        }
    }

    /// Summed telemetry across streams.
    pub fn total_stats(&self) -> GovernorStats {
        let mut total = GovernorStats::default();
        for s in &self.streams {
            total.frames += s.stats.frames;
            total.adapted_frames += s.stats.adapted_frames;
            total.skipped_frames += s.stats.skipped_frames;
            total.rollbacks += s.stats.rollbacks;
        }
        total
    }

    /// Processes one tick: at most one `(3, H, W)` frame per distinct
    /// stream, one batched forward, per-stream demux, and (when any stream
    /// triggers) one shared adaptation step. Outcomes are returned in input
    /// order; each [`FrameOutcome`] carries that frame's own logits and
    /// entropy.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch, more frames than `max_batch`, an unknown
    /// or duplicated stream id, or a frame-shape mismatch.
    pub fn process_batch(
        &mut self,
        model: &mut UfldModel,
        frames: &[(usize, &Tensor)],
    ) -> Vec<FrameOutcome> {
        self.process_batch_gated(model, frames, true)
    }

    /// [`AdaptServer::process_batch`] with the admission verdict applied:
    /// when `allow_adapt` is false the adapt step is shed (triggered frames
    /// count as skipped and the shed is tallied in [`ServerStats`]).
    ///
    /// With observability on, the tick runs with the server's kernel sink
    /// bound (slot 0 here; the compute pool re-binds workers to their own
    /// slots per parallel region), and the drained per-shape GEMM counters
    /// become a new [`TickTrace`]. The tracing wrapper reads outcomes and
    /// counters but never feeds anything back into batching, admission, or
    /// the model — which is why enabling it cannot change served bytes.
    fn process_batch_gated(
        &mut self,
        model: &mut UfldModel,
        frames: &[(usize, &Tensor)],
        allow_adapt: bool,
    ) -> Vec<FrameOutcome> {
        self.validate_batch(frames);
        let sink = self.obs.as_ref().map(|o| o.sink.clone());
        let Some(sink) = sink else {
            return self.process_batch_inner(model, frames, allow_adapt);
        };
        let binding = ld_obs::bind_kernel_sink(&sink, 0);
        let outcomes = self.process_batch_inner(model, frames, allow_adapt);
        drop(binding);
        let (kernels, dropped_events) = sink.drain();
        let tick = (self.tick_count() as u64).saturating_sub(1);
        let adapted = outcomes.iter().filter(|o| o.adapted.is_some()).count() as u32;
        if let Some(obs) = self.obs.as_mut() {
            obs.traces.push(TickTrace {
                tick,
                frames: frames.len() as u32,
                adapted,
                kernels,
                dropped_events,
                ..TickTrace::default()
            });
        }
        outcomes
    }

    /// The tick body of every serving flavour (shared / banked / quantized
    /// / both), shorn of the tracing wrapper.
    fn process_batch_inner(
        &mut self,
        model: &mut UfldModel,
        frames: &[(usize, &Tensor)],
        allow_adapt: bool,
    ) -> Vec<FrameOutcome> {
        match (self.cfg.quantized_inference, self.cfg.bn_banks) {
            (true, true) => return self.process_batch_quant_banked(model, frames, allow_adapt),
            (true, false) => return self.process_batch_quant(model, frames, allow_adapt),
            (false, true) => return self.process_batch_banked(model, frames, allow_adapt),
            (false, false) => {}
        }
        let k = frames.len();
        let images: Vec<&Tensor> = frames.iter().map(|&(_, t)| t).collect();
        let poisoned = self.poisoned_lanes(model, frames);

        // Mux: one batched forward serves every stream's inference.
        let logits = model.forward_frames(&images, Mode::Eval);
        let mut entropies = loss::entropy_per_image(&logits);
        self.mark_divergent(&logits, &mut entropies);

        // Demux: per-stream trigger / rollback decisions against each
        // stream's own reference band.
        let (triggered, rollbacks) = self.decide_triggers(frames, &entropies, &poisoned);
        let any_rollback = rollbacks.iter().any(|&r| r);
        if any_rollback {
            restore_bn(model, &self.good_bn_state);
            self.metrics.counter_add("server.rollback_ticks", 1);
        }

        let t = triggered.iter().filter(|&&x| x).count();
        let do_adapt = allow_adapt && t > 0;
        if !allow_adapt && t > 0 {
            self.metrics.counter_add("server.shed_adapt_ticks", 1);
        }

        // One shared adaptation step over the triggered sub-batch: the
        // entropy gradient of the batch forward, masked to triggered
        // samples and renormalised to their count, backpropagates through
        // the activations already in the layer caches — no extra forward.
        let mut step_before = vec![f32::NAN; k];
        let mut step_after = vec![f32::NAN; k];
        // On a mixed tick (some streams confident, some triggered) the
        // confident streams' entropies were measured on the *pre-update*
        // parameters — those are the values their confidence blesses as
        // known-good, so capture them before the shared step mutates the
        // model (blessing the post-update state would let a destructive
        // update poison the rollback snapshot itself).
        let pre_step_bn = (do_adapt && t < k).then(|| snapshot_bn(model));
        if do_adapt {
            let lo = if any_rollback {
                // The cached activations came from the poisoned parameters;
                // refresh them against the restored model.
                let refreshed = model.forward_frames(&images, Mode::Eval);
                step_before.copy_from_slice(&loss::entropy_per_image(&refreshed));
                loss::entropy(&refreshed)
            } else {
                step_before.copy_from_slice(&entropies);
                loss::entropy(&logits)
            };
            let mut grad = lo.grad;
            if t < k {
                for (i, &hit) in triggered.iter().enumerate() {
                    if !hit {
                        grad.image_mut(i).fill(0.0);
                    }
                }
                grad.scale(k as f32 / t as f32);
            }
            model.zero_grad();
            model.backward(&grad);
            model.visit_params(&mut |p| self.opt.update(p));
            self.metrics.counter_add("server.adapt_steps", 1);
            if self.cfg.measure_entropy_after {
                let after_logits = model.forward_frames(&images, Mode::Eval);
                let after = loss::entropy_per_image(&after_logits);
                step_after[..k].copy_from_slice(&after[..k]);
            }
        }

        self.finish_tick(
            model,
            frames,
            &entropies,
            &triggered,
            do_adapt,
            pre_step_bn,
            &poisoned,
        );
        assemble_outcomes(
            &logits,
            &entropies,
            &triggered,
            do_adapt,
            &step_before,
            &step_after,
        )
    }

    /// Self-heal: the per-lane divergence screen over the *state* each
    /// lane will serve with. The network's rectifiers launder mid-network
    /// non-finites into zeroed activations, so waiting for a NaN at the
    /// head misses a poisoned normalisation state entirely — screen the
    /// state itself. Banked mode checks each admitted stream's own bank;
    /// shared mode checks the shared BN affine (one poisoned tensor
    /// poisons every lane riding it). All-false with self-healing off.
    fn poisoned_lanes(&self, model: &mut UfldModel, frames: &[(usize, &Tensor)]) -> Vec<bool> {
        if self.cfg.self_heal.is_none() {
            return vec![false; frames.len()];
        }
        if self.cfg.bn_banks {
            frames
                .iter()
                .map(|&(sid, _)| {
                    self.streams[sid]
                        .bank
                        .as_ref()
                        .is_some_and(|b| !bank_affine_finite(b))
                })
                .collect()
        } else {
            let mut finite = true;
            model.visit_params(&mut |p| {
                if p.kind.is_bn() {
                    finite &= p.value.as_slice().iter().all(|v| v.is_finite());
                }
            });
            vec![!finite; frames.len()]
        }
    }

    /// Self-heal: overwrites an image's entropy with NaN when its logits
    /// contain non-finite values — the stabilised softmax gives such a
    /// group zero entropy contribution, which would otherwise launder
    /// head-level divergence into a confident-looking skip. No-op with
    /// self-healing off.
    fn mark_divergent(&self, logits: &Tensor, entropies: &mut [f32]) {
        if self.cfg.self_heal.is_none() {
            return;
        }
        for (i, h) in entropies.iter_mut().enumerate() {
            if logits.image(i).iter().any(|v| !v.is_finite()) {
                *h = f32::NAN;
            }
        }
    }

    /// The per-stream trigger / rollback demux shared by every tick
    /// flavour: folds each frame into its stream's frame counter and
    /// decides, against that stream's reference band, whether it triggers
    /// adaptation and whether its normalisation state is poisoned. Returns
    /// per-frame `(triggered, rollback)` flags — shared-state ticks roll
    /// the whole model back on *any* rollback flag, banked ticks roll back
    /// only the flagged streams' banks. `poisoned` is the self-heal state
    /// screen ([`AdaptServer::poisoned_lanes`]); a poisoned lane is
    /// divergence regardless of what entropy the laundered forward
    /// produced.
    fn decide_triggers(
        &mut self,
        frames: &[(usize, &Tensor)],
        entropies: &[f32],
        poisoned: &[bool],
    ) -> (Vec<bool>, Vec<bool>) {
        let heal = self.cfg.self_heal;
        let tick_now = self.tick_count();
        let mut triggered = vec![false; frames.len()];
        let mut rollbacks = vec![false; frames.len()];
        for (i, &(sid, _)) in frames.iter().enumerate() {
            let h = entropies[i];
            let st = &mut self.streams[sid];
            st.stats.frames += 1;
            if let Some(heal) = &heal {
                // Divergence watchdog: poisoned normalisation state or a
                // non-finite serving entropy is numerical divergence, not
                // drift — the trigger comparisons below would all come out
                // false on NaN and the stream would silently coast. Roll
                // it back to its blessed snapshot and quarantine its
                // adaptation.
                if poisoned[i] || !h.is_finite() {
                    st.stats.rollbacks += 1;
                    rollbacks[i] = true;
                    st.fault.diverge(heal);
                    self.metrics.counter_add("server.divergence_events", 1);
                    continue; // never triggers: eval-only until recovered
                }
                // Quarantine: serve eval-only while the cooldown runs
                // down. The rollback band stays armed — a still-poisoned
                // reference cannot ride out the cooldown unnoticed.
                if st.fault.cooldown > 0 {
                    st.fault.cooldown -= 1;
                    st.fault.stats.quarantine_ticks += 1;
                    self.metrics.counter_add("server.quarantine_ticks", 1);
                    if st.fault.cooldown == 0 {
                        st.fault.stats.recovery_tick = Some(tick_now);
                    }
                    let warmup = st.stats.frames <= self.cfg.governor.warmup_frames;
                    let reference = st.reference_entropy.unwrap_or(h);
                    if !warmup && h > self.cfg.governor.rollback_ratio * reference {
                        st.stats.rollbacks += 1;
                        rollbacks[i] = true;
                    }
                    continue;
                }
            }
            let warmup = st.stats.frames <= self.cfg.governor.warmup_frames;
            let reference = st.reference_entropy.unwrap_or(h);
            if !warmup && h > self.cfg.governor.rollback_ratio * reference {
                st.stats.rollbacks += 1;
                rollbacks[i] = true;
            }
            triggered[i] = warmup || h > self.cfg.governor.threshold_ratio * reference;
        }
        (triggered, rollbacks)
    }

    /// The per-stream duty/reference bookkeeping shared by every tick
    /// flavour: duty counters advance and confident frames fold into their
    /// stream's reference band. Returns whether any frame skipped
    /// confidently (the blessing condition). `poisoned` lanes (self-heal
    /// state screen) ran the forward on divergent state — whatever entropy
    /// the laundered forward produced, it neither folds into the reference
    /// band nor blesses anything.
    fn fold_stream_counters(
        &mut self,
        frames: &[(usize, &Tensor)],
        entropies: &[f32],
        triggered: &[bool],
        do_adapt: bool,
        poisoned: &[bool],
    ) -> bool {
        let mut any_skip = false;
        for (i, &(sid, _)) in frames.iter().enumerate() {
            let h = entropies[i];
            let st = &mut self.streams[sid];
            if triggered[i] {
                if do_adapt {
                    st.stats.adapted_frames += 1;
                } else {
                    st.stats.skipped_frames += 1; // shed by admission
                }
            } else {
                st.stats.skipped_frames += 1;
                // A non-finite entropy — or one measured on poisoned state
                // — never folds into the reference band (it would poison
                // every future trigger comparison) and never blesses the
                // state it was measured on.
                if h.is_finite() && !poisoned[i] {
                    let m = self.cfg.governor.reference_momentum;
                    let reference = st.reference_entropy.unwrap_or(h);
                    st.reference_entropy = Some((1.0 - m) * reference + m * h);
                    any_skip = true;
                }
            }
            if st.reference_entropy.is_none() && h.is_finite() && !poisoned[i] {
                st.reference_entropy = Some(h);
            }
        }
        any_skip
    }

    /// Shared-state tick epilogue: per-stream bookkeeping, then any
    /// confident frame blesses the (shared) BN state as known-good, and the
    /// whole-server tick counters advance.
    #[allow(clippy::too_many_arguments)] // private epilogue mirroring the tick's full state
    fn finish_tick(
        &mut self,
        model: &mut UfldModel,
        frames: &[(usize, &Tensor)],
        entropies: &[f32],
        triggered: &[bool],
        do_adapt: bool,
        pre_step_bn: Option<Vec<(String, Tensor)>>,
        poisoned: &[bool],
    ) {
        let any_skip = self.fold_stream_counters(frames, entropies, triggered, do_adapt, poisoned);
        if any_skip {
            // Bless the state the confident streams actually ran on: the
            // pre-step snapshot when this tick also adapted, the current
            // parameters otherwise.
            self.good_bn_state = pre_step_bn.unwrap_or_else(|| snapshot_bn(model));
        }
        self.metrics.counter_add("server.ticks", 1);
        self.metrics
            .counter_add("server.frames", frames.len() as u64);
    }

    /// Banked tick epilogue: per-stream bookkeeping, then each confident
    /// stream blesses **its own** bank (no other stream's update can have
    /// touched it, so post-tick blessing needs no pre-step snapshot), banks
    /// return to their stream slots, and the tick counters advance.
    fn finish_tick_banked(
        &mut self,
        frames: &[(usize, &Tensor)],
        entropies: &[f32],
        triggered: &[bool],
        do_adapt: bool,
        banks: Vec<BnBank>,
        poisoned: &[bool],
    ) {
        self.fold_stream_counters(frames, entropies, triggered, do_adapt, poisoned);
        let tick = self.tick_count();
        for (i, ((&(sid, _), bank), &hit)) in frames.iter().zip(banks).zip(triggered).enumerate() {
            let st = &mut self.streams[sid];
            // A poisoned lane never blesses: its bank was restored from
            // the blessed snapshot this tick, and re-blessing a state the
            // lane did not confidently serve on proves nothing.
            if !hit && !poisoned[i] {
                st.good_bank
                    .as_mut()
                    .expect("bank mode")
                    .restore_affine_from(&bank);
                st.last_bless_tick = Some(tick);
            }
            st.bank_swaps += 1;
            st.bank = Some(bank);
        }
        self.metrics.counter_add("server.ticks", 1);
        self.metrics
            .counter_add("server.frames", frames.len() as u64);
    }

    /// Shared shape/id validation of one tick's frames.
    fn validate_batch(&self, frames: &[(usize, &Tensor)]) {
        assert!(!frames.is_empty(), "process_batch: empty batch");
        assert!(
            frames.len() <= self.cfg.max_batch,
            "process_batch: {} frames exceed max batch {}",
            frames.len(),
            self.cfg.max_batch
        );
        for (i, (sid, _)) in frames.iter().enumerate() {
            assert!(
                *sid < self.streams.len(),
                "process_batch: unknown stream {sid}"
            );
            assert!(
                !frames[..i].iter().any(|(prev, _)| prev == sid),
                "process_batch: duplicate stream {sid}"
            );
        }
    }

    /// The int8 fast-path tick (see the module docs): serving logits and
    /// trigger entropies come from the quantized snapshot; only the
    /// triggered sub-batch pays an f32 forward (activation caches for the
    /// shared backward). Trigger/rollback/blessing bookkeeping mirrors the
    /// f32 path per stream.
    fn process_batch_quant(
        &mut self,
        model: &mut UfldModel,
        frames: &[(usize, &Tensor)],
        allow_adapt: bool,
    ) -> Vec<FrameOutcome> {
        let k = frames.len();
        let images: Vec<&Tensor> = frames.iter().map(|&(_, t)| t).collect();
        let poisoned = self.poisoned_lanes(model, frames);

        // Synchronise the snapshot: first quantized tick builds it (the
        // tick's own frames are the calibration batch); later ticks re-fold
        // the epilogues only when the f32 parameters moved.
        let logits = {
            let replica = match &mut self.quant {
                Some(replica) => {
                    if replica.dirty {
                        replica.model.refresh_affine(model);
                        replica.dirty = false;
                    }
                    replica
                }
                slot @ None => slot.insert(QuantReplica {
                    model: model.quantize(&images),
                    dirty: false,
                    bank_dirty: Vec::new(),
                }),
            };
            // Mux: the quantized forward serves every stream's inference.
            replica.model.forward_frames(&images)
        };
        let mut entropies = loss::entropy_per_image(&logits);
        self.mark_divergent(&logits, &mut entropies);

        // Demux: same trigger / rollback maths as the f32 path, referenced
        // to the quantized entropy band.
        let (triggered, rollbacks) = self.decide_triggers(frames, &entropies, &poisoned);
        let any_rollback = rollbacks.iter().any(|&r| r);
        if any_rollback {
            restore_bn(model, &self.good_bn_state);
            self.metrics.counter_add("server.rollback_ticks", 1);
            if let Some(replica) = self.quant.as_mut() {
                replica.dirty = true;
            }
        }

        let t = triggered.iter().filter(|&&x| x).count();
        let do_adapt = allow_adapt && t > 0;
        if !allow_adapt && t > 0 {
            self.metrics.counter_add("server.shed_adapt_ticks", 1);
        }

        // One f32 forward + shared step over the triggered sub-batch only.
        // The sub-batch is exactly the triggered set, so the entropy
        // gradient needs no masking or renormalisation.
        let mut step_before = vec![f32::NAN; k];
        let mut step_after = vec![f32::NAN; k];
        let pre_step_bn = (do_adapt && t < k).then(|| snapshot_bn(model));
        if do_adapt {
            // One index list maps sub-batch positions back to batch slots
            // for the forward, the telemetry scatter, and the re-measure.
            let sub_idx: Vec<usize> = (0..k).filter(|&i| triggered[i]).collect();
            let sub: Vec<&Tensor> = sub_idx.iter().map(|&i| images[i]).collect();
            let sub_logits = model.forward_frames(&sub, Mode::Eval);
            let sub_entropies = loss::entropy_per_image(&sub_logits);
            for (&i, &h) in sub_idx.iter().zip(&sub_entropies) {
                step_before[i] = h;
            }
            let lo = loss::entropy(&sub_logits);
            model.zero_grad();
            model.backward(&lo.grad);
            model.visit_params(&mut |p| self.opt.update(p));
            self.metrics.counter_add("server.adapt_steps", 1);
            let replica = self.quant.as_mut().expect("replica exists");
            replica.dirty = true;
            if self.cfg.measure_entropy_after {
                let after_logits = model.forward_frames(&sub, Mode::Eval);
                let after = loss::entropy_per_image(&after_logits);
                for (&i, &h) in sub_idx.iter().zip(&after) {
                    step_after[i] = h;
                }
            }
        }

        self.finish_tick(
            model,
            frames,
            &entropies,
            &triggered,
            do_adapt,
            pre_step_bn,
            &poisoned,
        );
        assemble_outcomes(
            &logits,
            &entropies,
            &triggered,
            do_adapt,
            &step_before,
            &step_after,
        )
    }

    /// Takes the admitted streams' banks out of their slots, in batch
    /// order, for the duration of one tick.
    fn take_banks(&mut self, frames: &[(usize, &Tensor)]) -> Vec<BnBank> {
        frames
            .iter()
            .map(|&(sid, _)| self.streams[sid].bank.take().expect("bank mode"))
            .collect()
    }

    /// Per-image entropy gradients for the triggered lanes of a banked
    /// tick, assembled into one batch gradient. Each lane's slice is the
    /// gradient of *that image's own* mean entropy (bitwise what a
    /// dedicated batch-1 adapter computes — no cross-stream renormalisation
    /// exists to undo), and untriggered lanes stay zero so their banks
    /// receive no update.
    fn banked_entropy_grad(logits: &Tensor, triggered: &[bool]) -> Tensor {
        let ldims = logits.shape_dims();
        let per_frame_dims = [1, ldims[1], ldims[2], ldims[3]];
        let mut grad = Tensor::zeros(ldims);
        for (i, &hit) in triggered.iter().enumerate() {
            if hit {
                let img = Tensor::from_vec(logits.image(i).to_vec(), &per_frame_dims);
                let lo = loss::entropy(&img);
                grad.image_mut(i).copy_from_slice(lo.grad.as_slice());
            }
        }
        grad
    }

    /// Rolls flagged streams' banks back to their own known-good snapshots
    /// (the banks are out of the model at this point). Returns whether any
    /// bank rolled back.
    fn rollback_banks(
        &mut self,
        frames: &[(usize, &Tensor)],
        banks: &mut [BnBank],
        rollbacks: &[bool],
    ) -> bool {
        let mut any = false;
        for (i, &(sid, _)) in frames.iter().enumerate() {
            if rollbacks[i] {
                let good = self.streams[sid].good_bank.as_ref().expect("bank mode");
                banks[i].restore_affine_from(good);
                any = true;
            }
        }
        if any {
            self.metrics.counter_add("server.rollback_ticks", 1);
        }
        any
    }

    /// Applies each triggered stream's own optimizer to its bank and zeroes
    /// every tick bank's gradient accumulators (the invariant between
    /// ticks: bank grads are always zero).
    fn step_banks(
        &mut self,
        frames: &[(usize, &Tensor)],
        banks: &mut [BnBank],
        triggered: &[bool],
    ) {
        let heal = self.cfg.self_heal;
        for (i, &(sid, _)) in frames.iter().enumerate() {
            if triggered[i] {
                // Self-heal: a non-finite bank gradient is divergence the
                // entropy watchdog cannot see (the serving entropy can be
                // finite while an extreme activation blows the backward
                // up). Applying it would poison γ/β; skip the update,
                // restore the blessed snapshot, quarantine.
                if let Some(heal) = &heal {
                    let finite = banks[i].states().iter().all(|s| {
                        s.gamma.grad.as_slice().iter().all(|v| v.is_finite())
                            && s.beta.grad.as_slice().iter().all(|v| v.is_finite())
                    });
                    if !finite {
                        let st = &mut self.streams[sid];
                        banks[i].restore_affine_from(st.good_bank.as_ref().expect("bank mode"));
                        st.stats.rollbacks += 1;
                        st.fault.diverge(heal);
                        self.metrics.counter_add("server.divergence_events", 1);
                        banks[i].zero_grads();
                        continue;
                    }
                }
                let st = &mut self.streams[sid];
                let opt = st.opt.as_mut().expect("bank mode");
                for state in banks[i].states_mut() {
                    opt.update(&mut state.gamma);
                    opt.update(&mut state.beta);
                }
            }
            banks[i].zero_grads();
        }
    }

    /// The banked f32 tick: the admitted streams' BN banks are swapped into
    /// per-image model lanes, so the single batched forward normalises each
    /// image with its own stream's state (per-image statistics) and the
    /// single batched backward accumulates each triggered lane's entropy
    /// gradient into that stream's bank. Rollback, optimizer momentum and
    /// known-good blessing are all per stream — a lane is bitwise a
    /// dedicated single-stream adapter riding shared conv weights.
    fn process_batch_banked(
        &mut self,
        model: &mut UfldModel,
        frames: &[(usize, &Tensor)],
        allow_adapt: bool,
    ) -> Vec<FrameOutcome> {
        let k = frames.len();
        let images: Vec<&Tensor> = frames.iter().map(|&(_, t)| t).collect();
        let poisoned = self.poisoned_lanes(model, frames);
        let mut banks = self.take_banks(frames);

        // Mux: one batched forward, each lane on its own bank. The lanes
        // stay bound through the backward — unbinding drops the layer
        // caches the backward reuses.
        model.bind_bn_lanes(&mut banks);
        let logits = model.forward_frames(&images, Mode::Eval);
        let mut entropies = loss::entropy_per_image(&logits);
        self.mark_divergent(&logits, &mut entropies);

        // Demux: per-stream triggers, per-stream rollbacks. Rolling a bank
        // back requires it out of the lanes.
        let (triggered, rollbacks) = self.decide_triggers(frames, &entropies, &poisoned);
        let any_rollback = rollbacks.iter().any(|&r| r);
        let mut bound = true;
        if any_rollback {
            model.unbind_bn_lanes(&mut banks);
            bound = false;
            self.rollback_banks(frames, &mut banks, &rollbacks);
        }

        let t = triggered.iter().filter(|&&x| x).count();
        let do_adapt = allow_adapt && t > 0;
        if !allow_adapt && t > 0 {
            self.metrics.counter_add("server.shed_adapt_ticks", 1);
        }

        let mut step_before = vec![f32::NAN; k];
        let mut step_after = vec![f32::NAN; k];
        if do_adapt {
            let grad = if any_rollback {
                // The cached activations came from the poisoned banks;
                // refresh them against the restored state (the adapt branch
                // always unbinds after the backward, so `bound` stays
                // false through this stretch).
                model.bind_bn_lanes(&mut banks);
                let refreshed = model.forward_frames(&images, Mode::Eval);
                step_before.copy_from_slice(&loss::entropy_per_image(&refreshed));
                Self::banked_entropy_grad(&refreshed, &triggered)
            } else {
                step_before.copy_from_slice(&entropies);
                Self::banked_entropy_grad(&logits, &triggered)
            };
            model.zero_grad();
            model.backward(&grad);
            model.unbind_bn_lanes(&mut banks);
            bound = false;
            self.step_banks(frames, &mut banks, &triggered);
            self.metrics.counter_add("server.adapt_steps", 1);
            if self.cfg.measure_entropy_after {
                model.bind_bn_lanes(&mut banks);
                let after_logits = model.forward_frames(&images, Mode::Eval);
                let after = loss::entropy_per_image(&after_logits);
                step_after[..k].copy_from_slice(&after[..k]);
                model.unbind_bn_lanes(&mut banks);
            }
        }
        if bound {
            model.unbind_bn_lanes(&mut banks);
        }

        self.finish_tick_banked(frames, &entropies, &triggered, do_adapt, banks, &poisoned);
        assemble_outcomes(
            &logits,
            &entropies,
            &triggered,
            do_adapt,
            &step_before,
            &step_after,
        )
    }

    /// The banked int8 fast-path tick: serving logits come from the
    /// quantized snapshot with **per-image epilogue tables** (one per
    /// stream bank), lazily re-folded per stream via the per-stream dirty
    /// flags. Only the triggered sub-batch pays f32 — with exactly its
    /// streams' banks bound as lanes — and only those streams' tables go
    /// dirty afterwards.
    fn process_batch_quant_banked(
        &mut self,
        model: &mut UfldModel,
        frames: &[(usize, &Tensor)],
        allow_adapt: bool,
    ) -> Vec<FrameOutcome> {
        let k = frames.len();
        let n_streams = self.streams.len();
        let images: Vec<&Tensor> = frames.iter().map(|&(_, t)| t).collect();
        let bank_ids: Vec<usize> = frames.iter().map(|&(sid, _)| sid).collect();
        let poisoned = self.poisoned_lanes(model, frames);

        // Build the snapshot on the first tick (epilogue tables start as
        // the resident fold, so every stream's table begins dirty), then
        // re-fold only the admitted streams whose banks have moved.
        if self.quant.is_none() {
            self.quant = Some(QuantReplica {
                model: {
                    let mut qm = model.quantize(&images);
                    qm.ensure_banks(n_streams);
                    qm
                },
                dirty: false,
                bank_dirty: vec![true; n_streams],
            });
        }
        let tick_now = self.tick_count();
        let logits = {
            let replica = self.quant.as_mut().expect("replica exists");
            for &sid in &bank_ids {
                if replica.bank_dirty[sid] {
                    let st = &mut self.streams[sid];
                    replica
                        .model
                        .refresh_affine_bank(sid, st.bank.as_ref().expect("bank mode"));
                    replica.bank_dirty[sid] = false;
                    st.last_refold_tick = Some(tick_now);
                }
            }
            replica.model.forward_frames_banked(&images, &bank_ids)
        };
        let mut entropies = loss::entropy_per_image(&logits);
        self.mark_divergent(&logits, &mut entropies);

        let (triggered, rollbacks) = self.decide_triggers(frames, &entropies, &poisoned);
        let mut banks = self.take_banks(frames);
        if self.rollback_banks(frames, &mut banks, &rollbacks) {
            let replica = self.quant.as_mut().expect("replica exists");
            for (i, &(sid, _)) in frames.iter().enumerate() {
                if rollbacks[i] {
                    replica.bank_dirty[sid] = true;
                }
            }
        }

        let t = triggered.iter().filter(|&&x| x).count();
        let do_adapt = allow_adapt && t > 0;
        if !allow_adapt && t > 0 {
            self.metrics.counter_add("server.shed_adapt_ticks", 1);
        }

        // One f32 forward + per-lane backward over the triggered sub-batch
        // only, with exactly the triggered streams' banks bound as lanes.
        let mut step_before = vec![f32::NAN; k];
        let mut step_after = vec![f32::NAN; k];
        if do_adapt {
            let sub_idx: Vec<usize> = (0..k).filter(|&i| triggered[i]).collect();
            let sub: Vec<&Tensor> = sub_idx.iter().map(|&i| images[i]).collect();
            let mut sub_banks: Vec<BnBank> = Vec::with_capacity(sub_idx.len());
            for &i in sub_idx.iter().rev() {
                sub_banks.push(banks.remove(i));
            }
            sub_banks.reverse();

            model.bind_bn_lanes(&mut sub_banks);
            let sub_logits = model.forward_frames(&sub, Mode::Eval);
            let sub_entropies = loss::entropy_per_image(&sub_logits);
            for (&i, &h) in sub_idx.iter().zip(&sub_entropies) {
                step_before[i] = h;
            }
            let all_hit = vec![true; sub.len()];
            let grad = Self::banked_entropy_grad(&sub_logits, &all_hit);
            model.zero_grad();
            model.backward(&grad);
            model.unbind_bn_lanes(&mut sub_banks);

            // Update each triggered stream's bank with its own optimizer
            // and dirty-flag its epilogue table.
            let sub_frames: Vec<(usize, &Tensor)> = sub_idx.iter().map(|&i| frames[i]).collect();
            self.step_banks(&sub_frames, &mut sub_banks, &all_hit);
            let replica = self.quant.as_mut().expect("replica exists");
            for &(sid, _) in &sub_frames {
                replica.bank_dirty[sid] = true;
            }
            self.metrics.counter_add("server.adapt_steps", 1);

            if self.cfg.measure_entropy_after {
                model.bind_bn_lanes(&mut sub_banks);
                let after_logits = model.forward_frames(&sub, Mode::Eval);
                let after = loss::entropy_per_image(&after_logits);
                for (&i, &h) in sub_idx.iter().zip(&after) {
                    step_after[i] = h;
                }
                model.unbind_bn_lanes(&mut sub_banks);
            }

            // Re-insert the sub-batch banks at their original positions
            // (increasing indices, so each insert lands where it left).
            for (&i, bank) in sub_idx.iter().zip(sub_banks) {
                banks.insert(i, bank);
            }
        }

        self.finish_tick_banked(frames, &entropies, &triggered, do_adapt, banks, &poisoned);
        assemble_outcomes(
            &logits,
            &entropies,
            &triggered,
            do_adapt,
            &step_before,
            &step_after,
        )
    }

    /// Whether the int8 serving snapshot has been built (quantized servers
    /// build it lazily on their first tick).
    pub fn quant_snapshot_ready(&self) -> bool {
        self.quant.is_some()
    }

    /// Whether per-stream BN banks are active.
    pub fn bn_banks_enabled(&self) -> bool {
        self.cfg.bn_banks
    }

    /// One stream's current BN bank (bank mode only; `None` otherwise).
    ///
    /// # Panics
    ///
    /// Panics if `stream` is out of range.
    pub fn stream_bank(&self, stream: usize) -> Option<&BnBank> {
        self.streams[stream].bank.as_ref()
    }

    /// One stream's bank telemetry (bank mode only; `None` otherwise).
    ///
    /// # Panics
    ///
    /// Panics if `stream` is out of range.
    pub fn bank_telemetry(&self, stream: usize) -> Option<BankTelemetry> {
        let st = &self.streams[stream];
        let (bank, init) = (st.bank.as_ref()?, self.init_bank.as_ref()?);
        Some(BankTelemetry {
            bank_swaps: st.bank_swaps,
            last_refold_tick: st.last_refold_tick,
            l2_from_init: bank.affine_l2_distance(init),
        })
    }

    /// Current measured-over-predicted tick-latency EWMA (1.0 until the
    /// first fed-back tick; only updated by [`AdaptServer::serve`] when
    /// latency feedback is enabled and an admission gate is attached).
    pub fn latency_ratio(&self) -> f64 {
        self.latency_ratio
    }

    /// The frame integrity guard of the self-healing layer: returns
    /// whether `frame` is fit to serve for `stream`, booking the rejection
    /// telemetry when it is not. A frame fails the screen when it contains
    /// non-finite pixels ([`SelfHealConfig::reject_nonfinite`]) or extends
    /// a run of bitwise-identical frames past
    /// [`SelfHealConfig::freeze_threshold`] (a wedged capture pipeline —
    /// serving it would fold fraudulent "confidence" into the stream's
    /// entropy reference). Always `true` when self-healing is off.
    ///
    /// [`AdaptServer::serve`] and [`AdaptServer::serve_ingest`] apply the
    /// guard themselves; callers driving [`AdaptServer::process_batch`]
    /// directly should screen each frame first and drop the rejects.
    ///
    /// # Panics
    ///
    /// Panics if `stream` is out of range.
    pub fn screen_frame(&mut self, stream: usize, frame: &Tensor) -> bool {
        let Some(heal) = self.cfg.self_heal else {
            return true;
        };
        let st = &mut self.streams[stream];
        if heal.reject_nonfinite && frame.as_slice().iter().any(|v| !v.is_finite()) {
            st.fault.stats.rejected_frames += 1;
            self.metrics.counter_add("server.rejected_frames", 1);
            return false;
        }
        if heal.freeze_threshold > 0 {
            let hash = hash_frame(frame);
            if st.fault.last_frame_hash == Some(hash) {
                st.fault.repeat_count += 1;
                if st.fault.repeat_count >= heal.freeze_threshold {
                    st.fault.stats.frozen_frames += 1;
                    st.fault.stats.rejected_frames += 1;
                    self.metrics.counter_add("server.rejected_frames", 1);
                    return false;
                }
            } else {
                st.fault.last_frame_hash = Some(hash);
                st.fault.repeat_count = 0;
            }
        }
        true
    }

    /// One stream's self-healing telemetry (`None` unless the server runs
    /// with [`ServerConfig::with_self_healing`]).
    ///
    /// # Panics
    ///
    /// Panics if `stream` is out of range.
    pub fn stream_fault_stats(&self, stream: usize) -> Option<StreamFaultStats> {
        self.cfg.self_heal.map(|_| self.streams[stream].fault.stats)
    }

    /// Whether `stream` is currently quarantined (serving eval-only while
    /// its divergence cooldown runs down; always `false` with self-healing
    /// off).
    ///
    /// # Panics
    ///
    /// Panics if `stream` is out of range.
    pub fn is_quarantined(&self, stream: usize) -> bool {
        self.streams[stream].fault.cooldown > 0
    }

    /// The serving pump: for `ticks` rounds, offer one fresh frame per
    /// stream (plus any deferrals), apply the admission verdict, process
    /// the admitted batch, and score the decoded lanes against each
    /// frame's labels.
    ///
    /// Deferred frames are served before their stream is polled again, so
    /// under sustained oversubscription streams are served round-robin and
    /// none starves.
    ///
    /// # Panics
    ///
    /// Panics if `streams` has a different stream count than the server.
    pub fn serve(
        &mut self,
        model: &mut UfldModel,
        streams: &mut StreamSet,
        ticks: usize,
    ) -> ServeReport {
        assert_eq!(
            streams.num_streams(),
            self.num_streams(),
            "serve: stream-set size mismatch"
        );
        let n = self.num_streams();
        let model_cfg = model.config().clone();
        let mut pending: VecDeque<(usize, LabeledFrame)> = VecDeque::new();
        let mut reports = vec![StreamReport::default(); n];
        for _ in 0..ticks {
            let mut offered_by: Vec<bool> = vec![false; n];
            for &(sid, _) in &pending {
                offered_by[sid] = true;
            }
            for (sid, seen) in offered_by.iter().enumerate() {
                if !seen {
                    let frame = streams.next_frame(sid);
                    // Self-heal: a frame that fails the integrity screen
                    // is dropped at poll time — the stream skips the tick
                    // rather than batching poison.
                    if self.screen_frame(sid, &frame.image) {
                        pending.push_back((sid, frame));
                    }
                }
            }
            if pending.is_empty() {
                // Every stream's frame was rejected this tick.
                continue;
            }
            let offered = pending.len();
            let cost_scale = if self.cfg.latency_feedback {
                self.latency_ratio
            } else {
                1.0
            };
            let verdict = match &self.cfg.admission {
                Some(gate) => gate.admit_scaled(offered.min(self.cfg.max_batch), cost_scale),
                None => BatchAdmission {
                    batch: offered.min(self.cfg.max_batch),
                    adapt: true,
                    latency_ms: 0.0,
                    fits_deadline: true,
                },
            };
            let take = verdict.batch.clamp(1, offered);
            let batch: Vec<(usize, LabeledFrame)> = pending.drain(..take).collect();
            self.metrics
                .counter_add("server.deferred_frames", pending.len() as u64);

            let refs: Vec<(usize, &Tensor)> =
                batch.iter().map(|(sid, f)| (*sid, &f.image)).collect();
            let snapshot_ready_before = !self.cfg.quantized_inference || self.quant.is_some();
            let tick_start = Instant::now();
            let outcomes = self.process_batch_gated(model, &refs, verdict.adapt);
            // Close the roofline-trust loop: fold this tick's measured
            // wall-clock over the (unscaled) prediction of the work the
            // tick *actually did* — how many frames adapted, at the gate's
            // serving precision — into the EWMA that corrects the next
            // admission query (pricing a shed, untriggered, or sub-batch
            // adapt step at the all-triggered admission estimate would bias
            // every sample low). The tick that builds the int8 snapshot is
            // excluded: its one-off calibration cost is not steady-state
            // serving and would poison the correction upward.
            if self.cfg.latency_feedback && snapshot_ready_before {
                if let Some(gate) = &self.cfg.admission {
                    let actual_ms = tick_start.elapsed().as_secs_f64() * 1e3;
                    let adapted = outcomes.iter().filter(|o| o.adapted.is_some()).count();
                    // The telemetry re-measure forward spans the whole
                    // batch on the f32 path (it reuses the batched
                    // inference entry) but only the triggered sub-batch on
                    // the quantized path.
                    let remeasured = if adapted > 0 && self.cfg.measure_entropy_after {
                        if self.cfg.quantized_inference {
                            adapted
                        } else {
                            take
                        }
                    } else {
                        0
                    };
                    let predicted_ms = gate.predict_ms(take, adapted, remeasured);
                    let sample = (actual_ms / predicted_ms)
                        .clamp(LATENCY_RATIO_CLAMP.0, LATENCY_RATIO_CLAMP.1);
                    self.latency_ratio = (1.0 - LATENCY_EWMA_MOMENTUM) * self.latency_ratio
                        + LATENCY_EWMA_MOMENTUM * sample;
                }
            }

            for ((sid, frame), outcome) in batch.iter().zip(&outcomes) {
                let lanes = decode_batch(&outcome.logits, &model_cfg);
                let scored = score_image(&lanes[0], &frame.labels, &model_cfg);
                reports[*sid].report.merge(&scored);
                reports[*sid].frames += 1;
            }
        }
        for (sid, report) in reports.iter_mut().enumerate() {
            report.stats = self.streams[sid].stats;
            report.bank = self.bank_telemetry(sid);
            report.fault = self.stream_fault_stats(sid);
        }
        ServeReport {
            per_stream: reports,
            server: self.server_stats(),
        }
    }

    /// The real-time serving pump over an [`ld_ingest::IngestFrontEnd`]
    /// (see the *ingest lifecycle* module docs): for `ticks` tick periods,
    /// advance to the tick boundary, drain the per-camera mailboxes, shed
    /// stale frames through the age-aware admission gate, batch-serve the
    /// survivors, and fold the tick's busy time back into the front end's
    /// overrun accounting.
    ///
    /// Semantics relative to [`AdaptServer::serve`]:
    ///
    /// * at nominal load (one frame per camera per tick, no staleness
    ///   pressure) the tick batches — and therefore the entire per-stream
    ///   adaptation state — are **bitwise identical** to the synchronous
    ///   pump on the same streams;
    /// * at most one frame per stream rides each tick, and at most one
    ///   undelivered frame per stream is ever held outside the mailboxes
    ///   (a stream with a deferred frame is simply not drained that tick —
    ///   the same bound `serve`'s `offered_by` check gives its pending
    ///   queue): surplus frames wait in the **bounded** rings, where
    ///   eviction keeps memory bounded and every loss counted. Deferred
    ///   frames keep aging — with an [`AdmissionGate::with_staleness`]
    ///   bound, frames that can no longer be served fresh are dropped *at
    ///   ingest* and counted in [`ServerStats::stale_shed_frames`]. When
    ///   the run ends, up to one still-fresh deferred frame per stream may
    ///   remain unserved; it is discarded with the pump's local state
    ///   (exactly as `serve` discards its pending deferrals);
    /// * a tick's busy time is its measured wall-clock on the real clock
    ///   and the gate's predicted latency on the deterministic manual
    ///   clock, so overrun accounting exists (and is reproducible) in both
    ///   modes. Measured-latency feedback
    ///   ([`ServerConfig::with_latency_feedback`]) stays wall-clock-based
    ///   and therefore only engages on the real clock.
    ///
    /// Real-time producers keep running when this returns; call
    /// [`ld_ingest::IngestFrontEnd::shutdown`] when done with the front
    /// end.
    ///
    /// Builds the stage-span timeline of one served ingest tick: the
    /// admission gate's cost-model breakdown (forward at the gate's
    /// precision, adaptation forward/backward, telemetry re-measure, and
    /// fixed sub-splits of the host-side preprocess cost for drain /
    /// screen / admit / bank-swap / decode) apportioned over the tick's
    /// recorded `busy_ns` — integer largest-remainder, so the spans sum to
    /// the busy time *exactly*. Without a gate there is no cost model to
    /// split against, and the tick is one opaque `server.process` span.
    fn tick_spans(
        &self,
        start_ns: u64,
        busy_ns: u64,
        batch: usize,
        adapted: usize,
        remeasured: usize,
    ) -> Vec<Span> {
        type Args = Vec<(&'static str, i64)>;
        let mut stages: Vec<(&'static str, f64, Args)> = Vec::new();
        match &self.cfg.admission {
            Some(gate) => {
                let (lat, remeasure_ms) = gate.predict_stages(batch, adapted, remeasured);
                let heal = self.cfg.self_heal.is_some();
                let banked = self.cfg.bn_banks;
                // The cost model prices the host-side work as one
                // `preprocess` term; sub-split it over the pipeline stages
                // it stands for (fractions are nominal — the paper's cost
                // model does not resolve below the preprocess line).
                let screen_f = if heal { 0.15 } else { 0.0 };
                let drain_f = if heal { 0.35 } else { 0.50 };
                let bank_f = if banked { 0.10 } else { 0.0 };
                let admit_f = 0.15;
                let decode_f = 1.0 - drain_f - screen_f - admit_f - bank_f;
                let pre = lat.preprocess_ms;
                stages.push(("ingest.drain", pre * drain_f, Vec::new()));
                if heal {
                    stages.push(("server.screen", pre * screen_f, Vec::new()));
                }
                stages.push(("orin.admit", pre * admit_f, Vec::new()));
                if banked {
                    stages.push(("bank.swap", pre * bank_f, Vec::new()));
                }
                stages.push((
                    gate.precision().trace_stage(),
                    lat.inference_ms,
                    vec![("batch", batch as i64)],
                ));
                if lat.adapt_forward_ms > 0.0 {
                    stages.push((
                        "forward.f32",
                        lat.adapt_forward_ms,
                        vec![("adapted", adapted as i64)],
                    ));
                }
                if adapted > 0 {
                    stages.push((
                        "backward",
                        lat.backward_ms + lat.update_ms,
                        vec![("adapted", adapted as i64)],
                    ));
                }
                if remeasure_ms > 0.0 {
                    stages.push((
                        "forward.f32",
                        remeasure_ms,
                        vec![("remeasured", remeasured as i64)],
                    ));
                }
                stages.push(("decode", pre * decode_f, Vec::new()));
            }
            None => stages.push(("server.process", 1.0, vec![("batch", batch as i64)])),
        }
        let weights: Vec<f64> = stages.iter().map(|s| s.1).collect();
        let durations = apportion(busy_ns, &weights);
        let mut spans = Vec::with_capacity(stages.len());
        let mut cursor = start_ns;
        for ((stage, _, args), dur_ns) in stages.into_iter().zip(durations) {
            if dur_ns > 0 {
                spans.push(Span {
                    stage,
                    start_ns: cursor,
                    dur_ns,
                    args,
                });
            }
            cursor += dur_ns;
        }
        spans
    }

    /// # Panics
    ///
    /// Panics if the front end's camera count differs from the server's
    /// stream count.
    pub fn serve_ingest(
        &mut self,
        model: &mut UfldModel,
        ingest: &mut IngestFrontEnd,
        ticks: usize,
    ) -> ServeReport {
        assert_eq!(
            ingest.num_cams(),
            self.num_streams(),
            "serve_ingest: camera-count mismatch"
        );
        let n = self.num_streams();
        let model_cfg = model.config().clone();
        let staleness = self.cfg.admission.as_ref().and_then(|g| g.staleness_ms());
        // Front-end counters are cumulative per front end; fold only this
        // run's delta into the server stats (the server may outlive the
        // front end, and vice versa).
        let ingest_base = ingest.report();
        let mut pending: VecDeque<IngestFrame> = VecDeque::new();
        let mut reports = vec![StreamReport::default(); n];
        for _ in 0..ticks {
            ingest.next_tick();
            // Drain one frame per stream that has none deferred: `pending`
            // holds at most one frame per stream, and everything beyond
            // that waits in the bounded, loss-counted mailboxes.
            let mut deferred_by = vec![false; n];
            for f in &pending {
                deferred_by[f.cam] = true;
            }
            // Self-heal: cameras the front end's health machine has
            // declared dead are excluded from the drain entirely — a
            // wedged sensor costs zero tick budget, and its recovery is
            // detected from mailbox pushes alone.
            if self.cfg.self_heal.is_some() {
                for (skip, dead) in deferred_by.iter_mut().zip(ingest.dead_mask()) {
                    *skip |= dead;
                }
            }
            pending.extend(ingest.drain_ready(&deferred_by));
            let now_ns = ingest.now_ns();
            let age_ms = |f: &IngestFrame| now_ns.saturating_sub(f.due_ns) as f64 / 1e6;

            // Backlog pre-shed: a queued frame whose age *alone* exceeds
            // the staleness bound can never be served fresh — drop it here
            // so an overloaded backlog cannot outgrow the admission
            // query's per-tick window.
            if let Some(bound) = staleness {
                let before = pending.len();
                pending.retain(|f| age_ms(f) <= bound);
                self.metrics
                    .counter_add("server.stale_shed_frames", (before - pending.len()) as u64);
            }

            // At most one frame per stream per tick, FIFO within a stream
            // (deferred frames precede fresh arrivals, so no stream
            // starves under sustained pressure).
            let mut offered_by = vec![false; n];
            let mut candidates: Vec<IngestFrame> = Vec::new();
            let mut leftover: VecDeque<IngestFrame> = VecDeque::new();
            for f in pending.drain(..) {
                if !offered_by[f.cam] && candidates.len() < self.cfg.max_batch {
                    // Self-heal: poisoned frames are dropped at the gate,
                    // before they cost admission or batching budget.
                    if !self.screen_frame(f.cam, &f.frame.image) {
                        continue;
                    }
                    offered_by[f.cam] = true;
                    candidates.push(f);
                } else {
                    leftover.push_back(f);
                }
            }
            if candidates.is_empty() {
                ingest.record_busy(0);
                pending = leftover;
                self.metrics
                    .counter_add("server.deferred_frames", pending.len() as u64);
                continue;
            }

            let cost_scale = if self.cfg.latency_feedback {
                self.latency_ratio
            } else {
                1.0
            };
            let tick_start = Instant::now();
            // Age-aware admission with a gate; a plain max-batch cap
            // without one (already applied above).
            let (served, allow_adapt) = match &self.cfg.admission {
                Some(gate) => {
                    let ages: Vec<f64> = candidates.iter().map(&age_ms).collect();
                    let aged = gate.admit_aged(&ages, cost_scale);
                    let mut fresh = Vec::with_capacity(aged.fresh());
                    for (f, &stale) in candidates.into_iter().zip(&aged.stale) {
                        if stale {
                            self.metrics.counter_add("server.stale_shed_frames", 1);
                        } else {
                            fresh.push(f);
                        }
                    }
                    match aged.admission {
                        None => (Vec::new(), false),
                        Some(adm) => {
                            let take = adm.batch.clamp(1, fresh.len());
                            // Unadmitted fresh frames defer ahead of this
                            // tick's leftovers (they are older).
                            for f in fresh.split_off(take).into_iter().rev() {
                                leftover.push_front(f);
                            }
                            (fresh, adm.adapt)
                        }
                    }
                }
                None => (candidates, true),
            };

            let mut adapted_count = 0;
            let snapshot_ready_before = !self.cfg.quantized_inference || self.quant.is_some();
            if !served.is_empty() {
                let refs: Vec<(usize, &Tensor)> =
                    served.iter().map(|f| (f.cam, &f.frame.image)).collect();
                let outcomes = self.process_batch_gated(model, &refs, allow_adapt);
                adapted_count = outcomes.iter().filter(|o| o.adapted.is_some()).count();
                for (f, outcome) in served.iter().zip(&outcomes) {
                    let lanes = decode_batch(&outcome.logits, &model_cfg);
                    let scored = score_image(&lanes[0], &f.frame.labels, &model_cfg);
                    reports[f.cam].report.merge(&scored);
                    reports[f.cam].frames += 1;
                }
            }

            // Busy time: measured on the real clock, predicted on the
            // manual clock (deterministic overrun accounting); the same
            // remeasure-span rule as the serve pump's feedback sample.
            let remeasured = if adapted_count > 0 && self.cfg.measure_entropy_after {
                if self.cfg.quantized_inference {
                    adapted_count
                } else {
                    served.len()
                }
            } else {
                0
            };
            let busy_ns = if ingest.is_manual() {
                match &self.cfg.admission {
                    Some(gate) if !served.is_empty() => {
                        let ms = gate.predict_ms(served.len(), adapted_count, remeasured);
                        (ms * 1e6) as u64
                    }
                    _ => 0,
                }
            } else {
                u64::try_from(tick_start.elapsed().as_nanos()).unwrap_or(u64::MAX)
            };
            // Tick tracing: annotate the trace this tick just pushed with
            // its timeline position and stage spans. Observability reads
            // the tick's telemetry; it never writes anything back.
            if self.obs.is_some() && !served.is_empty() {
                let spans =
                    self.tick_spans(now_ns, busy_ns, served.len(), adapted_count, remeasured);
                if let Some(trace) = self.obs.as_mut().and_then(|o| o.traces.last_mut()) {
                    trace.start_ns = now_ns;
                    trace.busy_ns = busy_ns;
                    trace.spans = spans;
                }
            }
            // Close the roofline-trust loop exactly as `serve` does —
            // wall-clock over predicted — which only exists on the real
            // clock (the manual clock's busy time *is* the prediction).
            if self.cfg.latency_feedback
                && !ingest.is_manual()
                && snapshot_ready_before
                && !served.is_empty()
            {
                if let Some(gate) = &self.cfg.admission {
                    let actual_ms = busy_ns as f64 / 1e6;
                    let predicted_ms = gate.predict_ms(served.len(), adapted_count, remeasured);
                    let sample = (actual_ms / predicted_ms)
                        .clamp(LATENCY_RATIO_CLAMP.0, LATENCY_RATIO_CLAMP.1);
                    self.latency_ratio = (1.0 - LATENCY_EWMA_MOMENTUM) * self.latency_ratio
                        + LATENCY_EWMA_MOMENTUM * sample;
                }
            }
            ingest.record_busy(busy_ns);
            pending = leftover;
            self.metrics
                .counter_add("server.deferred_frames", pending.len() as u64);
        }

        let ingest_report = ingest.report();
        for (sid, report) in reports.iter_mut().enumerate() {
            report.stats = self.streams[sid].stats;
            report.bank = self.bank_telemetry(sid);
            report.ingest = Some(ingest_report.per_cam[sid]);
            report.fault = self.stream_fault_stats(sid);
        }
        self.metrics.counter_add(
            "server.ingest_dropped_frames",
            ingest_report.dropped() - ingest_base.dropped(),
        );
        self.metrics.counter_add(
            "server.tick_overruns",
            (ingest_report.tick_overruns - ingest_base.tick_overruns) as u64,
        );
        ServeReport {
            per_stream: reports,
            server: self.server_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::frame_spec_for;
    use crate::governor::AdaptGovernor;
    use crate::trainer::{pretrain_on_source, TrainConfig};
    use ld_carlane::Benchmark;
    use ld_nn::BnStatsPolicy;
    use ld_tensor::rng::SeededRng;
    use ld_ufld::UfldConfig;

    fn frozen_cfg(gov: GovernorConfig) -> ServerConfig {
        ServerConfig::new(
            LdBnAdaptConfig::paper(1).with_stats_policy(BnStatsPolicy::Running),
            gov,
            8,
        )
    }

    fn random_frames(cfg: &UfldConfig, count: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = SeededRng::new(seed);
        (0..count)
            .map(|_| rng.uniform_tensor(&[3, cfg.input_height, cfg.input_width], 0.0, 1.0))
            .collect()
    }

    /// The stream-isolation acceptance test: with BN statistics frozen
    /// ([`BnStatsPolicy::Running`] keeps samples independent through the
    /// batch) and a never-trigger governor, K interleaved streams through
    /// one batched server yield bitwise-identical [`FrameOutcome`]s to K
    /// fully independent single-stream governors on model clones.
    #[test]
    fn batched_streams_bitwise_match_independent_governors_when_frozen() {
        let cfg = UfldConfig::tiny(2);
        let gov = GovernorConfig {
            warmup_frames: 0,
            threshold_ratio: 1e6,
            rollback_ratio: 1e9,
            ..Default::default()
        };
        let k = 3;
        let rounds = 4;
        let mut shared = UfldModel::new(&cfg, 0xBEEF);
        let mut clones: Vec<UfldModel> = (0..k).map(|_| shared.clone_model()).collect();

        let mut server = AdaptServer::new(frozen_cfg(gov), k, &mut shared);
        let mut governors: Vec<AdaptGovernor> = clones
            .iter_mut()
            .map(|m| {
                AdaptGovernor::new(
                    LdBnAdaptConfig::paper(1).with_stats_policy(BnStatsPolicy::Running),
                    gov,
                    m,
                )
            })
            .collect();

        for round in 0..rounds {
            let frames = random_frames(&cfg, k, 100 + round as u64);
            let batch: Vec<(usize, &Tensor)> = frames.iter().enumerate().collect();
            let outcomes = server.process_batch(&mut shared, &batch);
            for (s, (gov, clone)) in governors.iter_mut().zip(&mut clones).enumerate() {
                let (logits, adapted) = gov.process_frame(clone, &frames[s]);
                assert_eq!(
                    outcomes[s].logits.as_slice(),
                    logits.as_slice(),
                    "round {round} stream {s}: logits diverged"
                );
                assert!(!adapted && outcomes[s].adapted.is_none());
            }
        }
        for (s, gov) in governors.iter().enumerate() {
            assert_eq!(server.stream_stats(s), gov.stats(), "stream {s}");
            assert_eq!(
                server.reference_entropy(s).map(f32::to_bits),
                gov.reference_entropy().map(f32::to_bits),
                "stream {s} reference band"
            );
            assert_eq!(server.stream_stats(s).frames, rounds);
            assert_eq!(server.stream_stats(s).skipped_frames, rounds);
        }
        assert_eq!(server.server_stats().adapt_steps, 0);
    }

    /// Warm-up makes every stream trigger: one shared step per tick, every
    /// stream's duty counted, and the step telemetry populated.
    #[test]
    fn warmup_batches_share_one_adapt_step_per_tick() {
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 0xA1);
        let gov = GovernorConfig {
            warmup_frames: 10,
            ..Default::default()
        };
        let server_cfg = ServerConfig::new(LdBnAdaptConfig::paper(1), gov, 4);
        let mut server = AdaptServer::new(server_cfg, 4, &mut model);
        for round in 0..3 {
            let frames = random_frames(&cfg, 4, 7 + round);
            let batch: Vec<(usize, &Tensor)> = frames.iter().enumerate().collect();
            let outcomes = server.process_batch(&mut model, &batch);
            for out in &outcomes {
                let step = out.adapted.expect("warm-up adapts");
                assert!(step.entropy_before.is_finite());
                assert!(step.entropy_after.is_finite());
            }
        }
        assert_eq!(server.server_stats().adapt_steps, 3, "one step per tick");
        assert_eq!(server.total_stats().adapted_frames, 12);
        for s in 0..4 {
            assert_eq!(server.stream_stats(s).adapted_frames, 3);
        }
    }

    /// Duty-cycle accounting under mixed drift schedules: every stream's
    /// counters stay consistent and per-stream references diverge (each
    /// stream tracks its own conditions).
    #[test]
    fn duty_cycle_accounting_under_mixed_drift() {
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 0x60F);
        let mut train = TrainConfig::smoke();
        train.steps = 60;
        pretrain_on_source(&mut model, Benchmark::MoLane, &train);

        let gov = GovernorConfig {
            warmup_frames: 2,
            threshold_ratio: 1.05,
            ..Default::default()
        };
        let server_cfg = ServerConfig::new(LdBnAdaptConfig::paper(1), gov, 3);
        let mut server = AdaptServer::new(server_cfg, 3, &mut model);
        let mut set = StreamSet::drifting(Benchmark::MoLane, frame_spec_for(&cfg), 3, 12, 11);

        let ticks = 10;
        let report = server.serve(&mut model, &mut set, ticks);

        assert_eq!(report.server.ticks, ticks);
        assert_eq!(report.server.frames, 3 * ticks);
        assert_eq!(report.server.deferred_frames, 0, "no gate, no deferrals");
        for (sid, stream) in report.per_stream.iter().enumerate() {
            let s = stream.stats;
            assert_eq!(s.frames, ticks, "stream {sid} served every tick");
            assert_eq!(
                s.adapted_frames + s.skipped_frames,
                s.frames,
                "stream {sid} accounting"
            );
            assert!(s.duty_cycle() > 0.0 && s.duty_cycle() <= 1.0);
            assert!(stream.report.gt_points > 0, "stream {sid} was scored");
            assert!(server.reference_entropy(sid).is_some());
        }
        // Warm-up adapts at minimum; the total cannot be all-skip.
        assert!(report.server.adapt_steps >= 2);
    }

    /// Oversubscription against a tight deadline: frames defer round-robin
    /// (no stream starves) and the adapt step is shed, never the frames.
    #[test]
    fn admission_sheds_adaptation_and_defers_frames() {
        use ld_ufld::Backbone;
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 0xC4);
        // R-18 paper-scale at 15 W cannot fit the adapt step in 33.3 ms;
        // only a single inference-only frame is admitted per tick.
        let gate = AdmissionGate::new(
            AdaptCostModel::paper_scale(&UfldConfig::paper(Backbone::ResNet18, 4)),
            PowerMode::W15,
            Deadline::FPS30,
        );
        let gov = GovernorConfig {
            warmup_frames: 100, // every frame wants to adapt
            ..Default::default()
        };
        let server_cfg = ServerConfig::new(LdBnAdaptConfig::paper(1), gov, 2).with_admission(gate);
        let mut server = AdaptServer::new(server_cfg, 2, &mut model);
        let mut set = StreamSet::drifting(Benchmark::MoLane, frame_spec_for(&cfg), 2, 8, 3);

        let ticks = 6;
        let report = server.serve(&mut model, &mut set, ticks);

        assert_eq!(report.server.adapt_steps, 0, "adaptation fully shed");
        assert_eq!(report.server.shed_adapt_ticks, ticks);
        assert!(report.server.deferred_frames > 0);
        assert_eq!(report.server.frames, ticks, "one admitted frame per tick");
        // Round-robin deferral serves both streams.
        let f0 = report.per_stream[0].frames;
        let f1 = report.per_stream[1].frames;
        assert_eq!(f0 + f1, ticks);
        assert!(f0 > 0 && f1 > 0, "no stream starves: {f0} vs {f1}");
        // Shed triggers count as skips, keeping the accounting identity.
        for s in &report.per_stream {
            assert_eq!(s.stats.adapted_frames, 0);
            assert_eq!(s.stats.skipped_frames, s.stats.frames);
        }
    }

    /// The gate boundary degrades pathological admission inputs to
    /// shedding instead of panicking: `ld_orin`'s preconditions stay
    /// strict, so a poisoned age or cost-scale must be absorbed here, on
    /// the serving hot path, at the cost of one shed frame.
    #[test]
    fn admission_gate_degrades_pathological_inputs_to_shedding() {
        use ld_ufld::Backbone;
        let gate = AdmissionGate::new(
            AdaptCostModel::paper_scale(&UfldConfig::paper(Backbone::ResNet18, 4)),
            PowerMode::MaxN60,
            Deadline::FPS30,
        )
        .with_staleness(100.0);

        // Non-finite / negative ages shed as stale in offer order; the sane
        // remainder gets the same verdict as offering it alone.
        let aged = gate.admit_aged(&[f64::NAN, -3.0, 5.0, f64::INFINITY, 0.0], 1.0);
        assert_eq!(aged.stale[..2], [true, true], "poisoned ages shed");
        assert!(aged.stale[3], "infinite age shed");
        let clean = gate.admit_aged(&[5.0, 0.0], 1.0);
        assert_eq!(aged.stale[2], clean.stale[0]);
        assert_eq!(aged.stale[4], clean.stale[1]);
        assert_eq!(aged.admission, clean.admission);

        // A fully-poisoned offer — and an empty one — admits nothing.
        let all_bad = gate.admit_aged(&[f64::NEG_INFINITY, -0.5], 2.0);
        assert_eq!(all_bad.stale, vec![true, true]);
        assert!(all_bad.admission.is_none());
        let empty = gate.admit_aged(&[], 1.0);
        assert!(empty.stale.is_empty() && empty.admission.is_none());

        // A zero-stream batch is a trivially on-deadline no-adapt verdict.
        let zero = gate.admit_scaled(0, 1.0);
        assert_eq!((zero.batch, zero.adapt), (0, false));
        assert!(zero.fits_deadline && zero.latency_ms == 0.0);

        // Poisoned cost-scales (NaN timer, zero-duration division, negative
        // latency sample) fall back to the uncorrected roofline.
        let reference = gate.admit_scaled(4, 1.0);
        for bad in [f64::NAN, f64::INFINITY, 0.0, -2.0] {
            assert_eq!(gate.admit_scaled(4, bad), reference, "scale {bad}");
            let aged = gate.admit_aged(&[1.0, 2.0], bad);
            assert_eq!(aged.admission, gate.admit_aged(&[1.0, 2.0], 1.0).admission);
        }
    }

    /// A mixed tick (one stream confident, one adapting) must bless the
    /// *pre-update* parameters as known-good: the confident stream's
    /// entropy was measured on them, and blessing the post-update state
    /// would let a destructive shared step poison the rollback snapshot.
    #[test]
    fn mixed_tick_blesses_pre_update_bn_state() {
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 0x60F);
        let mut train = TrainConfig::smoke();
        train.steps = 80;
        pretrain_on_source(&mut model, Benchmark::MoLane, &train);

        let gov = GovernorConfig {
            warmup_frames: 1,
            threshold_ratio: 1.02,
            rollback_ratio: 1e9, // keep rollback out of this scenario
            ..Default::default()
        };
        let server_cfg = ServerConfig::new(LdBnAdaptConfig::paper(1).with_lr(0.05), gov, 2);
        let mut server = AdaptServer::new(server_cfg, 2, &mut model);

        let calm = ld_carlane::FrameStream::source(Benchmark::MoLane, frame_spec_for(&cfg), 1, 12)
            .frame(0)
            .image;
        // Tick 1: stream 0 alone — its single warm-up frame adapts and
        // sets its reference on the pre-update entropy.
        let outcomes = server.process_batch(&mut model, &[(0, &calm)]);
        assert!(outcomes[0].adapted.is_some(), "warm-up frame must adapt");

        let pre_tick_bn = snapshot_bn(&mut model);
        // Tick 2: stream 0 is past warm-up and sees the same calm frame
        // again — tick 1's entropy-descent step on that very frame keeps
        // it inside the trigger band, so it skips. Stream 1's first-ever
        // frame is still warm-up and must adapt: a mixed tick by
        // construction, independent of any entropy margin.
        let outcomes = server.process_batch(&mut model, &[(0, &calm), (1, &calm)]);
        assert!(outcomes[0].adapted.is_none(), "calm stream must skip");
        assert!(outcomes[1].adapted.is_some(), "warm-up stream must adapt");

        // The update moved the live BN parameters…
        let post_tick_bn = snapshot_bn(&mut model);
        assert!(
            pre_tick_bn
                .iter()
                .zip(&post_tick_bn)
                .any(|((_, a), (_, b))| a.as_slice() != b.as_slice()),
            "the shared step should move BN params"
        );
        // …but the blessed snapshot is the pre-update state.
        for ((name, good), (_, pre)) in server.good_bn_state.iter().zip(&pre_tick_bn) {
            assert_eq!(
                good.as_slice(),
                pre.as_slice(),
                "{name}: known-good state must be the pre-update values"
            );
        }
    }

    /// Quantized fast path, no triggers: every outcome must come bitwise
    /// from the int8 snapshot (quantized on the first tick's frames), and
    /// the f32 model must never be touched.
    #[test]
    fn quantized_server_serves_confident_streams_from_the_snapshot() {
        use ld_quant::QuantizeModel;
        let cfg = UfldConfig::tiny(2);
        let gov = GovernorConfig {
            warmup_frames: 0,
            threshold_ratio: 1e6,
            rollback_ratio: 1e9,
            ..Default::default()
        };
        let k = 3;
        let mut model = UfldModel::new(&cfg, 0xBEEF);
        let mut reference = model.clone_model();
        let server_cfg = frozen_cfg(gov).with_quantized_inference();
        let mut server = AdaptServer::new(server_cfg, k, &mut model);
        assert!(!server.quant_snapshot_ready());

        let tick1 = random_frames(&cfg, k, 200);
        let batch1: Vec<(usize, &Tensor)> = tick1.iter().enumerate().collect();
        let out1 = server.process_batch(&mut model, &batch1);
        assert!(server.quant_snapshot_ready());

        // An independent snapshot quantized on the same calibration frames
        // must reproduce the server's serving logits exactly.
        let calib: Vec<&Tensor> = tick1.iter().collect();
        let mut qref = reference.quantize(&calib);
        let want1 = qref.forward_frames(&calib);
        for (i, out) in out1.iter().enumerate() {
            assert_eq!(out.logits.as_slice(), want1.image(i), "tick1 frame {i}");
            assert!(out.adapted.is_none(), "never-trigger governor");
        }
        let tick2 = random_frames(&cfg, k, 201);
        let batch2: Vec<(usize, &Tensor)> = tick2.iter().enumerate().collect();
        let out2 = server.process_batch(&mut model, &batch2);
        let refs2: Vec<&Tensor> = tick2.iter().collect();
        let want2 = qref.forward_frames(&refs2);
        for (i, out) in out2.iter().enumerate() {
            assert_eq!(out.logits.as_slice(), want2.image(i), "tick2 frame {i}");
        }
        assert_eq!(server.server_stats().adapt_steps, 0);
    }

    /// Quantized fast path under warm-up (every stream triggers): the f32
    /// adaptation still runs (one shared step per tick over the triggered
    /// sub-batch), the snapshot is dirty-flagged and re-folded, and the
    /// post-refresh serving logits pick up the BN movement.
    #[test]
    fn quantized_server_adapts_triggered_streams_in_f32() {
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 0xA7);
        let gov = GovernorConfig {
            warmup_frames: 10,
            ..Default::default()
        };
        let server_cfg = ServerConfig::new(LdBnAdaptConfig::paper(1).with_lr(0.05), gov, 4)
            .with_quantized_inference();
        let mut server = AdaptServer::new(server_cfg, 4, &mut model);
        let bn_before = snapshot_bn(&mut model);
        let mut last = Vec::new();
        for round in 0..3 {
            let frames = random_frames(&cfg, 4, 50 + round);
            let batch: Vec<(usize, &Tensor)> = frames.iter().enumerate().collect();
            let outcomes = server.process_batch(&mut model, &batch);
            for out in &outcomes {
                let step = out.adapted.expect("warm-up adapts");
                assert!(step.entropy_before.is_finite());
                assert!(step.entropy_after.is_finite());
            }
            last = outcomes;
        }
        assert_eq!(server.server_stats().adapt_steps, 3, "one step per tick");
        assert_eq!(server.total_stats().adapted_frames, 12);
        let bn_after = snapshot_bn(&mut model);
        assert!(
            bn_before
                .iter()
                .zip(&bn_after)
                .any(|((_, a), (_, b))| a.as_slice() != b.as_slice()),
            "adaptation must move the f32 BN parameters"
        );
        assert!(!last.is_empty());
    }

    #[test]
    #[should_panic(expected = "BnOnly")]
    fn quantized_server_requires_bn_only_adaptation() {
        use ld_nn::ParamFilter;
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 3);
        let server_cfg = ServerConfig::new(
            LdBnAdaptConfig::paper(1).with_filter(ParamFilter::ConvOnly),
            GovernorConfig::default(),
            2,
        )
        .with_quantized_inference();
        AdaptServer::new(server_cfg, 2, &mut model);
    }

    /// Measured-latency feedback: the tiny CI model runs orders of
    /// magnitude faster than the paper-scale roofline prediction, so the
    /// EWMA must fall below 1 and the corrected gate must admit more (fewer
    /// deferrals) than the uncorrected one on the same workload.
    #[test]
    fn latency_feedback_grows_admissions_on_a_fast_host() {
        use ld_ufld::Backbone;
        let cfg = UfldConfig::tiny(2);
        let gov = GovernorConfig {
            warmup_frames: 100,
            ..Default::default()
        };
        let gate = || {
            AdmissionGate::new(
                AdaptCostModel::paper_scale(&UfldConfig::paper(Backbone::ResNet18, 4)),
                PowerMode::W15,
                Deadline::FPS30,
            )
        };
        let ticks = 16;
        let run = |feedback: bool| {
            let mut model = UfldModel::new(&cfg, 0xC4);
            let mut server_cfg =
                ServerConfig::new(LdBnAdaptConfig::paper(1), gov, 2).with_admission(gate());
            if feedback {
                server_cfg = server_cfg.with_latency_feedback();
            }
            let mut server = AdaptServer::new(server_cfg, 2, &mut model);
            let mut set = StreamSet::drifting(Benchmark::MoLane, frame_spec_for(&cfg), 2, 8, 3);
            let report = server.serve(&mut model, &mut set, ticks);
            (report.server, server.latency_ratio())
        };
        let (without, ratio_off) = run(false);
        let (with, ratio_on) = run(true);
        assert_eq!(ratio_off, 1.0, "feedback off leaves the EWMA untouched");
        assert!(
            ratio_on < 1.0,
            "a fast host must pull the EWMA down, got {ratio_on}"
        );
        assert!(
            with.deferred_frames < without.deferred_frames,
            "corrected gate must defer less: {} vs {}",
            with.deferred_frames,
            without.deferred_frames
        );
    }

    /// The bank-mode isolation contract: K streams with per-stream banks
    /// through ONE batched server are bitwise identical — logits, trigger
    /// decisions, duty stats, reference bands — to K dedicated
    /// single-stream governors each owning a full model copy. This is with
    /// the paper's Batch statistics policy and real adaptation steps (the
    /// frozen-stats variant of this test covers the shared config).
    #[test]
    fn banked_streams_bitwise_match_dedicated_single_stream_servers() {
        let cfg = UfldConfig::tiny(2);
        let gov = GovernorConfig {
            warmup_frames: 2,
            threshold_ratio: 1.05,
            rollback_ratio: 1e9,
            ..Default::default()
        };
        let k = 3;
        let rounds = 5;
        let adapt = || LdBnAdaptConfig::paper(1).with_lr(0.02);
        let mut shared = UfldModel::new(&cfg, 0xBA7);
        let mut clones: Vec<UfldModel> = (0..k).map(|_| shared.clone_model()).collect();

        let non_bn_before: Vec<Tensor> = {
            let mut v = Vec::new();
            shared.visit_params(&mut |p| {
                if !p.kind.is_bn() {
                    v.push(p.value.clone());
                }
            });
            v
        };
        let server_cfg = ServerConfig::new(adapt(), gov, k).with_bn_banks();
        let mut server = AdaptServer::new(server_cfg, k, &mut shared);
        assert!(server.bn_banks_enabled());
        let resident_bn_before = snapshot_bn(&mut shared);
        let mut governors: Vec<AdaptGovernor> = clones
            .iter_mut()
            .map(|m| AdaptGovernor::new(adapt(), gov, m))
            .collect();

        let mut any_adapted = false;
        for round in 0..rounds {
            let frames = random_frames(&cfg, k, 500 + round as u64);
            let batch: Vec<(usize, &Tensor)> = frames.iter().enumerate().collect();
            let outcomes = server.process_batch(&mut shared, &batch);
            for (s, (gv, clone)) in governors.iter_mut().zip(&mut clones).enumerate() {
                let (logits, adapted) = gv.process_frame(clone, &frames[s]);
                assert_eq!(
                    outcomes[s].logits.as_slice(),
                    logits.as_slice(),
                    "round {round} stream {s}: logits diverged"
                );
                assert_eq!(
                    outcomes[s].adapted.is_some(),
                    adapted,
                    "round {round} stream {s}: trigger decision diverged"
                );
                any_adapted |= adapted;
            }
        }
        assert!(any_adapted, "workload never adapted — test is vacuous");
        for (s, gv) in governors.iter().enumerate() {
            assert_eq!(server.stream_stats(s), gv.stats(), "stream {s} stats");
            assert_eq!(
                server.reference_entropy(s).map(f32::to_bits),
                gv.reference_entropy().map(f32::to_bits),
                "stream {s} reference band"
            );
        }
        // Banks moved away from init (and per-stream L2 telemetry sees it)…
        let telemetry = server.bank_telemetry(0).expect("bank telemetry");
        assert!(telemetry.l2_from_init > 0.0);
        assert_eq!(telemetry.bank_swaps, rounds);
        // …while the shared model itself — conv/FC weights AND resident BN
        // state — was never touched: all per-stream state lives in banks.
        let mut idx = 0;
        shared.visit_params(&mut |p| {
            if !p.kind.is_bn() {
                assert_eq!(p.value.as_slice(), non_bn_before[idx].as_slice());
                idx += 1;
            }
        });
        let resident_bn_after = snapshot_bn(&mut shared);
        for ((name, a), (_, b)) in resident_bn_before.iter().zip(&resident_bn_after) {
            assert_eq!(a.as_slice(), b.as_slice(), "{name}: resident BN moved");
        }
    }

    /// Per-stream rollback in bank mode: poisoning one stream's bank rolls
    /// only that stream back; the healthy stream's bank is untouched.
    #[test]
    fn banked_rollback_is_per_stream() {
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 0x60F);
        let mut train = TrainConfig::smoke();
        train.steps = 60;
        pretrain_on_source(&mut model, Benchmark::MoLane, &train);

        let gov = GovernorConfig {
            warmup_frames: 0,
            threshold_ratio: 1.02,
            rollback_ratio: 1.5,
            ..Default::default()
        };
        let server_cfg = ServerConfig::new(LdBnAdaptConfig::paper(1), gov, 2).with_bn_banks();
        let mut server = AdaptServer::new(server_cfg, 2, &mut model);

        let calm = ld_carlane::FrameStream::source(Benchmark::MoLane, frame_spec_for(&cfg), 1, 12)
            .frame(0)
            .image;
        // Settle both streams on the calm frame (references + blessings).
        for _ in 0..4 {
            server.process_batch(&mut model, &[(0, &calm), (1, &calm)]);
        }
        let healthy_before = server.stream_bank(1).unwrap().clone();

        // Poison stream 0's bank directly (simulating a destructive update).
        for st in server.streams[0].bank.as_mut().unwrap().states_mut() {
            st.gamma.value.fill(0.0);
            st.beta.value.fill(0.0);
        }
        server.process_batch(&mut model, &[(0, &calm), (1, &calm)]);
        assert!(
            server.stream_stats(0).rollbacks >= 1,
            "poisoned stream must roll back: {:?}",
            server.stream_stats(0)
        );
        assert_eq!(server.stream_stats(1).rollbacks, 0, "healthy stream");
        // Stream 0's bank is restored (non-zero), not still poisoned.
        let restored = server.stream_bank(0).unwrap();
        assert!(restored
            .iter()
            .any(|st| st.gamma.value.as_slice().iter().any(|&v| v != 0.0)));
        // Stream 1's bank did not take stream 0's rollback (it may have
        // adapted its own step on this tick, but from its own history).
        let healthy_after = server.stream_bank(1).unwrap();
        let drift = healthy_after.affine_l2_distance(&healthy_before);
        assert!(drift < 1.0, "healthy bank jumped implausibly far: {drift}");
    }

    /// Banked int8 fast path: per-stream epilogue tables re-fold lazily —
    /// only when *that* stream's bank moved — and the serving logits stay
    /// finite through build/refold/adapt cycles.
    #[test]
    fn quantized_banked_server_refolds_tables_per_stream() {
        let cfg = UfldConfig::tiny(2);
        let gov = GovernorConfig {
            warmup_frames: 1,
            threshold_ratio: 1e6,
            rollback_ratio: 1e9,
            ..Default::default()
        };
        let mut model = UfldModel::new(&cfg, 0xBEE5);
        let server_cfg = ServerConfig::new(LdBnAdaptConfig::paper(1).with_lr(0.05), gov, 2)
            .with_quantized_inference()
            .with_bn_banks();
        let mut server = AdaptServer::new(server_cfg, 2, &mut model);

        // Tick 0: warm-up triggers both; tables refold from init (dirty at
        // build), then both banks adapt and go dirty again.
        let f0 = random_frames(&cfg, 2, 700);
        let out0 = server.process_batch(&mut model, &[(0, &f0[0]), (1, &f0[1])]);
        assert!(server.quant_snapshot_ready());
        assert!(out0.iter().all(|o| o.adapted.is_some()));
        assert_eq!(server.bank_telemetry(0).unwrap().last_refold_tick, Some(0));
        assert_eq!(server.bank_telemetry(1).unwrap().last_refold_tick, Some(0));
        assert!(server.bank_telemetry(0).unwrap().l2_from_init > 0.0);

        // Tick 1: both dirty from tick 0's adapt → both refold; the huge
        // threshold stops further triggering.
        let f1 = random_frames(&cfg, 2, 701);
        let out1 = server.process_batch(&mut model, &[(0, &f1[0]), (1, &f1[1])]);
        assert!(out1.iter().all(|o| o.adapted.is_none()));
        assert_eq!(server.bank_telemetry(0).unwrap().last_refold_tick, Some(1));
        assert_eq!(server.bank_telemetry(1).unwrap().last_refold_tick, Some(1));

        // Tick 2: serve stream 0 alone — its table is clean, so no refold.
        server.process_batch(&mut model, &[(0, &f0[0])]);
        assert_eq!(
            server.bank_telemetry(0).unwrap().last_refold_tick,
            Some(1),
            "clean table must not refold"
        );
        // And every outcome stayed finite through the quantized path.
        for o in out0.iter().chain(&out1) {
            assert!(o.entropy.is_finite());
            assert!(!o.logits.has_non_finite());
        }
    }

    #[test]
    #[should_panic(expected = "frozen during serving")]
    fn bn_banks_reject_ema_stats_policy() {
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 3);
        let server_cfg = ServerConfig::new(
            LdBnAdaptConfig::paper(1).with_stats_policy(BnStatsPolicy::BatchEma { momentum: 0.1 }),
            GovernorConfig::default(),
            2,
        )
        .with_bn_banks();
        AdaptServer::new(server_cfg, 2, &mut model);
    }

    #[test]
    #[should_panic(expected = "BnOnly")]
    fn bn_banks_require_bn_only_adaptation() {
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 3);
        let server_cfg = ServerConfig::new(
            LdBnAdaptConfig::paper(1).with_filter(ParamFilter::FcOnly),
            GovernorConfig::default(),
            2,
        )
        .with_bn_banks();
        AdaptServer::new(server_cfg, 2, &mut model);
    }

    #[test]
    #[should_panic(expected = "duplicate stream")]
    fn rejects_duplicate_streams_in_one_tick() {
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 1);
        let server_cfg = ServerConfig::new(LdBnAdaptConfig::paper(1), GovernorConfig::default(), 4);
        let mut server = AdaptServer::new(server_cfg, 2, &mut model);
        let f = Tensor::zeros(&[3, cfg.input_height, cfg.input_width]);
        server.process_batch(&mut model, &[(1, &f), (1, &f)]);
    }

    #[test]
    #[should_panic(expected = "batch size 1")]
    fn rejects_frame_accumulation_batch_sizes() {
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 2);
        let server_cfg = ServerConfig::new(LdBnAdaptConfig::paper(2), GovernorConfig::default(), 4);
        AdaptServer::new(server_cfg, 2, &mut model);
    }

    /// The integrity screen rejects non-finite frames outright and frozen
    /// repeats past the threshold, while letting short static runs serve.
    #[test]
    fn integrity_screen_rejects_nonfinite_and_frozen_frames() {
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 7);
        let server_cfg =
            frozen_cfg(GovernorConfig::default()).with_self_healing(SelfHealConfig::default());
        let mut server = AdaptServer::new(server_cfg, 1, &mut model);
        let frames = random_frames(&cfg, 2, 3);

        let mut poison = frames[0].clone();
        poison.as_mut_slice()[5] = f32::INFINITY;
        assert!(!server.screen_frame(0, &poison), "inf pixel must reject");

        // Freeze detection: a short static run is legal (threshold 3),
        // the run past it is a wedged capture pipeline.
        assert!(server.screen_frame(0, &frames[0]));
        assert!(server.screen_frame(0, &frames[0]));
        assert!(server.screen_frame(0, &frames[0]));
        assert!(
            !server.screen_frame(0, &frames[0]),
            "4th identical frame exceeds threshold 3"
        );
        assert!(!server.screen_frame(0, &frames[0]));
        assert!(server.screen_frame(0, &frames[1]), "fresh content serves");
        let fault = server.stream_fault_stats(0).unwrap();
        assert_eq!(fault.rejected_frames, 3);
        assert_eq!(fault.frozen_frames, 2);
        assert_eq!(server.server_stats().rejected_frames, 3);
    }

    /// Shared-state mode: non-finite BN state is divergence the entropy
    /// can't surface (the rectifiers launder mid-network NaN into zeroed
    /// activations, so the head's entropy still looks finite) — the state
    /// screen catches it, rolls the shared model back, and quarantines
    /// every stream riding the poisoned state.
    #[test]
    fn shared_mode_poisoned_bn_state_rolls_back_and_quarantines() {
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 0xBAD);
        let gov = GovernorConfig {
            warmup_frames: 0,
            threshold_ratio: 1e6,
            rollback_ratio: 1e9,
            ..Default::default()
        };
        let server_cfg = frozen_cfg(gov).with_self_healing(SelfHealConfig::default());
        let mut server = AdaptServer::new(server_cfg, 2, &mut model);
        let frames = random_frames(&cfg, 2, 9);
        server.process_batch(&mut model, &[(0, &frames[0]), (1, &frames[1])]);
        let references_before: Vec<_> = (0..2)
            .map(|s| server.reference_entropy(s).map(f32::to_bits))
            .collect();

        // Simulate a destructive update landing non-finite γ/β on the
        // shared model.
        model.visit_params(&mut |p| {
            if p.kind.is_bn() {
                p.value.fill(f32::NAN);
            }
        });
        let outcomes = server.process_batch(&mut model, &[(0, &frames[0]), (1, &frames[1])]);
        assert!(outcomes.iter().all(|o| o.adapted.is_none()));
        assert!(server.is_quarantined(0), "shared state is shared fate");
        assert!(server.is_quarantined(1));
        assert_eq!(server.server_stats().rollback_ticks, 1);
        assert_eq!(server.server_stats().divergence_events, 2);
        // The rollback healed the model: BN values are finite again…
        let mut finite = true;
        model.visit_params(&mut |p| {
            if p.kind.is_bn() {
                finite &= p.value.as_slice().iter().all(|v| v.is_finite());
            }
        });
        assert!(finite, "rollback must restore finite BN state");
        // …and the garbage tick never folded into the reference bands.
        for (s, before) in references_before.iter().enumerate() {
            assert_eq!(
                server.reference_entropy(s).map(f32::to_bits),
                *before,
                "stream {s}: divergent tick polluted the reference band"
            );
        }
        // Serving out the quarantine recovers both streams.
        let base = SelfHealConfig::default().quarantine_base as usize;
        for _ in 0..base {
            let outcomes = server.process_batch(&mut model, &[(0, &frames[0]), (1, &frames[1])]);
            assert!(outcomes.iter().all(|o| o.entropy.is_finite()));
        }
        assert!(!server.is_quarantined(0));
        assert!(!server.is_quarantined(1));
        assert!(server
            .stream_fault_stats(0)
            .unwrap()
            .recovery_tick
            .is_some());
    }

    /// Bank mode: a stream whose bank goes numerically divergent is rolled
    /// back to its blessed snapshot, serves eval-only through the
    /// quarantine, and resumes with a recorded recovery tick — while the
    /// healthy stream's fault telemetry stays all-zero.
    #[test]
    fn divergent_bank_rolls_back_quarantines_and_recovers() {
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 0x5EA1);
        let mut train = TrainConfig::smoke();
        train.steps = 40;
        pretrain_on_source(&mut model, Benchmark::MoLane, &train);
        let gov = GovernorConfig {
            warmup_frames: 0,
            threshold_ratio: 1e6,
            rollback_ratio: 1e9,
            ..Default::default()
        };
        let server_cfg = ServerConfig::new(LdBnAdaptConfig::paper(1), gov, 2)
            .with_bn_banks()
            .with_self_healing(SelfHealConfig::default());
        let mut server = AdaptServer::new(server_cfg, 2, &mut model);
        let calm = ld_carlane::FrameStream::source(Benchmark::MoLane, frame_spec_for(&cfg), 1, 12)
            .frame(0)
            .image;
        for _ in 0..2 {
            server.process_batch(&mut model, &[(0, &calm), (1, &calm)]);
        }

        // NaN-poison stream 0's bank: its next serving entropy diverges.
        for st in server.streams[0].bank.as_mut().unwrap().states_mut() {
            st.gamma.value.fill(f32::NAN);
        }
        server.process_batch(&mut model, &[(0, &calm), (1, &calm)]);
        let fault = server.stream_fault_stats(0).unwrap();
        assert_eq!(fault.divergence_events, 1);
        assert_eq!(fault.quarantines, 1);
        assert_eq!(fault.recovery_tick, None);
        assert!(server.is_quarantined(0));
        assert_eq!(server.stream_stats(0).rollbacks, 1);

        // The rollback restored the bank: serving is finite again, and the
        // stream rides eval-only until the cooldown expires.
        let base = SelfHealConfig::default().quarantine_base as usize;
        for _ in 0..base {
            let outcomes = server.process_batch(&mut model, &[(0, &calm), (1, &calm)]);
            assert!(outcomes[0].entropy.is_finite(), "rollback must heal");
            assert!(outcomes[0].adapted.is_none(), "quarantine is eval-only");
        }
        assert!(!server.is_quarantined(0));
        let fault = server.stream_fault_stats(0).unwrap();
        assert_eq!(fault.quarantine_ticks, base);
        assert!(fault.recovery_tick.is_some());
        assert_eq!(server.server_stats().quarantine_ticks, base);

        // The healthy stream never noticed.
        assert_eq!(
            server.stream_fault_stats(1).unwrap(),
            StreamFaultStats::default()
        );
        assert_eq!(server.stream_stats(1).rollbacks, 0);
    }

    /// Bank mode: a non-finite bank gradient (divergence the entropy
    /// watchdog cannot see) drops the update, restores the blessed
    /// snapshot, and quarantines the stream.
    #[test]
    fn nonfinite_bank_grad_is_dropped_restored_and_quarantined() {
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 0xFA01);
        let gov = GovernorConfig {
            warmup_frames: 0,
            threshold_ratio: 1e6,
            rollback_ratio: 1e9,
            ..Default::default()
        };
        let server_cfg = ServerConfig::new(LdBnAdaptConfig::paper(1), gov, 2)
            .with_bn_banks()
            .with_self_healing(SelfHealConfig::default());
        let mut server = AdaptServer::new(server_cfg, 2, &mut model);
        let calm = random_frames(&cfg, 1, 77).remove(0);
        server.process_batch(&mut model, &[(0, &calm)]); // settle + bless
        let good = server.stream_bank(0).unwrap().clone();

        let mut bank = server.streams[0].bank.take().unwrap();
        for st in bank.states_mut() {
            st.gamma.grad.fill(f32::NAN);
        }
        let mut banks = vec![bank];
        server.step_banks(&[(0, &calm)], &mut banks, &[true]);
        let bank = banks.pop().unwrap();
        assert_eq!(
            bank.affine_l2_distance(&good),
            0.0,
            "poisoned update must be dropped, bank restored"
        );
        assert!(
            bank.states()
                .iter()
                .all(|s| s.gamma.grad.as_slice().iter().all(|&v| v == 0.0)),
            "grads zeroed for the next tick"
        );
        server.streams[0].bank = Some(bank);
        assert!(server.is_quarantined(0));
        assert_eq!(server.stream_fault_stats(0).unwrap().divergence_events, 1);
        assert_eq!(server.stream_stats(0).rollbacks, 1);
    }

    /// The migration primitive's round-trip contract: detach→attach on the
    /// same server is bitwise invisible — banks, good banks, momentum,
    /// reference band, and telemetry all continue exactly as if the stream
    /// was never detached.
    #[test]
    fn detach_attach_roundtrip_is_bitwise_invisible() {
        let cfg = UfldConfig::tiny(2);
        let k = 3;
        let gov = GovernorConfig {
            warmup_frames: 100, // always adapt: momentum and banks move every tick
            ..Default::default()
        };
        let mk = || {
            let mut model = UfldModel::new(&cfg, 0xF1EE7);
            let server_cfg =
                ServerConfig::new(LdBnAdaptConfig::paper(1).with_lr(0.02), gov, k).with_bn_banks();
            let server = AdaptServer::new(server_cfg, k, &mut model);
            let set = StreamSet::drifting(Benchmark::MoLane, frame_spec_for(&cfg), k, 12, 11);
            (model, server, set)
        };
        let (mut model_a, mut srv_a, mut set_a) = mk();
        let (mut model_b, mut srv_b, mut set_b) = mk();

        srv_a.serve(&mut model_a, &mut set_a, 4);
        srv_b.serve(&mut model_b, &mut set_b, 4);

        // Round-trip stream 1 on server B between ticks.
        let snap = srv_b.detach_stream(1, 41);
        assert_eq!(snap.cam_tag(), 41);
        // The slot was reset to pristine while detached.
        assert_eq!(
            srv_b.bank_telemetry(1).expect("bank mode").l2_from_init,
            0.0,
            "detached slot must be pristine"
        );
        assert_eq!(srv_b.stream_stats(1), GovernorStats::default());
        // The wire bytes are self-describing: camera tag + blessed tick.
        let (_, meta) = BnBank::from_bytes_tagged(snap.bank_bytes()).expect("tagged bank");
        let meta = meta.expect("v2 metadata present");
        assert_eq!(meta.cam, 41);
        assert_eq!(
            meta.blessed_tick,
            snap.last_bless_tick().map(|t| t as u64),
            "metadata blessed tick mirrors the snapshot"
        );
        srv_b.attach_stream(1, snap);

        // Both servers continue; the round-trip must not perturb ANY stream.
        srv_a.serve(&mut model_a, &mut set_a, 4);
        srv_b.serve(&mut model_b, &mut set_b, 4);

        assert!(
            srv_a.server_stats().adapt_steps > 0,
            "workload never adapted — test is vacuous"
        );
        for s in 0..k {
            let a = srv_a.detach_stream(s, s as u64);
            let b = srv_b.detach_stream(s, s as u64);
            assert_eq!(a.bank_bytes(), b.bank_bytes(), "stream {s} bank bytes");
            assert_eq!(
                a.good_bank_bytes(),
                b.good_bank_bytes(),
                "stream {s} good-bank bytes"
            );
            assert_eq!(a.stats(), b.stats(), "stream {s} stats");
            assert_eq!(
                a.reference_entropy.map(f32::to_bits),
                b.reference_entropy.map(f32::to_bits),
                "stream {s} reference band"
            );
            assert_eq!(a.bank_swaps, b.bank_swaps, "stream {s} bank swaps");
            assert_eq!(a.last_bless_tick, b.last_bless_tick, "stream {s} blessing");
            assert_eq!(a.velocities.len(), b.velocities.len());
            for (i, ((ag, ab), (bg, bb))) in a.velocities.iter().zip(&b.velocities).enumerate() {
                let bits = |t: &Option<Tensor>| {
                    t.as_ref()
                        .map(|t| t.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>())
                };
                assert_eq!(bits(ag), bits(bg), "stream {s} layer {i} γ momentum");
                assert_eq!(bits(ab), bits(bb), "stream {s} layer {i} β momentum");
            }
        }
    }

    #[test]
    #[should_panic(expected = "requires bank mode")]
    fn detach_without_banks_is_rejected() {
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 0xD0);
        let server_cfg = ServerConfig::new(LdBnAdaptConfig::paper(1), GovernorConfig::default(), 2);
        let mut server = AdaptServer::new(server_cfg, 2, &mut model);
        server.detach_stream(0, 0);
    }

    #[test]
    #[should_panic(expected = "does not match this server's model")]
    fn attach_rejects_foreign_bank_structure() {
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 0xD1);
        let server_cfg = ServerConfig::new(LdBnAdaptConfig::paper(1), GovernorConfig::default(), 2)
            .with_bn_banks();
        let mut server = AdaptServer::new(server_cfg, 2, &mut model);
        let mut snap = server.detach_stream(0, 0);
        // A bank from a *different* model family must be rejected.
        let foreign = BnBank::new(vec![ld_nn::BnState::new("alien", 4)]);
        snap.bank_bytes = foreign.to_bytes_tagged(&BankMeta::default());
        snap.good_bank_bytes = snap.bank_bytes.clone();
        snap.velocities = vec![(None, None)];
        server.attach_stream(0, snap);
    }
}
