//! The **multi-stream adaptation server**: N camera streams, one model,
//! one entropy-governed adaptation loop.
//!
//! The paper deploys LD-BN-ADAPT for a single camera; this module batches
//! several logical camera streams (e.g. a [`ld_carlane::StreamSet`], each
//! stream on its own drift schedule) through one shared UFLD model so the
//! batch-parallel dense kernels run at useful occupancy and the adaptation
//! backward is paid once per tick instead of once per stream.
//!
//! # The mux/demux contract
//!
//! Each [`AdaptServer::process_batch`] call takes at most one frame per
//! stream, packs them into a single NCHW batch, runs **one** batched
//! forward, and demultiplexes per-stream statistics back out:
//!
//! * **Shared across streams** — the model weights, the BN statistics seen
//!   by the forward (under [`ld_nn::BnStatsPolicy::Batch`] the batch
//!   statistics mix all admitted streams: every camera sees the same
//!   normalisation, which is what lets one backward serve all of them), the
//!   SGD optimizer state, and the known-good BN snapshot used for safety
//!   rollback.
//! * **Per-stream** — the entropy reference band (each stream's notion of
//!   "confident" tracks *its* conditions), warm-up progress, and the
//!   duty-cycle telemetry ([`GovernorStats`]): a stream driving into a
//!   tunnel adapts while a stream in steady daylight skips, even inside the
//!   same tick.
//!
//! The adaptation step reuses the tick's forward activations: the entropy
//! gradient is masked to the triggered streams (renormalised to their
//! count) and backpropagated once. A triggered frame therefore costs one
//! forward + a shared slice of one backward (plus an optional telemetry
//! forward per tick), where the pre-refactor single-stream loop paid three
//! forwards + one backward per frame — batching wins even before
//! core-count parallelism enters, and `BENCH_server.json` tracks the
//! margin against the stock [`crate::AdaptGovernor`] API.
//!
//! # Deadline-aware admission
//!
//! With an [`AdmissionGate`] configured, [`AdaptServer::serve`] asks the
//! Orin cost model how many offered frames fit the frame budget
//! (`cost(batch) ≤ deadline`, [`ld_orin::admit_batch`]): surplus frames
//! defer to the next tick and the adapt step is shed first when the budget
//! is tight — frames are hard real-time, adaptation is a quality
//! refinement.
//!
//! The single-camera API is preserved exactly: [`crate::AdaptGovernor`] is
//! now a thin wrapper over a one-stream server and its behaviour (trigger
//! maths, rollback, telemetry) is unchanged.
//!
//! # The int8 inference fast path
//!
//! With [`ServerConfig::with_quantized_inference`], serving runs on an
//! [`ld_quant::QuantUfldModel`] snapshot of the shared f32 model: every
//! admitted frame's logits/entropy come from the quantized forward (~4×
//! arithmetic density), and only **triggered** streams pay f32 — one exact
//! forward over the triggered sub-batch to populate the backward's
//! activation caches, then the shared entropy-descent step as before. The
//! snapshot is dirty-flagged on every parameter movement (adaptation step
//! or rollback) and lazily re-synchronised before the next quantized tick —
//! an O(channels) epilogue re-fold, since BN-only adaptation never touches
//! the integer weights ([`ld_quant::QuantUfldModel::refresh_affine`]).
//! Pair the fast path with an [`AdmissionGate::with_precision`]
//! ([`Precision::Int8`]) gate so the deadline query credits the cheaper
//! inference ticks and admits more streams per tick.
//!
//! # Measured-latency admission feedback
//!
//! The gate's roofline predictions carry model error and host jitter. With
//! [`ServerConfig::with_latency_feedback`], [`AdaptServer::serve`] measures
//! each tick's actual wall-clock, maintains an EWMA of
//! `actual / predicted`, and feeds it to [`ld_orin::admit_batch_with`] as a
//! cost-scale on the next tick's query — a slow host shrinks admissions
//! before deadlines slip, a fast host grows them before capacity idles.

use crate::bn_adapt::{AdaptStep, FrameOutcome, LdBnAdaptConfig};
use crate::governor::{GovernorConfig, GovernorStats};
use ld_carlane::{LabeledFrame, StreamSet};
use ld_nn::{loss, Layer, Mode, ParamFilter, Sgd};
use ld_orin::{admit_batch_with, AdaptCostModel, BatchAdmission, Deadline, PowerMode, Precision};
use ld_quant::{QuantUfldModel, QuantizeModel};
use ld_tensor::Tensor;
use ld_ufld::{decode_batch, score_image, AccuracyReport, UfldModel};
use std::collections::VecDeque;
use std::time::Instant;

/// Copies the current BN parameter values (name → value).
pub(crate) fn snapshot_bn(model: &mut UfldModel) -> Vec<(String, Tensor)> {
    let mut out = Vec::new();
    model.visit_params(&mut |p| {
        if p.kind.is_bn() {
            out.push((p.name.clone(), p.value.clone()));
        }
    });
    out
}

/// Restores BN parameter values captured by [`snapshot_bn`].
pub(crate) fn restore_bn(model: &mut UfldModel, state: &[(String, Tensor)]) {
    let mut i = 0;
    model.visit_params(&mut |p| {
        if p.kind.is_bn() {
            debug_assert_eq!(p.name, state[i].0);
            p.value = state[i].1.clone();
            i += 1;
        }
    });
}

/// Per-stream governor state — everything that must NOT be shared when
/// several cameras ride one model.
#[derive(Debug, Clone, Default)]
struct StreamState {
    /// EMA over this stream's accepted-confident frame entropies.
    reference_entropy: Option<f32>,
    /// This stream's duty-cycle telemetry.
    stats: GovernorStats,
}

/// Deadline gate: the Orin cost model + power mode + deadline the admission
/// query runs against.
#[derive(Debug, Clone)]
pub struct AdmissionGate {
    cost: AdaptCostModel,
    mode: PowerMode,
    deadline: Deadline,
    infer: Precision,
}

impl AdmissionGate {
    /// Builds a gate from a cost model (hand-calibrated or refreshed from
    /// `BENCH_gemm.json` via [`ld_orin::Roofline::agx_orin_calibrated`]).
    /// Inference is costed at f32; see [`AdmissionGate::with_precision`].
    pub fn new(cost: AdaptCostModel, mode: PowerMode, deadline: Deadline) -> Self {
        AdmissionGate {
            cost,
            mode,
            deadline,
            infer: Precision::Fp32,
        }
    }

    /// Costs the inference forward at `infer` (builder style) — pair
    /// [`Precision::Int8`] with [`ServerConfig::with_quantized_inference`]
    /// so the gate credits the quantized ticks.
    pub fn with_precision(mut self, infer: Precision) -> Self {
        self.infer = infer;
        self
    }

    /// The batch-aware deadline query (see [`ld_orin::admit_batch`]).
    pub fn admit(&self, offered: usize) -> BatchAdmission {
        self.admit_scaled(offered, 1.0)
    }

    /// [`AdmissionGate::admit`] with a measured-latency cost-scale applied
    /// to every prediction (see [`ld_orin::admit_batch_with`]).
    pub fn admit_scaled(&self, offered: usize, cost_scale: f64) -> BatchAdmission {
        admit_batch_with(
            &self.cost,
            self.mode,
            self.deadline.budget_ms,
            offered,
            self.infer,
            cost_scale,
        )
    }

    /// The configured inference-costing precision.
    pub fn precision(&self) -> Precision {
        self.infer
    }

    /// Uncorrected predicted latency of a tick that served `batch` frames,
    /// of which `adapted` triggered the f32 adaptation step, plus an
    /// optional `remeasured`-frame f32 telemetry forward
    /// ([`ServerConfig::measure_entropy_after`]) — the denominator of the
    /// measured-latency feedback sample. Predicting the work the tick
    /// *actually did* matters: pricing an inference-only (or
    /// sub-batch-adapting quantized) tick at the all-triggered admission
    /// estimate biases samples low, and omitting the telemetry forward
    /// biases adapting ticks high; either way the "corrected" gate drifts
    /// off the true host ratio.
    pub fn predict_ms(&self, batch: usize, adapted: usize, remeasured: usize) -> f64 {
        let mut ms = self
            .cost
            .mixed_tick_at(self.mode, batch, adapted, self.infer)
            .total_ms();
        if remeasured > 0 {
            ms += self.cost.forward_only_ms(self.mode, remeasured);
        }
        ms
    }
}

/// Configuration of the multi-stream server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The adaptation engine settings (learning rate, momentum, BN policy,
    /// parameter filter). `batch_size` must be 1: the server triggers per
    /// frame and forms its own batches from concurrently-admitted streams.
    pub adapt: LdBnAdaptConfig,
    /// Per-stream trigger policy.
    pub governor: GovernorConfig,
    /// Hard cap on frames per tick (the packing buffer / scratch budget).
    pub max_batch: usize,
    /// Optional deadline gate consulted by [`AdaptServer::serve`].
    pub admission: Option<AdmissionGate>,
    /// Whether adaptation steps re-run the forward to report
    /// `entropy_after` ([`AdaptStep`] telemetry). The single-stream wrapper
    /// keeps it on for parity with [`crate::LdBnAdapter`]; throughput-bound
    /// servers turn it off and save a forward per adapted tick.
    pub measure_entropy_after: bool,
    /// Serve confident streams from an int8 [`QuantUfldModel`] snapshot of
    /// the shared model (see the module docs). Requires
    /// [`ld_nn::ParamFilter::BnOnly`] adaptation — the snapshot re-folds BN
    /// movement without requantizing weights.
    pub quantized_inference: bool,
    /// Blend the EWMA of measured tick wall-clock over predicted latency
    /// into the admission query (no effect without an [`AdmissionGate`]).
    pub latency_feedback: bool,
}

impl ServerConfig {
    /// Server configuration with no admission gate and full telemetry.
    pub fn new(adapt: LdBnAdaptConfig, governor: GovernorConfig, max_batch: usize) -> Self {
        ServerConfig {
            adapt,
            governor,
            max_batch,
            admission: None,
            measure_entropy_after: true,
            quantized_inference: false,
            latency_feedback: false,
        }
    }

    /// Attaches a deadline gate (builder style).
    pub fn with_admission(mut self, gate: AdmissionGate) -> Self {
        self.admission = Some(gate);
        self
    }

    /// Disables the post-step entropy telemetry forward (builder style).
    pub fn without_step_telemetry(mut self) -> Self {
        self.measure_entropy_after = false;
        self
    }

    /// Serves confident streams from the int8 snapshot (builder style).
    pub fn with_quantized_inference(mut self) -> Self {
        self.quantized_inference = true;
        self
    }

    /// Closes the admission loop on measured tick latency (builder style).
    pub fn with_latency_feedback(mut self) -> Self {
        self.latency_feedback = true;
        self
    }
}

/// Whole-server telemetry (per-stream counters live in [`GovernorStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerStats {
    /// Batched ticks processed.
    pub ticks: usize,
    /// Frames processed across all streams.
    pub frames: usize,
    /// Shared adaptation steps taken.
    pub adapt_steps: usize,
    /// Ticks where triggered streams wanted adaptation but the admission
    /// verdict shed it (deadline pressure).
    pub shed_adapt_ticks: usize,
    /// Frame-deferrals: offered frames pushed to a later tick because the
    /// admitted batch was smaller than the offer.
    pub deferred_frames: usize,
    /// Ticks on which a poisoned-BN rollback fired.
    pub rollback_ticks: usize,
}

/// Per-stream serving outcome of [`AdaptServer::serve`].
#[derive(Debug, Clone, Default)]
pub struct StreamReport {
    /// Trigger/duty telemetry.
    pub stats: GovernorStats,
    /// Decoded-lane accuracy against the stream's labels.
    pub report: AccuracyReport,
    /// Frames of this stream actually served.
    pub frames: usize,
}

/// Aggregate result of a serving run.
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// One entry per stream.
    pub per_stream: Vec<StreamReport>,
    /// Whole-server counters.
    pub server: ServerStats,
}

/// The multi-stream adaptation server (see the module docs for the
/// mux/demux contract).
///
/// # Example
///
/// ```
/// use ld_adapt::{AdaptServer, GovernorConfig, LdBnAdaptConfig, ServerConfig};
/// use ld_ufld::{UfldConfig, UfldModel};
/// use ld_tensor::Tensor;
///
/// let cfg = UfldConfig::tiny(2);
/// let mut model = UfldModel::new(&cfg, 3);
/// let server_cfg = ServerConfig::new(
///     LdBnAdaptConfig::paper(1),
///     GovernorConfig::default(),
///     2,
/// );
/// let mut server = AdaptServer::new(server_cfg, 2, &mut model);
/// let f0 = Tensor::zeros(&[3, cfg.input_height, cfg.input_width]);
/// let f1 = Tensor::zeros(&[3, cfg.input_height, cfg.input_width]);
/// let outcomes = server.process_batch(&mut model, &[(0, &f0), (1, &f1)]);
/// assert_eq!(outcomes.len(), 2);
/// ```
#[derive(Debug)]
pub struct AdaptServer {
    cfg: ServerConfig,
    /// Shared optimizer (momentum state spans all streams' updates).
    opt: Sgd,
    /// Per-stream governor state.
    streams: Vec<StreamState>,
    /// Shared last-known-good BN snapshot for safety rollback.
    good_bn_state: Vec<(String, Tensor)>,
    /// The int8 serving snapshot (lazily built on the first quantized
    /// tick, which doubles as its calibration batch).
    quant: Option<QuantReplica>,
    /// EWMA of measured-over-predicted tick latency (1.0 = roofline
    /// trusted; fed back into admission when latency feedback is on).
    latency_ratio: f64,
    stats: ServerStats,
}

/// The quantized serving snapshot plus its staleness flag.
struct QuantReplica {
    model: QuantUfldModel,
    /// Set whenever the f32 parameters move (adaptation step, rollback);
    /// cleared by the lazy epilogue re-fold before the next quantized tick.
    dirty: bool,
}

impl std::fmt::Debug for QuantReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantReplica")
            .field("dirty", &self.dirty)
            .finish_non_exhaustive()
    }
}

/// Splits one tick's batched logits back into per-frame [`FrameOutcome`]s
/// (shared by the f32 and quantized paths).
fn assemble_outcomes(
    logits: &Tensor,
    entropies: &[f32],
    triggered: &[bool],
    do_adapt: bool,
    step_before: &[f32],
    step_after: &[f32],
) -> Vec<FrameOutcome> {
    let ldims = logits.shape_dims();
    let per_frame_dims = [1, ldims[1], ldims[2], ldims[3]];
    (0..ldims[0])
        .map(|i| {
            let frame_logits = Tensor::from_vec(logits.image(i).to_vec(), &per_frame_dims);
            let adapted = (triggered[i] && do_adapt).then_some(AdaptStep {
                entropy_before: step_before[i],
                entropy_after: step_after[i],
            });
            FrameOutcome {
                logits: frame_logits,
                entropy: entropies[i],
                adapted,
            }
        })
        .collect()
}

/// Momentum of the measured-latency EWMA (per served tick).
const LATENCY_EWMA_MOMENTUM: f64 = 0.2;
/// Clamp on each tick's measured/predicted ratio sample (spurious stalls
/// must not poison the correction).
const LATENCY_RATIO_CLAMP: (f64, f64) = (0.05, 20.0);

impl AdaptServer {
    /// Creates the server and configures `model` for deployment-time
    /// adaptation (BN policy + trainability filter), exactly as
    /// [`crate::LdBnAdapter::new`] does for the single-camera loop.
    ///
    /// # Panics
    ///
    /// Panics if `n_streams == 0`, `max_batch == 0`, or
    /// `cfg.adapt.batch_size != 1` (the server forms its own batches from
    /// concurrent streams; a frame-accumulation batch size would double-
    /// batch).
    pub fn new(cfg: ServerConfig, n_streams: usize, model: &mut UfldModel) -> Self {
        assert!(n_streams > 0, "AdaptServer: zero streams");
        assert!(cfg.max_batch > 0, "AdaptServer: zero max batch");
        assert_eq!(
            cfg.adapt.batch_size, 1,
            "AdaptServer requires adapt batch size 1 (the tick batch is formed from streams)"
        );
        assert!(
            !cfg.quantized_inference || cfg.adapt.filter == ParamFilter::BnOnly,
            "AdaptServer: quantized inference requires BnOnly adaptation \
             (the int8 snapshot re-folds BN movement without requantizing weights)"
        );
        if let Some(gate) = &cfg.admission {
            let expect = if cfg.quantized_inference {
                Precision::Int8
            } else {
                Precision::Fp32
            };
            assert_eq!(
                gate.precision(),
                expect,
                "AdaptServer: the admission gate must cost inference at the \
                 precision the server actually serves ({expect:?} here) — a \
                 mismatched gate admits batches priced for the wrong forward"
            );
        }
        model.set_bn_policy(cfg.adapt.stats_policy);
        model.apply_filter(cfg.adapt.filter);
        let opt = Sgd::new(cfg.adapt.lr).momentum(cfg.adapt.momentum);
        let good_bn_state = snapshot_bn(model);
        AdaptServer {
            cfg,
            opt,
            streams: vec![StreamState::default(); n_streams],
            good_bn_state,
            quant: None,
            latency_ratio: 1.0,
            stats: ServerStats::default(),
        }
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Number of streams.
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    /// Whole-server counters.
    pub fn server_stats(&self) -> ServerStats {
        self.stats
    }

    /// Telemetry of one stream.
    ///
    /// # Panics
    ///
    /// Panics if `stream` is out of range.
    pub fn stream_stats(&self, stream: usize) -> GovernorStats {
        self.streams[stream].stats
    }

    /// Current entropy reference of one stream (None before its first
    /// frame).
    ///
    /// # Panics
    ///
    /// Panics if `stream` is out of range.
    pub fn reference_entropy(&self, stream: usize) -> Option<f32> {
        self.streams[stream].reference_entropy
    }

    /// Summed telemetry across streams.
    pub fn total_stats(&self) -> GovernorStats {
        let mut total = GovernorStats::default();
        for s in &self.streams {
            total.frames += s.stats.frames;
            total.adapted_frames += s.stats.adapted_frames;
            total.skipped_frames += s.stats.skipped_frames;
            total.rollbacks += s.stats.rollbacks;
        }
        total
    }

    /// Processes one tick: at most one `(3, H, W)` frame per distinct
    /// stream, one batched forward, per-stream demux, and (when any stream
    /// triggers) one shared adaptation step. Outcomes are returned in input
    /// order; each [`FrameOutcome`] carries that frame's own logits and
    /// entropy.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch, more frames than `max_batch`, an unknown
    /// or duplicated stream id, or a frame-shape mismatch.
    pub fn process_batch(
        &mut self,
        model: &mut UfldModel,
        frames: &[(usize, &Tensor)],
    ) -> Vec<FrameOutcome> {
        self.process_batch_gated(model, frames, true)
    }

    /// [`AdaptServer::process_batch`] with the admission verdict applied:
    /// when `allow_adapt` is false the adapt step is shed (triggered frames
    /// count as skipped and the shed is tallied in [`ServerStats`]).
    fn process_batch_gated(
        &mut self,
        model: &mut UfldModel,
        frames: &[(usize, &Tensor)],
        allow_adapt: bool,
    ) -> Vec<FrameOutcome> {
        self.validate_batch(frames);
        if self.cfg.quantized_inference {
            return self.process_batch_quant(model, frames, allow_adapt);
        }
        let k = frames.len();
        let images: Vec<&Tensor> = frames.iter().map(|&(_, t)| t).collect();

        // Mux: one batched forward serves every stream's inference.
        let logits = model.forward_frames(&images, Mode::Eval);
        let entropies = loss::entropy_per_image(&logits);

        // Demux: per-stream trigger / rollback decisions against each
        // stream's own reference band.
        let (triggered, any_rollback) = self.decide_triggers(frames, &entropies);
        if any_rollback {
            restore_bn(model, &self.good_bn_state);
            self.stats.rollback_ticks += 1;
        }

        let t = triggered.iter().filter(|&&x| x).count();
        let do_adapt = allow_adapt && t > 0;
        if !allow_adapt && t > 0 {
            self.stats.shed_adapt_ticks += 1;
        }

        // One shared adaptation step over the triggered sub-batch: the
        // entropy gradient of the batch forward, masked to triggered
        // samples and renormalised to their count, backpropagates through
        // the activations already in the layer caches — no extra forward.
        let mut step_before = vec![f32::NAN; k];
        let mut step_after = vec![f32::NAN; k];
        // On a mixed tick (some streams confident, some triggered) the
        // confident streams' entropies were measured on the *pre-update*
        // parameters — those are the values their confidence blesses as
        // known-good, so capture them before the shared step mutates the
        // model (blessing the post-update state would let a destructive
        // update poison the rollback snapshot itself).
        let pre_step_bn = (do_adapt && t < k).then(|| snapshot_bn(model));
        if do_adapt {
            let lo = if any_rollback {
                // The cached activations came from the poisoned parameters;
                // refresh them against the restored model.
                let refreshed = model.forward_frames(&images, Mode::Eval);
                step_before.copy_from_slice(&loss::entropy_per_image(&refreshed));
                loss::entropy(&refreshed)
            } else {
                step_before.copy_from_slice(&entropies);
                loss::entropy(&logits)
            };
            let mut grad = lo.grad;
            if t < k {
                for (i, &hit) in triggered.iter().enumerate() {
                    if !hit {
                        grad.image_mut(i).fill(0.0);
                    }
                }
                grad.scale(k as f32 / t as f32);
            }
            model.zero_grad();
            model.backward(&grad);
            model.visit_params(&mut |p| self.opt.update(p));
            self.stats.adapt_steps += 1;
            if self.cfg.measure_entropy_after {
                let after_logits = model.forward_frames(&images, Mode::Eval);
                let after = loss::entropy_per_image(&after_logits);
                step_after[..k].copy_from_slice(&after[..k]);
            }
        }

        self.finish_tick(model, frames, &entropies, &triggered, do_adapt, pre_step_bn);
        assemble_outcomes(
            &logits,
            &entropies,
            &triggered,
            do_adapt,
            &step_before,
            &step_after,
        )
    }

    /// The per-stream trigger / rollback demux shared by the f32 and
    /// quantized ticks: folds each frame into its stream's frame counter
    /// and decides, against that stream's reference band, whether it
    /// triggers adaptation and whether the shared model must roll back.
    fn decide_triggers(
        &mut self,
        frames: &[(usize, &Tensor)],
        entropies: &[f32],
    ) -> (Vec<bool>, bool) {
        let mut triggered = vec![false; frames.len()];
        let mut any_rollback = false;
        for (i, &(sid, _)) in frames.iter().enumerate() {
            let h = entropies[i];
            let st = &mut self.streams[sid];
            st.stats.frames += 1;
            let warmup = st.stats.frames <= self.cfg.governor.warmup_frames;
            let reference = st.reference_entropy.unwrap_or(h);
            if !warmup && h > self.cfg.governor.rollback_ratio * reference {
                st.stats.rollbacks += 1;
                any_rollback = true;
            }
            triggered[i] = warmup || h > self.cfg.governor.threshold_ratio * reference;
        }
        (triggered, any_rollback)
    }

    /// The per-stream bookkeeping shared by the f32 and quantized ticks:
    /// confident frames fold into their stream's reference band, any
    /// confident frame blesses the (shared) BN state as known-good, and the
    /// whole-server tick counters advance.
    fn finish_tick(
        &mut self,
        model: &mut UfldModel,
        frames: &[(usize, &Tensor)],
        entropies: &[f32],
        triggered: &[bool],
        do_adapt: bool,
        pre_step_bn: Option<Vec<(String, Tensor)>>,
    ) {
        let mut any_skip = false;
        for (i, &(sid, _)) in frames.iter().enumerate() {
            let h = entropies[i];
            let st = &mut self.streams[sid];
            if triggered[i] {
                if do_adapt {
                    st.stats.adapted_frames += 1;
                } else {
                    st.stats.skipped_frames += 1; // shed by admission
                }
            } else {
                st.stats.skipped_frames += 1;
                let m = self.cfg.governor.reference_momentum;
                let reference = st.reference_entropy.unwrap_or(h);
                st.reference_entropy = Some((1.0 - m) * reference + m * h);
                any_skip = true;
            }
            if st.reference_entropy.is_none() {
                st.reference_entropy = Some(h);
            }
        }
        if any_skip {
            // Bless the state the confident streams actually ran on: the
            // pre-step snapshot when this tick also adapted, the current
            // parameters otherwise.
            self.good_bn_state = pre_step_bn.unwrap_or_else(|| snapshot_bn(model));
        }
        self.stats.ticks += 1;
        self.stats.frames += frames.len();
    }

    /// Shared shape/id validation of one tick's frames.
    fn validate_batch(&self, frames: &[(usize, &Tensor)]) {
        assert!(!frames.is_empty(), "process_batch: empty batch");
        assert!(
            frames.len() <= self.cfg.max_batch,
            "process_batch: {} frames exceed max batch {}",
            frames.len(),
            self.cfg.max_batch
        );
        for (i, (sid, _)) in frames.iter().enumerate() {
            assert!(
                *sid < self.streams.len(),
                "process_batch: unknown stream {sid}"
            );
            assert!(
                !frames[..i].iter().any(|(prev, _)| prev == sid),
                "process_batch: duplicate stream {sid}"
            );
        }
    }

    /// The int8 fast-path tick (see the module docs): serving logits and
    /// trigger entropies come from the quantized snapshot; only the
    /// triggered sub-batch pays an f32 forward (activation caches for the
    /// shared backward). Trigger/rollback/blessing bookkeeping mirrors the
    /// f32 path per stream.
    fn process_batch_quant(
        &mut self,
        model: &mut UfldModel,
        frames: &[(usize, &Tensor)],
        allow_adapt: bool,
    ) -> Vec<FrameOutcome> {
        let k = frames.len();
        let images: Vec<&Tensor> = frames.iter().map(|&(_, t)| t).collect();

        // Synchronise the snapshot: first quantized tick builds it (the
        // tick's own frames are the calibration batch); later ticks re-fold
        // the epilogues only when the f32 parameters moved.
        let logits = {
            let replica = match &mut self.quant {
                Some(replica) => {
                    if replica.dirty {
                        replica.model.refresh_affine(model);
                        replica.dirty = false;
                    }
                    replica
                }
                slot @ None => slot.insert(QuantReplica {
                    model: model.quantize(&images),
                    dirty: false,
                }),
            };
            // Mux: the quantized forward serves every stream's inference.
            replica.model.forward_frames(&images)
        };
        let entropies = loss::entropy_per_image(&logits);

        // Demux: same trigger / rollback maths as the f32 path, referenced
        // to the quantized entropy band.
        let (triggered, any_rollback) = self.decide_triggers(frames, &entropies);
        if any_rollback {
            restore_bn(model, &self.good_bn_state);
            self.stats.rollback_ticks += 1;
            if let Some(replica) = self.quant.as_mut() {
                replica.dirty = true;
            }
        }

        let t = triggered.iter().filter(|&&x| x).count();
        let do_adapt = allow_adapt && t > 0;
        if !allow_adapt && t > 0 {
            self.stats.shed_adapt_ticks += 1;
        }

        // One f32 forward + shared step over the triggered sub-batch only.
        // The sub-batch is exactly the triggered set, so the entropy
        // gradient needs no masking or renormalisation.
        let mut step_before = vec![f32::NAN; k];
        let mut step_after = vec![f32::NAN; k];
        let pre_step_bn = (do_adapt && t < k).then(|| snapshot_bn(model));
        if do_adapt {
            // One index list maps sub-batch positions back to batch slots
            // for the forward, the telemetry scatter, and the re-measure.
            let sub_idx: Vec<usize> = (0..k).filter(|&i| triggered[i]).collect();
            let sub: Vec<&Tensor> = sub_idx.iter().map(|&i| images[i]).collect();
            let sub_logits = model.forward_frames(&sub, Mode::Eval);
            let sub_entropies = loss::entropy_per_image(&sub_logits);
            for (&i, &h) in sub_idx.iter().zip(&sub_entropies) {
                step_before[i] = h;
            }
            let lo = loss::entropy(&sub_logits);
            model.zero_grad();
            model.backward(&lo.grad);
            model.visit_params(&mut |p| self.opt.update(p));
            self.stats.adapt_steps += 1;
            let replica = self.quant.as_mut().expect("replica exists");
            replica.dirty = true;
            if self.cfg.measure_entropy_after {
                let after_logits = model.forward_frames(&sub, Mode::Eval);
                let after = loss::entropy_per_image(&after_logits);
                for (&i, &h) in sub_idx.iter().zip(&after) {
                    step_after[i] = h;
                }
            }
        }

        self.finish_tick(model, frames, &entropies, &triggered, do_adapt, pre_step_bn);
        assemble_outcomes(
            &logits,
            &entropies,
            &triggered,
            do_adapt,
            &step_before,
            &step_after,
        )
    }

    /// Whether the int8 serving snapshot has been built (quantized servers
    /// build it lazily on their first tick).
    pub fn quant_snapshot_ready(&self) -> bool {
        self.quant.is_some()
    }

    /// Current measured-over-predicted tick-latency EWMA (1.0 until the
    /// first fed-back tick; only updated by [`AdaptServer::serve`] when
    /// latency feedback is enabled and an admission gate is attached).
    pub fn latency_ratio(&self) -> f64 {
        self.latency_ratio
    }

    /// The serving pump: for `ticks` rounds, offer one fresh frame per
    /// stream (plus any deferrals), apply the admission verdict, process
    /// the admitted batch, and score the decoded lanes against each
    /// frame's labels.
    ///
    /// Deferred frames are served before their stream is polled again, so
    /// under sustained oversubscription streams are served round-robin and
    /// none starves.
    ///
    /// # Panics
    ///
    /// Panics if `streams` has a different stream count than the server.
    pub fn serve(
        &mut self,
        model: &mut UfldModel,
        streams: &mut StreamSet,
        ticks: usize,
    ) -> ServeReport {
        assert_eq!(
            streams.num_streams(),
            self.num_streams(),
            "serve: stream-set size mismatch"
        );
        let n = self.num_streams();
        let model_cfg = model.config().clone();
        let mut pending: VecDeque<(usize, LabeledFrame)> = VecDeque::new();
        let mut reports = vec![StreamReport::default(); n];
        for _ in 0..ticks {
            let mut offered_by: Vec<bool> = vec![false; n];
            for &(sid, _) in &pending {
                offered_by[sid] = true;
            }
            for (sid, seen) in offered_by.iter().enumerate() {
                if !seen {
                    pending.push_back((sid, streams.next_frame(sid)));
                }
            }
            let offered = pending.len();
            let cost_scale = if self.cfg.latency_feedback {
                self.latency_ratio
            } else {
                1.0
            };
            let verdict = match &self.cfg.admission {
                Some(gate) => gate.admit_scaled(offered.min(self.cfg.max_batch), cost_scale),
                None => BatchAdmission {
                    batch: offered.min(self.cfg.max_batch),
                    adapt: true,
                    latency_ms: 0.0,
                    fits_deadline: true,
                },
            };
            let take = verdict.batch.clamp(1, offered);
            let batch: Vec<(usize, LabeledFrame)> = pending.drain(..take).collect();
            self.stats.deferred_frames += pending.len();

            let refs: Vec<(usize, &Tensor)> =
                batch.iter().map(|(sid, f)| (*sid, &f.image)).collect();
            let snapshot_ready_before = !self.cfg.quantized_inference || self.quant.is_some();
            let tick_start = Instant::now();
            let outcomes = self.process_batch_gated(model, &refs, verdict.adapt);
            // Close the roofline-trust loop: fold this tick's measured
            // wall-clock over the (unscaled) prediction of the work the
            // tick *actually did* — how many frames adapted, at the gate's
            // serving precision — into the EWMA that corrects the next
            // admission query (pricing a shed, untriggered, or sub-batch
            // adapt step at the all-triggered admission estimate would bias
            // every sample low). The tick that builds the int8 snapshot is
            // excluded: its one-off calibration cost is not steady-state
            // serving and would poison the correction upward.
            if self.cfg.latency_feedback && snapshot_ready_before {
                if let Some(gate) = &self.cfg.admission {
                    let actual_ms = tick_start.elapsed().as_secs_f64() * 1e3;
                    let adapted = outcomes.iter().filter(|o| o.adapted.is_some()).count();
                    // The telemetry re-measure forward spans the whole
                    // batch on the f32 path (it reuses the batched
                    // inference entry) but only the triggered sub-batch on
                    // the quantized path.
                    let remeasured = if adapted > 0 && self.cfg.measure_entropy_after {
                        if self.cfg.quantized_inference {
                            adapted
                        } else {
                            take
                        }
                    } else {
                        0
                    };
                    let predicted_ms = gate.predict_ms(take, adapted, remeasured);
                    let sample = (actual_ms / predicted_ms)
                        .clamp(LATENCY_RATIO_CLAMP.0, LATENCY_RATIO_CLAMP.1);
                    self.latency_ratio = (1.0 - LATENCY_EWMA_MOMENTUM) * self.latency_ratio
                        + LATENCY_EWMA_MOMENTUM * sample;
                }
            }

            for ((sid, frame), outcome) in batch.iter().zip(&outcomes) {
                let lanes = decode_batch(&outcome.logits, &model_cfg);
                let scored = score_image(&lanes[0], &frame.labels, &model_cfg);
                reports[*sid].report.merge(&scored);
                reports[*sid].frames += 1;
            }
        }
        for (sid, report) in reports.iter_mut().enumerate() {
            report.stats = self.streams[sid].stats;
        }
        ServeReport {
            per_stream: reports,
            server: self.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::frame_spec_for;
    use crate::governor::AdaptGovernor;
    use crate::trainer::{pretrain_on_source, TrainConfig};
    use ld_carlane::Benchmark;
    use ld_nn::BnStatsPolicy;
    use ld_tensor::rng::SeededRng;
    use ld_ufld::UfldConfig;

    fn frozen_cfg(gov: GovernorConfig) -> ServerConfig {
        ServerConfig::new(
            LdBnAdaptConfig::paper(1).with_stats_policy(BnStatsPolicy::Running),
            gov,
            8,
        )
    }

    fn random_frames(cfg: &UfldConfig, count: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = SeededRng::new(seed);
        (0..count)
            .map(|_| rng.uniform_tensor(&[3, cfg.input_height, cfg.input_width], 0.0, 1.0))
            .collect()
    }

    /// The stream-isolation acceptance test: with BN statistics frozen
    /// ([`BnStatsPolicy::Running`] keeps samples independent through the
    /// batch) and a never-trigger governor, K interleaved streams through
    /// one batched server yield bitwise-identical [`FrameOutcome`]s to K
    /// fully independent single-stream governors on model clones.
    #[test]
    fn batched_streams_bitwise_match_independent_governors_when_frozen() {
        let cfg = UfldConfig::tiny(2);
        let gov = GovernorConfig {
            warmup_frames: 0,
            threshold_ratio: 1e6,
            rollback_ratio: 1e9,
            ..Default::default()
        };
        let k = 3;
        let rounds = 4;
        let mut shared = UfldModel::new(&cfg, 0xBEEF);
        let mut clones: Vec<UfldModel> = (0..k).map(|_| shared.clone_model()).collect();

        let mut server = AdaptServer::new(frozen_cfg(gov), k, &mut shared);
        let mut governors: Vec<AdaptGovernor> = clones
            .iter_mut()
            .map(|m| {
                AdaptGovernor::new(
                    LdBnAdaptConfig::paper(1).with_stats_policy(BnStatsPolicy::Running),
                    gov,
                    m,
                )
            })
            .collect();

        for round in 0..rounds {
            let frames = random_frames(&cfg, k, 100 + round as u64);
            let batch: Vec<(usize, &Tensor)> = frames.iter().enumerate().collect();
            let outcomes = server.process_batch(&mut shared, &batch);
            for (s, (gov, clone)) in governors.iter_mut().zip(&mut clones).enumerate() {
                let (logits, adapted) = gov.process_frame(clone, &frames[s]);
                assert_eq!(
                    outcomes[s].logits.as_slice(),
                    logits.as_slice(),
                    "round {round} stream {s}: logits diverged"
                );
                assert!(!adapted && outcomes[s].adapted.is_none());
            }
        }
        for (s, gov) in governors.iter().enumerate() {
            assert_eq!(server.stream_stats(s), gov.stats(), "stream {s}");
            assert_eq!(
                server.reference_entropy(s).map(f32::to_bits),
                gov.reference_entropy().map(f32::to_bits),
                "stream {s} reference band"
            );
            assert_eq!(server.stream_stats(s).frames, rounds);
            assert_eq!(server.stream_stats(s).skipped_frames, rounds);
        }
        assert_eq!(server.server_stats().adapt_steps, 0);
    }

    /// Warm-up makes every stream trigger: one shared step per tick, every
    /// stream's duty counted, and the step telemetry populated.
    #[test]
    fn warmup_batches_share_one_adapt_step_per_tick() {
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 0xA1);
        let gov = GovernorConfig {
            warmup_frames: 10,
            ..Default::default()
        };
        let server_cfg = ServerConfig::new(LdBnAdaptConfig::paper(1), gov, 4);
        let mut server = AdaptServer::new(server_cfg, 4, &mut model);
        for round in 0..3 {
            let frames = random_frames(&cfg, 4, 7 + round);
            let batch: Vec<(usize, &Tensor)> = frames.iter().enumerate().collect();
            let outcomes = server.process_batch(&mut model, &batch);
            for out in &outcomes {
                let step = out.adapted.expect("warm-up adapts");
                assert!(step.entropy_before.is_finite());
                assert!(step.entropy_after.is_finite());
            }
        }
        assert_eq!(server.server_stats().adapt_steps, 3, "one step per tick");
        assert_eq!(server.total_stats().adapted_frames, 12);
        for s in 0..4 {
            assert_eq!(server.stream_stats(s).adapted_frames, 3);
        }
    }

    /// Duty-cycle accounting under mixed drift schedules: every stream's
    /// counters stay consistent and per-stream references diverge (each
    /// stream tracks its own conditions).
    #[test]
    fn duty_cycle_accounting_under_mixed_drift() {
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 0x60F);
        let mut train = TrainConfig::smoke();
        train.steps = 60;
        pretrain_on_source(&mut model, Benchmark::MoLane, &train);

        let gov = GovernorConfig {
            warmup_frames: 2,
            threshold_ratio: 1.05,
            ..Default::default()
        };
        let server_cfg = ServerConfig::new(LdBnAdaptConfig::paper(1), gov, 3);
        let mut server = AdaptServer::new(server_cfg, 3, &mut model);
        let mut set = StreamSet::drifting(Benchmark::MoLane, frame_spec_for(&cfg), 3, 12, 11);

        let ticks = 10;
        let report = server.serve(&mut model, &mut set, ticks);

        assert_eq!(report.server.ticks, ticks);
        assert_eq!(report.server.frames, 3 * ticks);
        assert_eq!(report.server.deferred_frames, 0, "no gate, no deferrals");
        for (sid, stream) in report.per_stream.iter().enumerate() {
            let s = stream.stats;
            assert_eq!(s.frames, ticks, "stream {sid} served every tick");
            assert_eq!(
                s.adapted_frames + s.skipped_frames,
                s.frames,
                "stream {sid} accounting"
            );
            assert!(s.duty_cycle() > 0.0 && s.duty_cycle() <= 1.0);
            assert!(stream.report.gt_points > 0, "stream {sid} was scored");
            assert!(server.reference_entropy(sid).is_some());
        }
        // Warm-up adapts at minimum; the total cannot be all-skip.
        assert!(report.server.adapt_steps >= 2);
    }

    /// Oversubscription against a tight deadline: frames defer round-robin
    /// (no stream starves) and the adapt step is shed, never the frames.
    #[test]
    fn admission_sheds_adaptation_and_defers_frames() {
        use ld_ufld::Backbone;
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 0xC4);
        // R-18 paper-scale at 15 W cannot fit the adapt step in 33.3 ms;
        // only a single inference-only frame is admitted per tick.
        let gate = AdmissionGate::new(
            AdaptCostModel::paper_scale(&UfldConfig::paper(Backbone::ResNet18, 4)),
            PowerMode::W15,
            Deadline::FPS30,
        );
        let gov = GovernorConfig {
            warmup_frames: 100, // every frame wants to adapt
            ..Default::default()
        };
        let server_cfg = ServerConfig::new(LdBnAdaptConfig::paper(1), gov, 2).with_admission(gate);
        let mut server = AdaptServer::new(server_cfg, 2, &mut model);
        let mut set = StreamSet::drifting(Benchmark::MoLane, frame_spec_for(&cfg), 2, 8, 3);

        let ticks = 6;
        let report = server.serve(&mut model, &mut set, ticks);

        assert_eq!(report.server.adapt_steps, 0, "adaptation fully shed");
        assert_eq!(report.server.shed_adapt_ticks, ticks);
        assert!(report.server.deferred_frames > 0);
        assert_eq!(report.server.frames, ticks, "one admitted frame per tick");
        // Round-robin deferral serves both streams.
        let f0 = report.per_stream[0].frames;
        let f1 = report.per_stream[1].frames;
        assert_eq!(f0 + f1, ticks);
        assert!(f0 > 0 && f1 > 0, "no stream starves: {f0} vs {f1}");
        // Shed triggers count as skips, keeping the accounting identity.
        for s in &report.per_stream {
            assert_eq!(s.stats.adapted_frames, 0);
            assert_eq!(s.stats.skipped_frames, s.stats.frames);
        }
    }

    /// A mixed tick (one stream confident, one adapting) must bless the
    /// *pre-update* parameters as known-good: the confident stream's
    /// entropy was measured on them, and blessing the post-update state
    /// would let a destructive shared step poison the rollback snapshot.
    #[test]
    fn mixed_tick_blesses_pre_update_bn_state() {
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 0x60F);
        let mut train = TrainConfig::smoke();
        train.steps = 80;
        pretrain_on_source(&mut model, Benchmark::MoLane, &train);

        let gov = GovernorConfig {
            warmup_frames: 0,
            threshold_ratio: 1.02,
            rollback_ratio: 1e9, // keep rollback out of this scenario
            ..Default::default()
        };
        // A large step so the shared update visibly moves the BN params.
        let server_cfg = ServerConfig::new(LdBnAdaptConfig::paper(1).with_lr(0.5), gov, 2);
        let mut server = AdaptServer::new(server_cfg, 2, &mut model);

        let calm = ld_carlane::FrameStream::source(Benchmark::MoLane, frame_spec_for(&cfg), 1, 12)
            .frame(0)
            .image;
        // Tick 1: both streams see the calm frame — warmup 0 means both
        // skip and set their references.
        let outcomes = server.process_batch(&mut model, &[(0, &calm), (1, &calm)]);
        assert!(outcomes.iter().all(|o| o.adapted.is_none()));

        let pre_tick_bn = snapshot_bn(&mut model);
        // Tick 2: stream 0 stays calm (skips), stream 1 sees an
        // out-of-distribution frame (triggers) — a mixed tick.
        let noise =
            SeededRng::new(99).uniform_tensor(&[3, cfg.input_height, cfg.input_width], 0.0, 1.0);
        let outcomes = server.process_batch(&mut model, &[(0, &calm), (1, &noise)]);
        assert!(outcomes[0].adapted.is_none(), "calm stream must skip");
        assert!(outcomes[1].adapted.is_some(), "noise stream must trigger");

        // The update moved the live BN parameters…
        let post_tick_bn = snapshot_bn(&mut model);
        assert!(
            pre_tick_bn
                .iter()
                .zip(&post_tick_bn)
                .any(|((_, a), (_, b))| a.as_slice() != b.as_slice()),
            "large-lr step should move BN params"
        );
        // …but the blessed snapshot is the pre-update state.
        for ((name, good), (_, pre)) in server.good_bn_state.iter().zip(&pre_tick_bn) {
            assert_eq!(
                good.as_slice(),
                pre.as_slice(),
                "{name}: known-good state must be the pre-update values"
            );
        }
    }

    /// Quantized fast path, no triggers: every outcome must come bitwise
    /// from the int8 snapshot (quantized on the first tick's frames), and
    /// the f32 model must never be touched.
    #[test]
    fn quantized_server_serves_confident_streams_from_the_snapshot() {
        use ld_quant::QuantizeModel;
        let cfg = UfldConfig::tiny(2);
        let gov = GovernorConfig {
            warmup_frames: 0,
            threshold_ratio: 1e6,
            rollback_ratio: 1e9,
            ..Default::default()
        };
        let k = 3;
        let mut model = UfldModel::new(&cfg, 0xBEEF);
        let mut reference = model.clone_model();
        let server_cfg = frozen_cfg(gov).with_quantized_inference();
        let mut server = AdaptServer::new(server_cfg, k, &mut model);
        assert!(!server.quant_snapshot_ready());

        let tick1 = random_frames(&cfg, k, 200);
        let batch1: Vec<(usize, &Tensor)> = tick1.iter().enumerate().collect();
        let out1 = server.process_batch(&mut model, &batch1);
        assert!(server.quant_snapshot_ready());

        // An independent snapshot quantized on the same calibration frames
        // must reproduce the server's serving logits exactly.
        let calib: Vec<&Tensor> = tick1.iter().collect();
        let mut qref = reference.quantize(&calib);
        let want1 = qref.forward_frames(&calib);
        for (i, out) in out1.iter().enumerate() {
            assert_eq!(out.logits.as_slice(), want1.image(i), "tick1 frame {i}");
            assert!(out.adapted.is_none(), "never-trigger governor");
        }
        let tick2 = random_frames(&cfg, k, 201);
        let batch2: Vec<(usize, &Tensor)> = tick2.iter().enumerate().collect();
        let out2 = server.process_batch(&mut model, &batch2);
        let refs2: Vec<&Tensor> = tick2.iter().collect();
        let want2 = qref.forward_frames(&refs2);
        for (i, out) in out2.iter().enumerate() {
            assert_eq!(out.logits.as_slice(), want2.image(i), "tick2 frame {i}");
        }
        assert_eq!(server.server_stats().adapt_steps, 0);
    }

    /// Quantized fast path under warm-up (every stream triggers): the f32
    /// adaptation still runs (one shared step per tick over the triggered
    /// sub-batch), the snapshot is dirty-flagged and re-folded, and the
    /// post-refresh serving logits pick up the BN movement.
    #[test]
    fn quantized_server_adapts_triggered_streams_in_f32() {
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 0xA7);
        let gov = GovernorConfig {
            warmup_frames: 10,
            ..Default::default()
        };
        let server_cfg = ServerConfig::new(LdBnAdaptConfig::paper(1).with_lr(0.05), gov, 4)
            .with_quantized_inference();
        let mut server = AdaptServer::new(server_cfg, 4, &mut model);
        let bn_before = snapshot_bn(&mut model);
        let mut last = Vec::new();
        for round in 0..3 {
            let frames = random_frames(&cfg, 4, 50 + round);
            let batch: Vec<(usize, &Tensor)> = frames.iter().enumerate().collect();
            let outcomes = server.process_batch(&mut model, &batch);
            for out in &outcomes {
                let step = out.adapted.expect("warm-up adapts");
                assert!(step.entropy_before.is_finite());
                assert!(step.entropy_after.is_finite());
            }
            last = outcomes;
        }
        assert_eq!(server.server_stats().adapt_steps, 3, "one step per tick");
        assert_eq!(server.total_stats().adapted_frames, 12);
        let bn_after = snapshot_bn(&mut model);
        assert!(
            bn_before
                .iter()
                .zip(&bn_after)
                .any(|((_, a), (_, b))| a.as_slice() != b.as_slice()),
            "adaptation must move the f32 BN parameters"
        );
        assert!(!last.is_empty());
    }

    #[test]
    #[should_panic(expected = "BnOnly")]
    fn quantized_server_requires_bn_only_adaptation() {
        use ld_nn::ParamFilter;
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 3);
        let server_cfg = ServerConfig::new(
            LdBnAdaptConfig::paper(1).with_filter(ParamFilter::ConvOnly),
            GovernorConfig::default(),
            2,
        )
        .with_quantized_inference();
        AdaptServer::new(server_cfg, 2, &mut model);
    }

    /// Measured-latency feedback: the tiny CI model runs orders of
    /// magnitude faster than the paper-scale roofline prediction, so the
    /// EWMA must fall below 1 and the corrected gate must admit more (fewer
    /// deferrals) than the uncorrected one on the same workload.
    #[test]
    fn latency_feedback_grows_admissions_on_a_fast_host() {
        use ld_ufld::Backbone;
        let cfg = UfldConfig::tiny(2);
        let gov = GovernorConfig {
            warmup_frames: 100,
            ..Default::default()
        };
        let gate = || {
            AdmissionGate::new(
                AdaptCostModel::paper_scale(&UfldConfig::paper(Backbone::ResNet18, 4)),
                PowerMode::W15,
                Deadline::FPS30,
            )
        };
        let ticks = 16;
        let run = |feedback: bool| {
            let mut model = UfldModel::new(&cfg, 0xC4);
            let mut server_cfg =
                ServerConfig::new(LdBnAdaptConfig::paper(1), gov, 2).with_admission(gate());
            if feedback {
                server_cfg = server_cfg.with_latency_feedback();
            }
            let mut server = AdaptServer::new(server_cfg, 2, &mut model);
            let mut set = StreamSet::drifting(Benchmark::MoLane, frame_spec_for(&cfg), 2, 8, 3);
            let report = server.serve(&mut model, &mut set, ticks);
            (report.server, server.latency_ratio())
        };
        let (without, ratio_off) = run(false);
        let (with, ratio_on) = run(true);
        assert_eq!(ratio_off, 1.0, "feedback off leaves the EWMA untouched");
        assert!(
            ratio_on < 1.0,
            "a fast host must pull the EWMA down, got {ratio_on}"
        );
        assert!(
            with.deferred_frames < without.deferred_frames,
            "corrected gate must defer less: {} vs {}",
            with.deferred_frames,
            without.deferred_frames
        );
    }

    #[test]
    #[should_panic(expected = "duplicate stream")]
    fn rejects_duplicate_streams_in_one_tick() {
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 1);
        let server_cfg = ServerConfig::new(LdBnAdaptConfig::paper(1), GovernorConfig::default(), 4);
        let mut server = AdaptServer::new(server_cfg, 2, &mut model);
        let f = Tensor::zeros(&[3, cfg.input_height, cfg.input_width]);
        server.process_batch(&mut model, &[(1, &f), (1, &f)]);
    }

    #[test]
    #[should_panic(expected = "batch size 1")]
    fn rejects_frame_accumulation_batch_sizes() {
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 2);
        let server_cfg = ServerConfig::new(LdBnAdaptConfig::paper(2), GovernorConfig::default(), 4);
        AdaptServer::new(server_cfg, 2, &mut model);
    }
}
