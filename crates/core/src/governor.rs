//! An energy-aware extension of LD-BN-ADAPT: **entropy-triggered
//! adaptation**.
//!
//! §IV of the paper frames deployment as a multi-objective problem (power
//! budget × deadline × robustness). The plain algorithm spends a backward
//! pass on *every* frame even when the model is already confident. The
//! [`AdaptGovernor`] adapts only when the prediction entropy of the
//! incoming frame exceeds a reference band — cutting adaptation energy in
//! steady state while reacting immediately when conditions drift (entropy
//! spikes precede accuracy drops, since entropy is exactly the signal the
//! adaptation loss measures).
//!
//! This is an extension beyond the paper (documented as such in DESIGN.md);
//! `ablation_params`/criterion benches quantify the trade-off.

use crate::bn_adapt::LdBnAdaptConfig;
use crate::server::{AdaptServer, ServerConfig};
use ld_tensor::Tensor;
use ld_ufld::UfldModel;

/// Policy of the governor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorConfig {
    /// Adapt when the frame entropy exceeds `threshold_ratio ×` the running
    /// reference entropy (the mean over accepted-confident frames).
    pub threshold_ratio: f32,
    /// EMA momentum of the reference entropy.
    pub reference_momentum: f32,
    /// Always adapt on the first `warmup_frames` frames (builds the
    /// reference and aligns statistics right after deployment).
    pub warmup_frames: usize,
    /// Safety fallback: when a frame's entropy exceeds `rollback_ratio ×`
    /// the reference, the adapted BN parameters are considered poisoned and
    /// rolled back to the last known-good snapshot before adapting again.
    /// Safety-critical deployments cannot let a bad update compound.
    pub rollback_ratio: f32,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            threshold_ratio: 1.05,
            reference_momentum: 0.1,
            warmup_frames: 8,
            rollback_ratio: 3.0,
        }
    }
}

/// Telemetry of a governed run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GovernorStats {
    /// Frames seen.
    pub frames: usize,
    /// Frames on which adaptation ran.
    pub adapted_frames: usize,
    /// Frames skipped (inference only).
    pub skipped_frames: usize,
    /// Safety rollbacks of the BN parameters.
    pub rollbacks: usize,
}

impl GovernorStats {
    /// Fraction of frames that paid for adaptation.
    pub fn duty_cycle(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.adapted_frames as f64 / self.frames as f64
        }
    }
}

/// LD-BN-ADAPT wrapped in an entropy-band trigger with safety rollback.
///
/// Since the multi-stream refactor this is a thin wrapper over a one-stream
/// [`AdaptServer`] (see [`crate::server`] for the shared/per-stream state
/// split); the trigger maths, rollback behaviour and telemetry are
/// unchanged, and the batched path reuses the inference forward's
/// activations for the adaptation backward, so a triggered frame costs one
/// forward less than the historical adapter round-trip.
#[derive(Debug)]
pub struct AdaptGovernor {
    server: AdaptServer,
}

impl AdaptGovernor {
    /// Wraps an adapter configuration (batch size 1 is assumed — the
    /// governor decides per frame).
    ///
    /// # Panics
    ///
    /// Panics if `adapt_cfg.batch_size != 1` (skipping frames with larger
    /// batches would make the batch contents nondeterministic).
    pub fn new(adapt_cfg: LdBnAdaptConfig, gov_cfg: GovernorConfig, model: &mut UfldModel) -> Self {
        assert_eq!(
            adapt_cfg.batch_size, 1,
            "AdaptGovernor requires batch size 1"
        );
        let cfg = ServerConfig::new(adapt_cfg, gov_cfg, 1);
        AdaptGovernor {
            server: AdaptServer::new(cfg, 1, model),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> GovernorStats {
        self.server.stream_stats(0)
    }

    /// Current reference entropy (None before the first frame).
    pub fn reference_entropy(&self) -> Option<f32> {
        self.server.reference_entropy(0)
    }

    /// Processes a frame: always runs inference; runs the adaptation step
    /// only in warm-up or when entropy exceeds the trigger band. Returns
    /// the frame logits and whether adaptation ran.
    pub fn process_frame(&mut self, model: &mut UfldModel, frame: &Tensor) -> (Tensor, bool) {
        let outcome = self
            .server
            .process_batch(model, &[(0, frame)])
            .pop()
            .expect("one frame in, one outcome out");
        (outcome.logits, outcome.adapted.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::frame_spec_for;
    use crate::trainer::{pretrain_on_source, TrainConfig};
    use ld_carlane::{Benchmark, DriftSchedule, DriftingStream, FrameStream};
    use ld_nn::Layer;
    use ld_ufld::UfldConfig;

    fn trained_model() -> (UfldConfig, UfldModel) {
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 0x60F);
        let mut t = TrainConfig::smoke();
        t.steps = 80;
        pretrain_on_source(&mut model, Benchmark::MoLane, &t);
        (cfg, model)
    }

    #[test]
    fn warmup_always_adapts() {
        let (cfg, mut model) = trained_model();
        let mut gov = AdaptGovernor::new(
            LdBnAdaptConfig::paper(1),
            GovernorConfig {
                warmup_frames: 3,
                ..Default::default()
            },
            &mut model,
        );
        let stream = FrameStream::target(Benchmark::MoLane, frame_spec_for(&cfg), 3, 1);
        for f in stream {
            let (_, adapted) = gov.process_frame(&mut model, &f.image);
            assert!(adapted, "warm-up frames must adapt");
        }
        assert_eq!(gov.stats().adapted_frames, 3);
    }

    #[test]
    fn steady_state_skips_confident_frames() {
        let (cfg, mut model) = trained_model();
        let mut gov = AdaptGovernor::new(
            LdBnAdaptConfig::paper(1),
            GovernorConfig {
                warmup_frames: 4,
                threshold_ratio: 1.5,
                ..Default::default()
            },
            &mut model,
        );
        // Stationary source-like stream: after warm-up, entropy stays in
        // band and most frames should be skipped.
        let stream = FrameStream::source(Benchmark::MoLane, frame_spec_for(&cfg), 20, 2);
        for f in stream {
            gov.process_frame(&mut model, &f.image);
        }
        let s = gov.stats();
        assert!(
            s.skipped_frames > 8,
            "expected skips in steady state: {s:?}"
        );
        assert!(s.duty_cycle() < 0.6, "duty cycle {:.2}", s.duty_cycle());
    }

    #[test]
    fn abrupt_change_reactivates_adaptation() {
        // The governor reacts to entropy *spikes* (gradual drift is partly
        // absorbed by the reference band — see module docs). Feed a stable
        // scene until the governor settles into skipping, then an
        // out-of-distribution noise frame: the spike must re-trigger.
        //
        // Pretrained further than the shared helper: the trigger margin is
        // the gap between the settled reference entropy and the spike, and
        // an under-trained model is uniformly unconfident — its reference
        // sits so high that even white noise cannot spike 2% above it.
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 0x60F);
        let mut t = TrainConfig::smoke();
        t.steps = 240;
        pretrain_on_source(&mut model, Benchmark::MoLane, &t);
        let mut gov = AdaptGovernor::new(
            LdBnAdaptConfig::paper(1),
            GovernorConfig {
                warmup_frames: 2,
                threshold_ratio: 1.02,
                ..Default::default()
            },
            &mut model,
        );
        let stream = FrameStream::source(Benchmark::MoLane, frame_spec_for(&cfg), 1, 8);
        let calm = stream.frame(0).image;
        for _ in 0..8 {
            gov.process_frame(&mut model, &calm);
        }
        let settled = gov.stats();
        assert!(
            settled.skipped_frames >= 4,
            "governor never settled: {settled:?}"
        );

        let noise = ld_tensor::rng::SeededRng::new(99).uniform_tensor(
            &[3, cfg.input_height, cfg.input_width],
            0.0,
            1.0,
        );
        let (_, adapted) = gov.process_frame(&mut model, &noise);
        assert!(adapted, "out-of-distribution spike must trigger adaptation");
    }

    #[test]
    fn drifting_stream_keeps_governor_duty_bounded() {
        // Sanity on the realistic path: the governor runs end-to-end on a
        // drifting stream and its duty cycle stays within (0, 1].
        let (cfg, mut model) = trained_model();
        let mut gov = AdaptGovernor::new(
            LdBnAdaptConfig::paper(1),
            GovernorConfig {
                warmup_frames: 4,
                threshold_ratio: 1.05,
                ..Default::default()
            },
            &mut model,
        );
        let spec = frame_spec_for(&cfg);
        let stream = DriftingStream::new(
            Benchmark::MoLane,
            spec,
            DriftSchedule::noon_to_dusk(20),
            20,
            5,
        );
        for i in 0..20 {
            gov.process_frame(&mut model, &stream.frame(i).image);
        }
        let s = gov.stats();
        assert_eq!(s.frames, 20);
        assert_eq!(s.adapted_frames + s.skipped_frames, 20);
        assert!(s.duty_cycle() > 0.0 && s.duty_cycle() <= 1.0);
    }

    #[test]
    fn duty_cycle_math() {
        let s = GovernorStats {
            frames: 10,
            adapted_frames: 3,
            skipped_frames: 7,
            rollbacks: 0,
        };
        assert!((s.duty_cycle() - 0.3).abs() < 1e-12);
        assert_eq!(GovernorStats::default().duty_cycle(), 0.0);
    }

    #[test]
    fn entropy_explosion_triggers_rollback_to_known_good_bn() {
        let (cfg, mut model) = trained_model();
        let mut gov = AdaptGovernor::new(
            LdBnAdaptConfig::paper(1),
            GovernorConfig {
                warmup_frames: 1,
                threshold_ratio: 1.02,
                rollback_ratio: 1.5,
                ..Default::default()
            },
            &mut model,
        );
        // Settle on a calm frame so a known-good snapshot exists.
        let stream = FrameStream::source(Benchmark::MoLane, frame_spec_for(&cfg), 1, 12);
        let calm = stream.frame(0).image;
        for _ in 0..6 {
            gov.process_frame(&mut model, &calm);
        }
        let good: Vec<f32> = {
            let mut v = Vec::new();
            model.visit_params(&mut |p| {
                if p.kind.is_bn() {
                    v.extend_from_slice(p.value.as_slice());
                }
            });
            v
        };

        // Poison the BN parameters directly (simulating a destructive
        // update) — the next calm frame now produces exploded entropy and
        // must trigger a rollback.
        model.visit_params(&mut |p| {
            if p.kind.is_bn() {
                p.value.fill(0.0);
            }
        });
        gov.process_frame(&mut model, &calm);
        assert!(
            gov.stats().rollbacks >= 1,
            "no rollback recorded: {:?}",
            gov.stats()
        );
        // BN parameters must be back at (or adapted one small step from)
        // the known-good values, not the poisoned zeros.
        let mut restored: Vec<f32> = Vec::new();
        model.visit_params(&mut |p| {
            if p.kind.is_bn() {
                restored.extend_from_slice(p.value.as_slice());
            }
        });
        let dist: f32 = good
            .iter()
            .zip(&restored)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(
            dist < 0.2,
            "BN params far from known-good after rollback: {dist}"
        );
        assert!(restored.iter().any(|&v| v != 0.0), "still poisoned");
    }

    #[test]
    #[should_panic(expected = "batch size 1")]
    fn rejects_multi_frame_batches() {
        let (_, mut model) = trained_model();
        AdaptGovernor::new(
            LdBnAdaptConfig::paper(2),
            GovernorConfig::default(),
            &mut model,
        );
    }
}
