//! **LD-BN-ADAPT** — the paper's contribution (§III).
//!
//! After inference on each incoming unlabeled target frame, the deployed
//! UFLD model is adapted in real time:
//!
//! 1. every batch-norm layer *recomputes its normalisation statistics*
//!    `(µ, σ)` from the current unlabeled batch
//!    ([`BnStatsPolicy::Batch`]), and
//! 2. the batch-norm *scale/shift parameters* `(γ, β)` — about 1 % of the
//!    model — are optimised by **a single backpropagation pass** minimising
//!    the Shannon entropy of the model's own predictions.
//!
//! The updated model is then used for the next frame. With `batch_size`
//! of 1/2/4, the update happens after every 1/2/4 frames (the paper's
//! `bs` sweep in Fig. 2). The same engine also runs the paper's §III
//! ablations — adapting convolutional or fully-connected parameters
//! instead — by swapping the [`ParamFilter`].

use ld_nn::{loss, BnStatsPolicy, Layer, Mode, ParamFilter, Sgd};
use ld_tensor::Tensor;
use ld_ufld::UfldModel;

/// Configuration of the online adapter.
#[derive(Debug, Clone, PartialEq)]
pub struct LdBnAdaptConfig {
    /// Frames per adaptation step (paper sweeps 1, 2, 4; 1 is best).
    pub batch_size: usize,
    /// Learning rate of the single entropy-descent step.
    pub lr: f32,
    /// SGD momentum across steps.
    pub momentum: f32,
    /// Backprop passes per adaptation step (the paper uses exactly 1 to
    /// meet the real-time deadline; exposed for the ablation bench).
    pub steps_per_batch: usize,
    /// Which statistics BN layers normalise with during deployment.
    pub stats_policy: BnStatsPolicy,
    /// Which parameter group the optimiser may touch.
    pub filter: ParamFilter,
}

impl LdBnAdaptConfig {
    /// The paper's method with the given adaptation batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn paper(batch_size: usize) -> Self {
        assert!(batch_size > 0, "LdBnAdaptConfig: zero batch size");
        LdBnAdaptConfig {
            batch_size,
            lr: 1e-3,
            momentum: 0.9,
            steps_per_batch: 1,
            stats_policy: BnStatsPolicy::Batch,
            filter: ParamFilter::BnOnly,
        }
    }

    /// The §III ablation: adapt a different parameter group.
    pub fn with_filter(mut self, filter: ParamFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Override the learning rate (builder style).
    pub fn with_lr(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Override the statistics policy (ablation bench).
    pub fn with_stats_policy(mut self, policy: BnStatsPolicy) -> Self {
        self.stats_policy = policy;
        self
    }
}

/// Outcome of processing one frame.
#[derive(Debug, Clone)]
pub struct FrameOutcome {
    /// The model's logits for this frame (computed *before* any update
    /// triggered by this frame, as in the paper: inference first, then
    /// adaptation).
    pub logits: Tensor,
    /// Prediction entropy of this frame.
    pub entropy: f32,
    /// `Some(step)` when this frame completed a batch and triggered an
    /// adaptation step.
    pub adapted: Option<AdaptStep>,
}

/// Telemetry of one adaptation step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptStep {
    /// Entropy of the adaptation batch before the update.
    pub entropy_before: f32,
    /// Entropy of the adaptation batch re-evaluated after the update.
    pub entropy_after: f32,
}

/// The online adaptation engine.
///
/// # Example
///
/// ```
/// use ld_adapt::{LdBnAdapter, LdBnAdaptConfig};
/// use ld_ufld::{UfldConfig, UfldModel};
/// use ld_tensor::Tensor;
///
/// let cfg = UfldConfig::tiny(2);
/// let mut model = UfldModel::new(&cfg, 3);
/// let mut adapter = LdBnAdapter::new(LdBnAdaptConfig::paper(1), &mut model);
/// let frame = Tensor::zeros(&[3, cfg.input_height, cfg.input_width]);
/// let out = adapter.process_frame(&mut model, &frame);
/// assert!(out.adapted.is_some()); // batch size 1 adapts every frame
/// ```
#[derive(Debug)]
pub struct LdBnAdapter {
    cfg: LdBnAdaptConfig,
    opt: Sgd,
    /// Frames collected toward the next adaptation step.
    buffer: Vec<Tensor>,
    steps_taken: usize,
}

impl LdBnAdapter {
    /// Creates the adapter and configures `model` for deployment-time
    /// adaptation (BN policy + trainability filter).
    pub fn new(cfg: LdBnAdaptConfig, model: &mut UfldModel) -> Self {
        assert!(cfg.batch_size > 0, "LdBnAdapter: zero batch size");
        model.set_bn_policy(cfg.stats_policy);
        model.apply_filter(cfg.filter);
        // The adapter discards the input gradient of every backward, so
        // the stem conv's dX computation is pure waste — skip it.
        // Parameter gradients are unaffected.
        model.set_skip_stem_input_grad(true);
        let opt = Sgd::new(cfg.lr).momentum(cfg.momentum);
        LdBnAdapter {
            cfg,
            opt,
            buffer: Vec::new(),
            steps_taken: 0,
        }
    }

    /// The adapter's configuration.
    pub fn config(&self) -> &LdBnAdaptConfig {
        &self.cfg
    }

    /// Number of adaptation steps performed so far.
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// Runs inference on one `(3, H, W)` frame and, when a batch of
    /// `batch_size` unlabeled frames has been collected, performs the
    /// adaptation step. Returns the frame's logits (pre-update prediction).
    ///
    /// # Panics
    ///
    /// Panics if the frame shape does not match the model config.
    pub fn process_frame(&mut self, model: &mut UfldModel, frame: &Tensor) -> FrameOutcome {
        let dims = frame.shape_dims();
        assert_eq!(dims.len(), 3, "process_frame: want a (3, H, W) frame");
        let batch1 = frame.to_shape(&[1, dims[0], dims[1], dims[2]]);

        // Inference with the current model (stats per policy).
        let logits = model.forward(&batch1, Mode::Eval);
        let h = loss::entropy(&logits);

        self.buffer.push(frame.clone());
        let adapted = if self.buffer.len() >= self.cfg.batch_size {
            let step = if self.cfg.batch_size == 1 && self.cfg.steps_per_batch == 1 {
                // Fast path (bs = 1): reuse the inference forward's caches —
                // the entropy gradient backpropagates through the activations
                // just computed, so adaptation costs one backward pass only.
                model.zero_grad();
                model.backward(&h.grad);
                model.visit_params(&mut |p| self.opt.update(p));
                self.steps_taken += 1;
                let after = loss::entropy(&model.forward(&batch1, Mode::Eval)).value;
                AdaptStep {
                    entropy_before: h.value,
                    entropy_after: after,
                }
            } else {
                let refs: Vec<&Tensor> = self.buffer.iter().collect();
                let shaped: Vec<Tensor> = refs
                    .iter()
                    .map(|t| t.to_shape(&[1, dims[0], dims[1], dims[2]]))
                    .collect();
                let shaped_refs: Vec<&Tensor> = shaped.iter().collect();
                let batch = Tensor::cat_batch(&shaped_refs);
                let mut before = f32::NAN;
                for s in 0..self.cfg.steps_per_batch {
                    let out = model.forward(&batch, Mode::Eval);
                    let hb = loss::entropy(&out);
                    if s == 0 {
                        before = hb.value;
                    }
                    model.zero_grad();
                    model.backward(&hb.grad);
                    model.visit_params(&mut |p| self.opt.update(p));
                    self.steps_taken += 1;
                }
                let after = loss::entropy(&model.forward(&batch, Mode::Eval)).value;
                AdaptStep {
                    entropy_before: before,
                    entropy_after: after,
                }
            };
            self.buffer.clear();
            Some(step)
        } else {
            None
        };

        FrameOutcome {
            logits,
            entropy: h.value,
            adapted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_tensor::rng::SeededRng;
    use ld_ufld::UfldConfig;

    fn tiny() -> (UfldConfig, UfldModel) {
        let cfg = UfldConfig::tiny(2);
        let model = UfldModel::new(&cfg, 21);
        (cfg, model)
    }

    fn random_frame(cfg: &UfldConfig, seed: u64) -> Tensor {
        SeededRng::new(seed).uniform_tensor(&[3, cfg.input_height, cfg.input_width], 0.0, 1.0)
    }

    #[test]
    fn batch_size_controls_adaptation_cadence() {
        let (cfg, mut model) = tiny();
        let mut adapter = LdBnAdapter::new(LdBnAdaptConfig::paper(2), &mut model);
        let f0 = random_frame(&cfg, 0);
        let out0 = adapter.process_frame(&mut model, &f0);
        assert!(out0.adapted.is_none());
        let out1 = adapter.process_frame(&mut model, &random_frame(&cfg, 1));
        assert!(out1.adapted.is_some());
        assert_eq!(adapter.steps_taken(), 1);
    }

    #[test]
    fn adaptation_reduces_batch_entropy() {
        let (cfg, mut model) = tiny();
        let mut adapter = LdBnAdapter::new(LdBnAdaptConfig::paper(1).with_lr(5e-2), &mut model);
        // Average over several frames: entropy after the step must drop.
        let mut drops = 0;
        let mut total = 0;
        for i in 0..6 {
            let out = adapter.process_frame(&mut model, &random_frame(&cfg, 100 + i));
            let st = out.adapted.expect("bs=1 adapts each frame");
            if st.entropy_after <= st.entropy_before {
                drops += 1;
            }
            total += 1;
        }
        assert!(
            drops * 2 >= total,
            "entropy dropped on only {drops}/{total} steps"
        );
    }

    #[test]
    fn bn_only_adaptation_never_touches_conv_or_fc_weights() {
        let (cfg, mut model) = tiny();
        // Snapshot all non-BN parameters.
        let mut before = Vec::new();
        model.visit_params(&mut |p| {
            if !p.kind.is_bn() {
                before.push((p.name.clone(), p.value.clone()));
            }
        });
        let mut adapter = LdBnAdapter::new(LdBnAdaptConfig::paper(1), &mut model);
        for i in 0..3 {
            adapter.process_frame(&mut model, &random_frame(&cfg, i));
        }
        let mut idx = 0;
        model.visit_params(&mut |p| {
            if !p.kind.is_bn() {
                assert_eq!(
                    p.value.as_slice(),
                    before[idx].1.as_slice(),
                    "{} changed under BnOnly",
                    p.name
                );
                idx += 1;
            }
        });
        // …and at least one BN parameter must have moved.
        let mut bn_moved = false;
        model.visit_params(&mut |p| {
            if p.kind.is_bn() && p.value.as_slice().iter().any(|&v| v != 0.0 && v != 1.0) {
                bn_moved = true;
            }
        });
        assert!(bn_moved, "no BN parameter changed");
    }

    #[test]
    fn conv_filter_ablation_touches_conv_weights() {
        let (cfg, mut model) = tiny();
        let mut conv_before = Vec::new();
        model.visit_params(&mut |p| {
            if p.kind.is_conv() {
                conv_before.push(p.value.clone());
            }
        });
        let mut adapter = LdBnAdapter::new(
            LdBnAdaptConfig::paper(1)
                .with_filter(ParamFilter::ConvOnly)
                .with_lr(1e-2),
            &mut model,
        );
        adapter.process_frame(&mut model, &random_frame(&cfg, 5));
        let mut changed = false;
        let mut i = 0;
        model.visit_params(&mut |p| {
            if p.kind.is_conv() {
                if p.value.as_slice() != conv_before[i].as_slice() {
                    changed = true;
                }
                i += 1;
            }
        });
        assert!(changed, "ConvOnly ablation did not move conv weights");
    }

    #[test]
    fn multi_step_config_takes_multiple_steps() {
        let (cfg, mut model) = tiny();
        let mut c = LdBnAdaptConfig::paper(1);
        c.steps_per_batch = 3;
        let mut adapter = LdBnAdapter::new(c, &mut model);
        adapter.process_frame(&mut model, &random_frame(&cfg, 9));
        assert_eq!(adapter.steps_taken(), 3);
    }

    #[test]
    #[should_panic(expected = "zero batch size")]
    fn zero_batch_size_rejected() {
        LdBnAdaptConfig::paper(0);
    }
}
