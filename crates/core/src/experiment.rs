//! Reusable experiment runners behind the paper's Figure 2 and the §III
//! parameter-group ablation. The `ld-bench` binaries are thin wrappers
//! around these.

use crate::bn_adapt::LdBnAdaptConfig;
use crate::bridge::frame_spec_for;
use crate::eval::{evaluate_frozen, run_online, OnlineResult};
use crate::sota::{adapt_sota, SotaConfig};
use crate::trainer::{pretrain_on_source, TrainConfig};
use ld_carlane::{Benchmark, FrameStream};
use ld_nn::ParamFilter;
use ld_ufld::{Backbone, UfldConfig, UfldModel};

/// An adaptation method evaluated in Figure 2 (plus the §III ablations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Method {
    /// Source-trained UFLD deployed as-is ("UFLD no adaptation").
    NoAdapt,
    /// The CARLANE SOTA offline adaptation baseline.
    Sota,
    /// LD-BN-ADAPT with the given adaptation batch size (1, 2 or 4).
    BnAdapt {
        /// Frames per adaptation step.
        batch_size: usize,
    },
    /// §III ablation: adapt convolutional parameters instead of BN.
    ConvAdapt,
    /// §III ablation: adapt fully-connected parameters instead of BN.
    FcAdapt,
}

impl Method {
    /// Paper-style label.
    pub fn label(self) -> String {
        match self {
            Method::NoAdapt => "UFLD (no adapt)".into(),
            Method::Sota => "CARLANE SOTA".into(),
            Method::BnAdapt { batch_size } => format!("LD-BN-ADAPT bs={batch_size}"),
            Method::ConvAdapt => "CONV-ADAPT (ablation)".into(),
            Method::FcAdapt => "FC-ADAPT (ablation)".into(),
        }
    }
}

/// Configuration of one Figure-2-style experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Pre-training schedule.
    pub train: TrainConfig,
    /// SOTA baseline schedule.
    pub sota: SotaConfig,
    /// Online adaptation learning rate.
    pub adapt_lr: f32,
    /// Frames in the target evaluation stream.
    pub eval_frames: usize,
    /// Stream seed (shared by all methods → identical pixels).
    pub eval_seed: u64,
    /// Model-init seed.
    pub model_seed: u64,
}

impl ExperimentConfig {
    /// The scaled configuration used to regenerate Figure 2.
    pub fn scaled() -> Self {
        ExperimentConfig {
            train: TrainConfig::scaled(),
            sota: SotaConfig::scaled(),
            adapt_lr: 1e-3,
            eval_frames: 240,
            eval_seed: 0xE7A1,
            model_seed: 0x5EED,
        }
    }

    /// Miniature configuration for integration tests.
    pub fn smoke() -> Self {
        ExperimentConfig {
            train: TrainConfig::smoke(),
            sota: SotaConfig::smoke(),
            adapt_lr: 1e-3,
            eval_frames: 10,
            eval_seed: 0xE7A2,
            model_seed: 0x5EED,
        }
    }
}

/// Result of one (benchmark, backbone, method) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Benchmark evaluated.
    pub benchmark: Benchmark,
    /// Backbone used.
    pub backbone: Backbone,
    /// Method label.
    pub method: String,
    /// Accuracy in percent (paper's Fig. 2 y-axis).
    pub accuracy_pct: f64,
    /// Adaptation steps performed (0 for offline methods).
    pub adapt_steps: usize,
}

/// A pre-trained model bundle reused across the methods of one column.
pub struct PretrainedCell {
    cfg: UfldConfig,
    state: Vec<(String, ld_tensor::Tensor)>,
    benchmark: Benchmark,
    backbone: Backbone,
}

impl PretrainedCell {
    /// Pre-trains a model for `(benchmark, backbone)` on the source domain
    /// using `base_cfg` scaled-model hyper-parameters.
    pub fn train(
        benchmark: Benchmark,
        backbone: Backbone,
        exp: &ExperimentConfig,
        tiny: bool,
    ) -> Self {
        let cfg = if tiny {
            let mut c = UfldConfig::tiny(benchmark.num_lanes());
            c.backbone = backbone;
            c
        } else {
            UfldConfig::scaled(backbone, benchmark.num_lanes())
        };
        let mut model = UfldModel::new(&cfg, exp.model_seed);
        pretrain_on_source(&mut model, benchmark, &exp.train);
        PretrainedCell {
            cfg,
            state: model.state_dict(),
            benchmark,
            backbone,
        }
    }

    /// A fresh copy of the pre-trained model (methods never share state).
    pub fn fresh_model(&self) -> UfldModel {
        let mut m = UfldModel::new(&self.cfg, 0);
        m.load_state_dict(&self.state);
        m
    }

    /// The model config.
    pub fn config(&self) -> &UfldConfig {
        &self.cfg
    }

    /// Evaluates one method on this cell's shared target stream.
    pub fn evaluate(&self, method: Method, exp: &ExperimentConfig) -> (CellResult, OnlineResult) {
        let spec = frame_spec_for(&self.cfg);
        let stream = FrameStream::target(self.benchmark, spec, exp.eval_frames, exp.eval_seed);
        let mut model = self.fresh_model();
        let online = match method {
            Method::NoAdapt => evaluate_frozen(&mut model, &stream),
            Method::Sota => {
                adapt_sota(&mut model, self.benchmark, &exp.sota);
                evaluate_frozen(&mut model, &stream)
            }
            Method::BnAdapt { batch_size } => run_online(
                &mut model,
                LdBnAdaptConfig::paper(batch_size).with_lr(exp.adapt_lr),
                &stream,
            ),
            Method::ConvAdapt => run_online(
                &mut model,
                LdBnAdaptConfig::paper(1)
                    .with_lr(exp.adapt_lr)
                    .with_filter(ParamFilter::ConvOnly),
                &stream,
            ),
            Method::FcAdapt => run_online(
                &mut model,
                LdBnAdaptConfig::paper(1)
                    .with_lr(exp.adapt_lr)
                    .with_filter(ParamFilter::FcOnly),
                &stream,
            ),
        };
        let cell = CellResult {
            benchmark: self.benchmark,
            backbone: self.backbone,
            method: method.label(),
            accuracy_pct: online.report.percent(),
            adapt_steps: online.adapt_steps,
        };
        (cell, online)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cell_runs_all_methods() {
        let exp = ExperimentConfig::smoke();
        let cell = PretrainedCell::train(Benchmark::MoLane, Backbone::ResNet18, &exp, true);
        for method in [
            Method::NoAdapt,
            Method::BnAdapt { batch_size: 2 },
            Method::ConvAdapt,
        ] {
            let (res, online) = cell.evaluate(method, &exp);
            assert!(
                res.accuracy_pct >= 0.0 && res.accuracy_pct <= 100.0,
                "{res:?}"
            );
            assert_eq!(online.per_frame.len(), exp.eval_frames);
        }
    }

    #[test]
    fn methods_share_identical_streams() {
        // Two evaluations of the same method must agree exactly
        // (determinism of streams + fresh model copies).
        let exp = ExperimentConfig::smoke();
        let cell = PretrainedCell::train(Benchmark::MoLane, Backbone::ResNet18, &exp, true);
        let (a, _) = cell.evaluate(Method::BnAdapt { batch_size: 1 }, &exp);
        let (b, _) = cell.evaluate(Method::BnAdapt { batch_size: 1 }, &exp);
        assert_eq!(a.accuracy_pct, b.accuracy_pct);
    }

    #[test]
    fn method_labels_match_paper_vocabulary() {
        assert_eq!(
            Method::BnAdapt { batch_size: 1 }.label(),
            "LD-BN-ADAPT bs=1"
        );
        assert!(Method::Sota.label().contains("SOTA"));
        assert!(Method::NoAdapt.label().contains("no adapt"));
    }
}
