//! Evaluation harnesses: offline (frozen model) and online (adapt-as-you-go).

use crate::bn_adapt::{LdBnAdaptConfig, LdBnAdapter};
use crate::bridge::frame_spec_for;
use ld_carlane::FrameStream;
use ld_nn::{Layer, Mode};
use ld_ufld::{decode_batch, score_image, AccuracyReport, UfldModel};

/// Result of an online evaluation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineResult {
    /// Aggregate accuracy over the whole stream.
    pub report: AccuracyReport,
    /// Per-frame accuracy (1 sample per frame).
    pub per_frame: Vec<f32>,
    /// Per-frame prediction entropy.
    pub entropy: Vec<f32>,
    /// Adaptation steps performed.
    pub adapt_steps: usize,
}

impl OnlineResult {
    /// Mean accuracy over a trailing window (for drift timelines).
    pub fn window_accuracy(&self, end: usize, window: usize) -> f64 {
        let lo = end.saturating_sub(window);
        let slice = &self.per_frame[lo..end.min(self.per_frame.len())];
        if slice.is_empty() {
            return 0.0;
        }
        slice.iter().map(|&x| x as f64).sum::<f64>() / slice.len() as f64
    }
}

/// Evaluates a frozen model on a stream (no adaptation — the paper's
/// "UFLD no adaptation" reference, and the post-hoc evaluation of the SOTA
/// baseline's adapted model).
pub fn evaluate_frozen(model: &mut UfldModel, stream: &FrameStream) -> OnlineResult {
    let cfg = model.config().clone();
    let spec = frame_spec_for(&cfg);
    debug_assert_eq!(spec, *stream.spec(), "stream spec mismatch");
    let mut result = OnlineResult::default();
    for i in 0..stream.len() {
        let frame = stream.frame(i);
        let batch1 = frame
            .image
            .to_shape(&[1, 3, cfg.input_height, cfg.input_width]);
        let logits = model.forward(&batch1, Mode::Eval);
        let lanes = decode_batch(&logits, &cfg);
        let rep = score_image(&lanes[0], &frame.labels, &cfg);
        result.per_frame.push(rep.accuracy() as f32);
        result.entropy.push(ld_nn::loss::entropy(&logits).value);
        result.report.merge(&rep);
    }
    result
}

/// Runs the paper's online protocol: for each incoming frame, inference with
/// the current model, scoring, then (per the adapter's batch size) the
/// adaptation step. The updated model serves the next frame.
pub fn run_online(
    model: &mut UfldModel,
    adapt_cfg: LdBnAdaptConfig,
    stream: &FrameStream,
) -> OnlineResult {
    let cfg = model.config().clone();
    let mut adapter = LdBnAdapter::new(adapt_cfg, model);
    let mut result = OnlineResult::default();
    for i in 0..stream.len() {
        let frame = stream.frame(i);
        let out = adapter.process_frame(model, &frame.image);
        let lanes = decode_batch(&out.logits, &cfg);
        let rep = score_image(&lanes[0], &frame.labels, &cfg);
        result.per_frame.push(rep.accuracy() as f32);
        result.entropy.push(out.entropy);
        result.report.merge(&rep);
    }
    result.adapt_steps = adapter.steps_taken();
    result
}

/// Convenience: evaluates on the labeled source split (sanity ceiling).
pub fn evaluate_source(
    model: &mut UfldModel,
    benchmark: ld_carlane::Benchmark,
    frames: usize,
    seed: u64,
) -> OnlineResult {
    let spec = frame_spec_for(model.config());
    let stream = FrameStream::source(benchmark, spec, frames, seed);
    evaluate_frozen(model, &stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{pretrain_on_source, TrainConfig};
    use ld_carlane::Benchmark;
    use ld_ufld::UfldConfig;

    #[test]
    fn frozen_and_online_eval_run_end_to_end() {
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 41);
        pretrain_on_source(&mut model, Benchmark::MoLane, &TrainConfig::smoke());
        let spec = frame_spec_for(&cfg);
        let stream = FrameStream::target(Benchmark::MoLane, spec, 6, 77);

        let frozen = evaluate_frozen(&mut model, &stream);
        assert_eq!(frozen.per_frame.len(), 6);
        assert_eq!(frozen.adapt_steps, 0);

        let online = run_online(&mut model, crate::LdBnAdaptConfig::paper(2), &stream);
        assert_eq!(online.per_frame.len(), 6);
        assert_eq!(online.adapt_steps, 3);
        assert!(online.report.gt_points > 0);
    }

    #[test]
    fn window_accuracy_slices_correctly() {
        let r = OnlineResult {
            per_frame: vec![0.0, 0.0, 1.0, 1.0],
            ..Default::default()
        };
        assert!((r.window_accuracy(4, 2) - 1.0).abs() < 1e-9);
        assert!((r.window_accuracy(2, 2) - 0.0).abs() < 1e-9);
        assert!((r.window_accuracy(4, 4) - 0.5).abs() < 1e-9);
    }
}
