//! **LD-BN-ADAPT** — real-time, fully unsupervised domain adaptation for
//! lane detection (the paper's contribution), with baselines and ablations.
//!
//! The deployment story this crate implements (paper §I–§III):
//!
//! * a UFLD lane detector is pre-trained on *labeled simulator data*
//!   ([`trainer`]);
//! * deployed in the vehicle, it sees *unlabeled* real-world frames from a
//!   30 FPS camera whose appearance statistics differ from training;
//! * after each inference, [`LdBnAdapter`] recomputes the batch-norm
//!   statistics from the unlabeled batch and takes **one entropy-descent
//!   step on the BN scale/shift parameters only** (~1 % of the model) —
//!   cheap enough for on-device, real-time use;
//! * the offline state of the art ([`sota`]) — k-means embedding encoding,
//!   source-prototype knowledge transfer, pseudo-labels and multi-epoch
//!   full-network fine-tuning — serves as the accuracy reference that is
//!   *not* real-time capable;
//! * [`eval`] and [`experiment`] reproduce the paper's Figure 2 protocol,
//!   including the batch-size sweep and the conv/FC ablations;
//! * [`server`] scales the loop past one camera: N drifting streams are
//!   batched through one shared model with per-stream entropy governors and
//!   an Orin deadline gate deciding the admitted batch (and whether the
//!   shared adaptation step fits the frame budget).
//!
//! # Example: online adaptation over a target stream
//!
//! ```
//! use ld_adapt::{frame_spec_for, run_online, LdBnAdaptConfig};
//! use ld_carlane::{Benchmark, FrameStream};
//! use ld_ufld::{UfldConfig, UfldModel};
//!
//! let cfg = UfldConfig::tiny(2);
//! let mut model = UfldModel::new(&cfg, 7);
//! let stream = FrameStream::target(Benchmark::MoLane, frame_spec_for(&cfg), 4, 9);
//! let result = run_online(&mut model, LdBnAdaptConfig::paper(1), &stream);
//! assert_eq!(result.adapt_steps, 4); // bs = 1 ⇒ adapt after every frame
//! ```

pub mod bn_adapt;
pub mod bridge;
pub mod eval;
pub mod experiment;
pub mod governor;
pub mod server;
pub mod sota;
pub mod trainer;

pub use bn_adapt::{AdaptStep, FrameOutcome, LdBnAdaptConfig, LdBnAdapter};
pub use bridge::frame_spec_for;
pub use eval::{evaluate_frozen, evaluate_source, run_online, OnlineResult};
pub use experiment::{CellResult, ExperimentConfig, Method, PretrainedCell};
pub use governor::{AdaptGovernor, GovernorConfig, GovernorStats};
pub use server::{
    AdaptServer, AdmissionGate, SelfHealConfig, ServeReport, ServerConfig, ServerStats,
    StreamFaultStats, StreamReport, StreamSnapshot,
};
pub use sota::{adapt_sota, SotaConfig, SotaStats};
pub use trainer::{pretrain_on_source, TrainConfig, TrainStats};
