//! The CARLANE SOTA adaptation baseline (offline, not real-time).
//!
//! Re-implementation of the adaptation scheme the paper compares against
//! (§II, after Stuhr et al., NeurIPS 2022): it
//!
//! 1. encodes the semantic structure of source and target data in a shared
//!    **embedding space** and summarises the target with **k-means**
//!    (`ld-cluster`);
//! 2. **transfers knowledge** from source to target via joint training —
//!    supervised cross-entropy on *labeled source data* plus
//!    **pseudo-labels** on the target and a prototype-alignment term that
//!    pulls each target embedding toward its cluster centroid;
//! 3. updates **all** network parameters by backpropagation for multiple
//!    epochs.
//!
//! These are exactly the properties the paper criticises: it needs labeled
//! source data on device, runs for epochs (>1 h per epoch on Orin at paper
//! scale — see `ld-orin`), and generates pseudo-labels. Accuracy, however,
//! is slightly above LD-BN-ADAPT — reproducing Fig. 2's ordering.

use crate::bridge::frame_spec_for;
use ld_carlane::{Benchmark, FrameStream};
use ld_cluster::KMeans;
use ld_nn::{loss, Layer, Mode, ParamFilter, Sgd};
use ld_tensor::rng::SeededRng;
use ld_tensor::Tensor;
use ld_ufld::UfldModel;

/// Hyper-parameters of the SOTA baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct SotaConfig {
    /// Fine-tuning epochs over the target set (the real system runs ~10;
    /// the scaled reproduction converges in a few).
    pub epochs: usize,
    /// k for the target-embedding k-means.
    pub k_clusters: usize,
    /// Labeled source frames kept on device.
    pub source_size: usize,
    /// Unlabeled target frames adapted on.
    pub target_size: usize,
    /// Images per SGD step.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Weight of the target pseudo-label cross-entropy.
    pub pseudo_weight: f32,
    /// Weight of the prototype-alignment (cluster-pull) loss.
    pub proto_weight: f32,
    /// Only pseudo-label predictions whose entropy is below this quantile
    /// of the batch (confidence filtering).
    pub confidence_quantile: f32,
    /// RNG seed.
    pub seed: u64,
}

impl SotaConfig {
    /// Schedule used by the scaled Fig. 2 reproduction.
    pub fn scaled() -> Self {
        SotaConfig {
            epochs: 3,
            k_clusters: 8,
            source_size: 128,
            target_size: 128,
            batch_size: 8,
            lr: 0.01,
            momentum: 0.9,
            pseudo_weight: 0.5,
            proto_weight: 0.05,
            confidence_quantile: 0.7,
            seed: 0x50_7A,
        }
    }

    /// A tiny smoke-test schedule.
    pub fn smoke() -> Self {
        SotaConfig {
            epochs: 1,
            k_clusters: 3,
            source_size: 12,
            target_size: 12,
            batch_size: 4,
            lr: 0.01,
            momentum: 0.9,
            pseudo_weight: 0.5,
            proto_weight: 0.05,
            confidence_quantile: 0.7,
            seed: 0xD06,
        }
    }
}

/// Telemetry from a SOTA adaptation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SotaStats {
    /// Total loss per step.
    pub loss_curve: Vec<f32>,
    /// k-means inertia per epoch (clustering quality).
    pub inertia_per_epoch: Vec<f32>,
    /// SGD steps executed.
    pub steps: usize,
}

/// Runs the offline SOTA adaptation, updating `model` in place.
///
/// Uses the benchmark's labeled source split *and* unlabeled target split —
/// the memory/data footprint the paper contrasts with LD-BN-ADAPT.
pub fn adapt_sota(model: &mut UfldModel, benchmark: Benchmark, cfg: &SotaConfig) -> SotaStats {
    let spec = frame_spec_for(model.config());
    let per_labels = spec.labels_per_frame();
    let source = FrameStream::source(benchmark, spec, cfg.source_size, cfg.seed);
    let target = FrameStream::target(benchmark, spec, cfg.target_size, cfg.seed ^ 0xFEED);
    let (src_images, src_labels) = source.batch(0, cfg.source_size);
    let (tgt_images, _) = target.batch(0, cfg.target_size); // labels unused: unsupervised

    model.apply_filter(ParamFilter::All);
    let mut opt = Sgd::new(cfg.lr).momentum(cfg.momentum);
    let mut rng = SeededRng::new(cfg.seed ^ 0xAA);
    let mut stats = SotaStats::default();
    let hidden = model.config().head_hidden;
    let (h, w) = (spec.height, spec.width);

    for epoch in 0..cfg.epochs {
        // --- (1) Encode semantic structure: embed the target set, k-means.
        let mut embeddings = Tensor::zeros(&[cfg.target_size, hidden]);
        for i in 0..cfg.target_size {
            let img = Tensor::from_vec(tgt_images.image(i).to_vec(), &[1, 3, h, w]);
            model.forward(&img, Mode::Eval);
            let emb = model.last_embedding().expect("embedding");
            embeddings.as_mut_slice()[i * hidden..(i + 1) * hidden].copy_from_slice(emb.as_slice());
        }
        let km = KMeans::fit(
            &embeddings,
            cfg.k_clusters.min(cfg.target_size),
            20,
            cfg.seed ^ epoch as u64,
        );
        stats.inertia_per_epoch.push(km.inertia());

        // --- (2)+(3) Knowledge transfer: joint fine-tuning of all params.
        let steps = (cfg.target_size / cfg.batch_size).max(1);
        let mut order: Vec<usize> = (0..cfg.target_size).collect();
        rng.shuffle(&mut order);
        for step in 0..steps {
            // Source batch (labeled).
            let mut sb = Tensor::zeros(&[cfg.batch_size, 3, h, w]);
            let mut sl = Vec::with_capacity(cfg.batch_size * per_labels);
            for k in 0..cfg.batch_size {
                let i = rng.index(cfg.source_size);
                sb.image_mut(k).copy_from_slice(src_images.image(i));
                sl.extend_from_slice(&src_labels[i * per_labels..(i + 1) * per_labels]);
            }
            let s_logits = model.forward(&sb, Mode::Train);
            let s_ce = loss::group_cross_entropy(&s_logits, &sl);
            model.zero_grad();
            model.backward(&s_ce.grad);

            // Target batch (unlabeled → pseudo-labels + prototype pull).
            let mut tb = Tensor::zeros(&[cfg.batch_size, 3, h, w]);
            let mut t_idx = Vec::with_capacity(cfg.batch_size);
            for k in 0..cfg.batch_size {
                let i = order[(step * cfg.batch_size + k) % cfg.target_size];
                tb.image_mut(k).copy_from_slice(tgt_images.image(i));
                t_idx.push(i);
            }
            let t_logits = model.forward(&tb, Mode::Train);
            let t_emb = model.last_embedding().expect("embedding").clone();

            // Pseudo-labels = the model's own argmax, confidence-filtered
            // by per-image prediction entropy.
            let (pseudo, keep) = pseudo_labels(&t_logits, cfg.confidence_quantile);
            let pl = loss::group_cross_entropy(&t_logits, &pseudo);
            let mut grad_logits = Tensor::zeros(t_logits.shape_dims());
            if keep.iter().any(|&k| k) {
                // Mask out low-confidence images' gradient contributions.
                let per = t_logits.len() / cfg.batch_size;
                let mut masked = pl.grad.clone();
                for (b, &k) in keep.iter().enumerate() {
                    if !k {
                        masked.as_mut_slice()[b * per..(b + 1) * per]
                            .iter_mut()
                            .for_each(|g| *g = 0.0);
                    }
                }
                grad_logits.axpy(cfg.pseudo_weight, &masked);
            }

            // Prototype alignment: pull embeddings toward their centroid.
            let mut grad_emb = Tensor::zeros(&[cfg.batch_size, hidden]);
            let mut proto_loss = 0.0f32;
            for (b, &i) in t_idx.iter().enumerate() {
                let c = km.assignments()[i];
                let centroid = &km.centroids().as_slice()[c * hidden..(c + 1) * hidden];
                let emb = &t_emb.as_slice()[b * hidden..(b + 1) * hidden];
                for d in 0..hidden {
                    let diff = emb[d] - centroid[d];
                    proto_loss += diff * diff;
                    grad_emb.as_mut_slice()[b * hidden + d] =
                        cfg.proto_weight * 2.0 * diff / (cfg.batch_size * hidden) as f32;
                }
            }
            proto_loss *= cfg.proto_weight / (cfg.batch_size * hidden) as f32;

            model.backward_with_embedding_grad(&grad_logits, &grad_emb);
            model.visit_params(&mut |p| opt.update(p));

            stats
                .loss_curve
                .push(s_ce.value + cfg.pseudo_weight * pl.value + proto_loss);
            stats.steps += 1;
        }
    }
    stats
}

/// Derives per-group argmax pseudo-labels and a per-image confidence mask
/// (`true` = entropy below the batch quantile).
fn pseudo_labels(logits: &Tensor, quantile: f32) -> (Vec<u32>, Vec<bool>) {
    let d = loss::group_dims(logits);
    let stride = d.r * d.l;
    let probs = loss::group_softmax(logits);
    let mut labels = vec![0u32; d.n * stride];
    let mut image_entropy = vec![0.0f32; d.n];
    for n in 0..d.n {
        let img = n * d.c * stride;
        for g in 0..stride {
            let mut best = 0usize;
            let mut best_p = -1.0f32;
            let mut h = 0.0f32;
            for c in 0..d.c {
                let p = probs.as_slice()[img + c * stride + g];
                if p > best_p {
                    best_p = p;
                    best = c;
                }
                if p > 1e-12 {
                    h -= p * p.ln();
                }
            }
            labels[n * stride + g] = best as u32;
            image_entropy[n] += h;
        }
    }
    // Keep the most confident `quantile` fraction of images.
    let mut sorted = image_entropy.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite entropies"));
    let cut_idx = ((d.n as f32 * quantile).ceil() as usize).clamp(1, d.n) - 1;
    let cutoff = sorted[cut_idx];
    let keep = image_entropy.iter().map(|&h| h <= cutoff).collect();
    (labels, keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_ufld::UfldConfig;

    #[test]
    fn smoke_run_executes_and_records_stats() {
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 31);
        let stats = adapt_sota(&mut model, Benchmark::MoLane, &SotaConfig::smoke());
        assert_eq!(stats.inertia_per_epoch.len(), 1);
        assert!(stats.steps >= 3);
        assert_eq!(stats.loss_curve.len(), stats.steps);
        assert!(stats.loss_curve.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn sota_updates_all_parameter_groups() {
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 32);
        let mut conv0 = None;
        let mut fc0 = None;
        model.visit_params(&mut |p| {
            if p.kind.is_conv() && conv0.is_none() {
                conv0 = Some(p.value.clone());
            }
            if p.kind.is_fc() && fc0.is_none() {
                fc0 = Some(p.value.clone());
            }
        });
        adapt_sota(&mut model, Benchmark::MoLane, &SotaConfig::smoke());
        let mut conv_changed = false;
        let mut fc_changed = false;
        let mut seen_conv = false;
        let mut seen_fc = false;
        model.visit_params(&mut |p| {
            if p.kind.is_conv() && !seen_conv {
                seen_conv = true;
                conv_changed = p.value.as_slice() != conv0.as_ref().unwrap().as_slice();
            }
            if p.kind.is_fc() && !seen_fc {
                seen_fc = true;
                fc_changed = p.value.as_slice() != fc0.as_ref().unwrap().as_slice();
            }
        });
        assert!(conv_changed, "full fine-tune should move conv weights");
        assert!(fc_changed, "full fine-tune should move fc weights");
    }

    #[test]
    fn pseudo_labels_pick_argmax_and_filter_by_confidence() {
        // Two images: one confidently peaked, one uniform.
        let mut logits = Tensor::zeros(&[2, 4, 1, 1]);
        logits.as_mut_slice()[2] = 30.0; // image 0 → class 2, near-zero entropy
        let (labels, keep) = pseudo_labels(&logits, 0.5);
        assert_eq!(labels[0], 2);
        assert!(keep[0]);
        assert!(!keep[1], "uniform image must be filtered out");
    }
}
