//! Source-domain pre-training (the UFLD supervised baseline).
//!
//! The paper's deployed models are "pre-trained using the source data" with
//! the UFLD algorithm: grouped softmax cross-entropy over row anchors plus
//! UFLD's structural similarity/shape regularisers.

use crate::bridge::frame_spec_for;
use ld_carlane::{Benchmark, FrameStream};
use ld_nn::{loss, Layer, Mode, ParamFilter, Sgd};
use ld_ufld::UfldModel;

/// Hyper-parameters for source pre-training.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of SGD steps.
    pub steps: usize,
    /// Images per step.
    pub batch_size: usize,
    /// Source dataset size (frames are cycled).
    pub dataset_size: usize,
    /// Initial learning rate (cosine-annealed to 0).
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Weight of UFLD's similarity loss (0 disables).
    pub sim_loss_weight: f32,
    /// Weight of UFLD's shape loss (0 disables).
    pub shape_loss_weight: f32,
    /// Dataset/shuffle seed.
    pub seed: u64,
}

impl TrainConfig {
    /// Pre-training schedule for the scaled experiments.
    pub fn scaled() -> Self {
        TrainConfig {
            steps: 400,
            batch_size: 8,
            dataset_size: 256,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            sim_loss_weight: 0.1,
            shape_loss_weight: 0.02,
            seed: 0xC0FFEE,
        }
    }

    /// A very short schedule for tests.
    pub fn smoke() -> Self {
        TrainConfig {
            steps: 30,
            batch_size: 4,
            dataset_size: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 0.0,
            sim_loss_weight: 0.0,
            shape_loss_weight: 0.0,
            seed: 0xBEEF,
        }
    }
}

/// Loss trajectory and final state of a pre-training run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainStats {
    /// Total loss after each step.
    pub loss_curve: Vec<f32>,
    /// Classification-only loss after each step.
    pub ce_curve: Vec<f32>,
}

impl TrainStats {
    /// Mean loss over the last quarter of training.
    pub fn final_loss(&self) -> f32 {
        let n = self.loss_curve.len();
        if n == 0 {
            return f32::NAN;
        }
        let tail = &self.loss_curve[n - (n / 4).max(1)..];
        tail.iter().sum::<f32>() / tail.len() as f32
    }
}

/// Pre-trains `model` on the benchmark's labeled source split.
///
/// Renders a `cfg.dataset_size`-frame source dataset (cached in memory) and
/// runs `cfg.steps` SGD steps of grouped cross-entropy plus the structural
/// losses, with cosine learning-rate decay.
pub fn pretrain_on_source(
    model: &mut UfldModel,
    benchmark: Benchmark,
    cfg: &TrainConfig,
) -> TrainStats {
    let spec = frame_spec_for(model.config());
    let stream = FrameStream::source(benchmark, spec, cfg.dataset_size, cfg.seed);
    let (images, labels) = stream.batch(0, cfg.dataset_size);
    let per_frame_labels = spec.labels_per_frame();

    model.apply_filter(ParamFilter::All);
    let mut opt = Sgd::new(cfg.lr)
        .momentum(cfg.momentum)
        .weight_decay(cfg.weight_decay);
    let mut order: Vec<usize> = (0..cfg.dataset_size).collect();
    let mut rng = ld_tensor::rng::SeededRng::new(cfg.seed ^ 0x5511FF);
    rng.shuffle(&mut order);

    let mut stats = TrainStats::default();
    let mut cursor = 0usize;
    let (h, w) = (spec.height, spec.width);
    for step in 0..cfg.steps {
        // Assemble the next shuffled batch.
        let mut batch = ld_tensor::Tensor::zeros(&[cfg.batch_size, 3, h, w]);
        let mut batch_labels = Vec::with_capacity(cfg.batch_size * per_frame_labels);
        for k in 0..cfg.batch_size {
            if cursor >= order.len() {
                cursor = 0;
                rng.shuffle(&mut order);
            }
            let idx = order[cursor];
            cursor += 1;
            batch.image_mut(k).copy_from_slice(images.image(idx));
            batch_labels
                .extend_from_slice(&labels[idx * per_frame_labels..(idx + 1) * per_frame_labels]);
        }

        let logits = model.forward(&batch, Mode::Train);
        let ce = loss::group_cross_entropy(&logits, &batch_labels);
        let mut grad = ce.grad.clone();
        let mut total = ce.value;
        if cfg.sim_loss_weight > 0.0 {
            let sim = loss::similarity(&logits);
            grad.axpy(cfg.sim_loss_weight, &sim.grad);
            total += cfg.sim_loss_weight * sim.value;
        }
        if cfg.shape_loss_weight > 0.0 {
            let shp = loss::shape(&logits);
            grad.axpy(cfg.shape_loss_weight, &shp.grad);
            total += cfg.shape_loss_weight * shp.value;
        }
        model.zero_grad();
        model.backward(&grad);
        opt.set_lr(ld_nn::cosine_lr(cfg.lr, cfg.lr * 1e-3, step, cfg.steps));
        model.visit_params(&mut |p| opt.update(p));

        stats.loss_curve.push(total);
        stats.ce_curve.push(ce.value);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_ufld::UfldConfig;

    #[test]
    fn smoke_training_reduces_loss() {
        let cfg = UfldConfig::tiny(2);
        let mut model = UfldModel::new(&cfg, 11);
        let stats = pretrain_on_source(&mut model, Benchmark::MoLane, &TrainConfig::smoke());
        assert_eq!(stats.loss_curve.len(), 30);
        let first = stats.loss_curve[..5].iter().sum::<f32>() / 5.0;
        let last = stats.final_loss();
        assert!(
            last < first,
            "loss did not decrease: first {first}, last {last}"
        );
        assert!(last.is_finite());
    }

    #[test]
    fn final_loss_of_empty_stats_is_nan() {
        assert!(TrainStats::default().final_loss().is_nan());
    }
}
