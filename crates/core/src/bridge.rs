//! Bridging the lane detector's configuration to the benchmark generator.

use ld_carlane::FrameSpec;
use ld_ufld::UfldConfig;

/// Derives the benchmark [`FrameSpec`] matching a model configuration.
///
/// The generator renders frames at the model's input resolution and labels
/// them on the model's grid/row-anchor layout, so streams plug directly into
/// the network with no resizing.
pub fn frame_spec_for(cfg: &UfldConfig) -> FrameSpec {
    FrameSpec::new(
        cfg.input_width,
        cfg.input_height,
        cfg.griding_num,
        cfg.row_anchors,
        cfg.num_lanes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_ufld::Backbone;

    #[test]
    fn spec_matches_config_fields() {
        let cfg = UfldConfig::scaled(Backbone::ResNet18, 4);
        let spec = frame_spec_for(&cfg);
        assert_eq!(spec.width, cfg.input_width);
        assert_eq!(spec.height, cfg.input_height);
        assert_eq!(spec.griding, cfg.griding_num);
        assert_eq!(spec.row_anchors, cfg.row_anchors);
        assert_eq!(spec.num_lanes, cfg.num_lanes);
        assert_eq!(spec.background_class() as usize, cfg.background_class());
    }
}
