//! **`ld_fleet`** — sharded fleet serving: a control plane over many
//! `AdaptServer`s.
//!
//! One `AdaptServer` scales the paper's single-camera adaptation loop to a
//! handful of concurrent streams; a vehicle fleet offers hundreds. This
//! crate shards the fleet: K server shards, each a complete serving stack,
//! under one [`Fleet`] control plane that routes cameras to shards, watches
//! per-shard backpressure, and migrates cameras live when one shard sheds
//! while a neighbour idles.
//!
//! # The shard contract
//!
//! Each shard ([`InProcessShard`]) owns a complete, *isolated* serving
//! stack on its own thread: a model replica (same deployed weights
//! everywhere — one seed), an `AdaptServer` in BN-bank mode, an
//! `ld_ingest` front end over a **routed slot map** (schedules and frame
//! sources keyed by global camera id, frames stamped with the shard-local
//! slot), and a private `ld_tensor` worker pool bound with
//! [`ld_tensor::parallel::with_pool`] so shards never contend for
//! dispatch. Admission (`ld_orin`) stays per-shard: each shard gates its
//! own tick against its own deadline. No state is shared between shards —
//! which is the determinism contract: under a fixed assignment and manual
//! clocks, every shard is **bitwise identical** to an independent
//! `AdaptServer` serving the same routed slot map, so a K-shard fleet
//! equals K independent servers stream for stream.
//!
//! # The router contract
//!
//! The [`Fleet`] holds the assignment table: per shard, a slot map
//! `local slot → Option<global camera>` (`None` = parked headroom). Every
//! global camera appears on at most one shard. [`Fleet::locate`] resolves
//! a camera; [`Fleet::contiguous_assignment`] builds the canonical initial
//! layout. The table is updated only by migrations, so the router is the
//! single source of truth for *where a camera's adaptation state lives* —
//! the shape a domain-library keyed store would index by camera tag.
//!
//! # The migration contract
//!
//! [`Fleet::migrate`] moves one camera between serving calls (never
//! mid-tick). The unit in flight is a [`MigrationPacket`]:
//!
//! * the ingest half (`CamHandoff`) carries the producer's schedule index,
//!   frame cursor and sequence state, so delivery resumes with no frame
//!   replayed or skipped;
//! * the server half (`StreamSnapshot`) carries the stream's banks as
//!   **tagged `LDBK` v2 bytes** (camera tag + blessed tick in the metadata
//!   chunk, CRC over everything) plus SGD momentum re-keyed at attach.
//!   Between ticks bank gradients are zero by construction, so the `LDBK`
//!   encoding — which deliberately drops gradients — is lossless here, and
//!   the bytes are preserved **bitwise** end to end: what
//!   [`MigrationPacket`] ships is exactly what a later detach re-emits.
//!
//! The transport ([`ShardTransport`]) is deliberately socket-shaped — a
//! pipelined `submit`/`receive` pair per shard, commands fanned out before
//! responses are collected — and the in-process implementation is just one
//! realisation. A future socket transport ships the same `LDBK` bytes;
//! only the ingest half degrades (a remote producer is rebuilt from the
//! global id, restarting its sequence epoch, exactly like the real-time
//! attach path today).
//!
//! # The rebalancer
//!
//! [`Fleet::rebalance`] scores every shard with
//! [`ld_orin::ShardPressure`] (shed ratio + staleness excess + deadline
//! overruns, from the shard's own telemetry). When the hottest shard
//! out-pressures the coolest by more than the configured gap and the
//! coolest has parked headroom, it moves the hottest shard's
//! **cheapest-to-move** camera — the one whose bank has drifted least from
//! the deployed weights ([`ld_adapt`]'s `l2_from_init` telemetry) — and
//! logs a [`MigrationRecord`] (tick-stamped, with the bank byte count and
//! blessed tick) into the [`FleetReport`].

pub mod control;
pub mod report;
pub mod transport;

pub use control::{Fleet, FleetConfig};
pub use report::{FleetReport, FleetTraces, MigrationRecord, ShardSummary};
pub use transport::{
    InProcessShard, MigrationPacket, ShardCommand, ShardResponse, ShardSpec, ShardTransport,
};
