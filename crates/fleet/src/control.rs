//! The fleet control plane: camera routing, live migration, and the
//! pressure-driven rebalancer (see the crate docs for the contracts).

use crate::report::{FleetReport, FleetTraces, MigrationRecord, ShardSummary};
use crate::transport::{
    InProcessShard, MigrationPacket, ShardCommand, ShardResponse, ShardSpec, ShardTransport,
};
use ld_adapt::ServeReport;
use ld_carlane::StreamSet;
use ld_ingest::{CamReport, IngestReport};
use ld_orin::ShardPressure;

/// Fleet-level configuration: the per-shard recipe plus the control
/// plane's own knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The recipe every shard is built from (one deployed model, one
    /// serving policy — only slot maps differ).
    pub shard: ShardSpec,
    /// Number of shards.
    pub shards: usize,
    /// Slots per shard, including parked headroom for migrations.
    pub slots_per_shard: usize,
    /// Minimum hottest-minus-coolest [`ShardPressure`] score gap before
    /// [`Fleet::rebalance`] moves a camera.
    pub rebalance_gap: f64,
}

impl FleetConfig {
    /// A fleet of `shards` shards with `slots_per_shard` slots each and
    /// the default rebalance gap (0.25 — a quarter of full shedding).
    pub fn new(shard: ShardSpec, shards: usize, slots_per_shard: usize) -> Self {
        FleetConfig {
            shard,
            shards,
            slots_per_shard,
            rebalance_gap: 0.25,
        }
    }
}

/// The control plane over K shard transports (see the crate docs).
pub struct Fleet {
    shards: Vec<Box<dyn ShardTransport>>,
    /// Router table: per shard, local slot → global camera.
    slots: Vec<Vec<Option<usize>>>,
    tick_period_ns: u64,
    rebalance_gap: f64,
    ticks_run: usize,
    migrations: Vec<MigrationRecord>,
    /// Cumulative frames served per shard (`ServeReport` covers one `Run`
    /// command only, so served counts must be accumulated here).
    served_frames: Vec<usize>,
    /// Cumulative offered/delivered/dropped per shard. Front-end counters
    /// are cumulative *per slot* but reset when a camera detaches, so the
    /// control plane accumulates per-run deltas against per-slot baselines
    /// (zeroed on migration) — otherwise a migrated camera's history would
    /// vanish from its old shard's ratios.
    offered_frames: Vec<u64>,
    delivered_frames: Vec<u64>,
    dropped_frames: Vec<u64>,
    /// Per-slot counter baselines from the previous `Run` response.
    cam_base: Vec<Vec<CamReport>>,
    last_serve: Vec<Option<ServeReport>>,
    last_ingest: Vec<Option<IngestReport>>,
    stopped: bool,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("shards", &self.shards.len())
            .field("slots", &self.slots)
            .field("ticks_run", &self.ticks_run)
            .field("migrations", &self.migrations.len())
            .finish_non_exhaustive()
    }
}

impl Fleet {
    /// The canonical initial layout: cameras `0..n_cams` split into
    /// contiguous runs, one per shard (as even as possible), each shard's
    /// map padded to `slots_per_shard` with parked slots.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or the fleet lacks capacity.
    pub fn contiguous_assignment(
        n_cams: usize,
        shards: usize,
        slots_per_shard: usize,
    ) -> Vec<Vec<Option<usize>>> {
        assert!(n_cams > 0, "Fleet: no cameras");
        assert!(shards > 0, "Fleet: no shards");
        assert!(
            n_cams <= shards * slots_per_shard,
            "Fleet: {n_cams} cameras exceed {shards}x{slots_per_shard} slots"
        );
        let base = n_cams / shards;
        let extra = n_cams % shards;
        let mut next = 0;
        (0..shards)
            .map(|k| {
                let take = base + usize::from(k < extra);
                assert!(
                    take <= slots_per_shard,
                    "Fleet: shard {k} needs {take} slots, has {slots_per_shard}"
                );
                let mut map: Vec<Option<usize>> = (next..next + take).map(Some).collect();
                map.resize(slots_per_shard, None);
                next += take;
                map
            })
            .collect()
    }

    /// Launches an in-process fleet over `streams` with the contiguous
    /// assignment of all of the set's cameras.
    ///
    /// # Panics
    ///
    /// Panics on a zero-capacity config (see
    /// [`Fleet::contiguous_assignment`]).
    pub fn launch(cfg: &FleetConfig, streams: &StreamSet) -> Self {
        let assignment =
            Self::contiguous_assignment(streams.num_streams(), cfg.shards, cfg.slots_per_shard);
        Self::launch_with_assignment(cfg, streams, assignment)
    }

    /// Launches an in-process fleet with an explicit assignment (per
    /// shard, local slot → global camera; `None` = parked headroom).
    ///
    /// # Panics
    ///
    /// Panics if the assignment is empty, routes an unknown camera, or
    /// routes one camera to two slots anywhere in the fleet.
    pub fn launch_with_assignment(
        cfg: &FleetConfig,
        streams: &StreamSet,
        assignment: Vec<Vec<Option<usize>>>,
    ) -> Self {
        Self::validate_assignment(streams, &assignment);
        let shards = assignment
            .iter()
            .enumerate()
            .map(|(k, slots)| {
                Box::new(InProcessShard::spawn(k, &cfg.shard, streams, slots.clone()))
                    as Box<dyn ShardTransport>
            })
            .collect();
        Self::assemble(cfg, shards, assignment)
    }

    /// Assembles a fleet over caller-provided transports — the seam a
    /// socket transport (or a test mock) plugs into. Each transport must
    /// already be serving `assignment[k]`.
    ///
    /// # Panics
    ///
    /// Panics if the transport and assignment counts differ or the
    /// assignment is empty.
    pub fn over_transports(
        cfg: &FleetConfig,
        shards: Vec<Box<dyn ShardTransport>>,
        assignment: Vec<Vec<Option<usize>>>,
    ) -> Self {
        assert_eq!(
            shards.len(),
            assignment.len(),
            "Fleet: {} transports for {} slot maps",
            shards.len(),
            assignment.len()
        );
        assert!(!shards.is_empty(), "Fleet: no shards");
        Self::assemble(cfg, shards, assignment)
    }

    fn assemble(
        cfg: &FleetConfig,
        shards: Vec<Box<dyn ShardTransport>>,
        assignment: Vec<Vec<Option<usize>>>,
    ) -> Self {
        let n = shards.len();
        let cam_base = assignment
            .iter()
            .map(|slots| vec![CamReport::default(); slots.len()])
            .collect();
        Fleet {
            shards,
            slots: assignment,
            tick_period_ns: cfg.shard.ingest.tick_period_ns,
            rebalance_gap: cfg.rebalance_gap,
            ticks_run: 0,
            migrations: Vec::new(),
            served_frames: vec![0; n],
            offered_frames: vec![0; n],
            delivered_frames: vec![0; n],
            dropped_frames: vec![0; n],
            cam_base,
            last_serve: vec![None; n],
            last_ingest: vec![None; n],
            stopped: false,
        }
    }

    fn validate_assignment(streams: &StreamSet, assignment: &[Vec<Option<usize>>]) {
        assert!(!assignment.is_empty(), "Fleet: no shards");
        let n = streams.num_streams();
        let mut seen = vec![false; n];
        for (k, slots) in assignment.iter().enumerate() {
            assert!(!slots.is_empty(), "Fleet: shard {k} has no slots");
            for &slot in slots {
                let Some(global) = slot else { continue };
                assert!(
                    global < n,
                    "Fleet: shard {k} routes unknown camera {global} (stream set has {n})"
                );
                assert!(!seen[global], "Fleet: camera {global} routed to two slots");
                seen[global] = true;
            }
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Fleet ticks completed.
    pub fn ticks_run(&self) -> usize {
        self.ticks_run
    }

    /// The router table (per shard, local slot → global camera).
    pub fn assignment(&self) -> &[Vec<Option<usize>>] {
        &self.slots
    }

    /// Resolves a global camera to its `(shard, local slot)`.
    pub fn locate(&self, global: usize) -> Option<(usize, usize)> {
        self.slots.iter().enumerate().find_map(|(k, slots)| {
            slots
                .iter()
                .position(|&g| g == Some(global))
                .map(|slot| (k, slot))
        })
    }

    /// The migration log.
    pub fn migrations(&self) -> &[MigrationRecord] {
        &self.migrations
    }

    /// The most recent serving report of shard `k` (`None` before the
    /// first [`Fleet::run`]).
    pub fn shard_serve_report(&self, k: usize) -> Option<&ServeReport> {
        self.last_serve[k].as_ref()
    }

    /// Serves `ticks` ingest ticks on **every** shard concurrently
    /// (commands fan out before any response is collected) and returns
    /// the fleet report.
    ///
    /// # Panics
    ///
    /// Panics if the fleet was shut down or a shard answers out of
    /// protocol.
    pub fn run(&mut self, ticks: usize) -> FleetReport {
        assert!(!self.stopped, "Fleet: already shut down");
        for shard in &mut self.shards {
            shard.submit(ShardCommand::Run { ticks });
        }
        for (k, shard) in self.shards.iter_mut().enumerate() {
            match shard.receive() {
                ShardResponse::Served { serve, ingest } => {
                    self.served_frames[k] +=
                        serve.per_stream.iter().map(|r| r.frames).sum::<usize>();
                    for (slot, now) in ingest.per_cam.iter().enumerate() {
                        let base = &mut self.cam_base[k][slot];
                        self.offered_frames[k] += now.produced - base.produced;
                        self.delivered_frames[k] += now.delivered - base.delivered;
                        self.dropped_frames[k] += now.dropped - base.dropped;
                        *base = *now;
                    }
                    self.last_serve[k] = Some(*serve);
                    self.last_ingest[k] = Some(ingest);
                }
                other => panic!("Fleet: shard {k} answered {other:?} to Run"),
            }
        }
        self.ticks_run += ticks;
        self.report()
    }

    /// Drains every shard's accumulated tick traces (fan-out, like
    /// [`Fleet::run`]) into a [`FleetTraces`] — empty groups unless the
    /// spec's `ServerConfig` enables observability.
    ///
    /// # Panics
    ///
    /// Panics if the fleet was shut down or a shard answers out of
    /// protocol.
    pub fn take_traces(&mut self) -> FleetTraces {
        assert!(!self.stopped, "Fleet: already shut down");
        for shard in &mut self.shards {
            shard.submit(ShardCommand::ExportTrace);
        }
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for (k, shard) in self.shards.iter_mut().enumerate() {
            match shard.receive() {
                ShardResponse::Trace(t) => per_shard.push(t),
                other => panic!("Fleet: shard {k} answered {other:?} to ExportTrace"),
            }
        }
        FleetTraces::new(per_shard, &self.migrations, self.tick_period_ns)
    }

    /// The [`ShardPressure`] score of shard `k` from its latest telemetry
    /// (0.0 before the first run).
    pub fn pressure(&self, k: usize) -> f64 {
        let Some(ing) = &self.last_ingest[k] else {
            return 0.0;
        };
        ShardPressure {
            offered: self.offered_frames[k],
            served: self.served_frames[k] as u64,
            age_p99_ns: ing.age_p99_ns,
            tick_period_ns: self.tick_period_ns,
            ticks: ing.ticks,
            tick_overruns: ing.tick_overruns,
        }
        .score()
    }

    /// Builds the fleet report from the latest shard telemetry.
    pub fn report(&self) -> FleetReport {
        let per_shard = (0..self.shards.len())
            .map(|k| {
                let cams = self.slots[k].iter().filter(|s| s.is_some()).count();
                let mut s = ShardSummary {
                    shard: k,
                    cams,
                    pressure: self.pressure(k),
                    ..ShardSummary::default()
                };
                s.served_frames = self.served_frames[k];
                s.offered_frames = self.offered_frames[k];
                s.delivered_frames = self.delivered_frames[k];
                s.dropped_frames = self.dropped_frames[k];
                if let Some(serve) = &self.last_serve[k] {
                    s.adapt_steps = serve.server.adapt_steps;
                }
                if let Some(ing) = &self.last_ingest[k] {
                    s.age_p99_ns = ing.age_p99_ns;
                    s.ticks = ing.ticks;
                    s.tick_overruns = ing.tick_overruns;
                }
                s
            })
            .collect();
        FleetReport {
            ticks: self.ticks_run,
            per_shard,
            migrations: self.migrations.clone(),
        }
    }

    /// Migrates camera `global` to `to_shard` (between serving calls —
    /// never mid-tick) and logs the [`MigrationRecord`]. The bank bytes in
    /// flight are bitwise-preserved end to end (crate docs).
    ///
    /// # Panics
    ///
    /// Panics if the camera is not in the fleet, the target is the
    /// camera's current shard, or the target has no parked headroom.
    pub fn migrate(&mut self, global: usize, to_shard: usize) -> MigrationRecord {
        assert!(!self.stopped, "Fleet: already shut down");
        let (from_shard, from_slot) = self
            .locate(global)
            .unwrap_or_else(|| panic!("Fleet: camera {global} is not in the fleet"));
        assert!(
            to_shard < self.shards.len(),
            "Fleet: no shard {to_shard} (fleet has {})",
            self.shards.len()
        );
        assert_ne!(
            from_shard, to_shard,
            "Fleet: camera {global} is already on shard {to_shard}"
        );
        assert!(
            self.slots[to_shard].iter().any(|s| s.is_none()),
            "Fleet: shard {to_shard} has no parked headroom"
        );
        self.shards[from_shard].submit(ShardCommand::Detach {
            local: from_slot,
            cam_tag: global as u64,
        });
        let packet = match self.shards[from_shard].receive() {
            ShardResponse::Detached(p) => p,
            other => panic!("Fleet: shard {from_shard} answered {other:?} to Detach"),
        };
        let bank_bytes = packet.snapshot.bank_bytes().len();
        let blessed_tick = packet.snapshot.last_bless_tick().map(|t| t as u64);
        let dropped_in_flight = packet.handoff.dropped_in_flight();
        self.shards[to_shard].submit(ShardCommand::Attach { packet });
        let to_slot = match self.shards[to_shard].receive() {
            ShardResponse::Attached { slot } => slot,
            other => panic!("Fleet: shard {to_shard} answered {other:?} to Attach"),
        };
        self.slots[from_shard][from_slot] = None;
        self.slots[to_shard][to_slot] = Some(global);
        // Both slots restart their front-end counters from zero.
        self.cam_base[from_shard][from_slot] = CamReport::default();
        self.cam_base[to_shard][to_slot] = CamReport::default();
        let record = MigrationRecord {
            at_tick: self.ticks_run,
            global,
            from_shard,
            from_slot,
            to_shard,
            to_slot,
            bank_bytes,
            blessed_tick,
            dropped_in_flight,
        };
        self.migrations.push(record);
        record
    }

    /// Permanently detaches a camera, returning its complete
    /// [`MigrationPacket`] (the domain-library seam: tagged `LDBK` bytes
    /// keyed by camera). The slot parks; [`Fleet::admit`] re-homes the
    /// packet later.
    ///
    /// # Panics
    ///
    /// Panics if the camera is not in the fleet.
    pub fn extract(&mut self, global: usize) -> MigrationPacket {
        assert!(!self.stopped, "Fleet: already shut down");
        let (shard, slot) = self
            .locate(global)
            .unwrap_or_else(|| panic!("Fleet: camera {global} is not in the fleet"));
        self.shards[shard].submit(ShardCommand::Detach {
            local: slot,
            cam_tag: global as u64,
        });
        let packet = match self.shards[shard].receive() {
            ShardResponse::Detached(p) => p,
            other => panic!("Fleet: shard {shard} answered {other:?} to Detach"),
        };
        self.slots[shard][slot] = None;
        self.cam_base[shard][slot] = CamReport::default();
        *packet
    }

    /// Re-homes an extracted camera onto `shard`'s lowest parked slot and
    /// returns that slot.
    ///
    /// # Panics
    ///
    /// Panics if the camera is already in the fleet or the shard has no
    /// headroom.
    pub fn admit(&mut self, shard: usize, packet: MigrationPacket) -> usize {
        assert!(!self.stopped, "Fleet: already shut down");
        let global = packet.handoff.global();
        assert!(
            self.locate(global).is_none(),
            "Fleet: camera {global} is already in the fleet"
        );
        assert!(
            self.slots[shard].iter().any(|s| s.is_none()),
            "Fleet: shard {shard} has no parked headroom"
        );
        self.shards[shard].submit(ShardCommand::Attach {
            packet: Box::new(packet),
        });
        let slot = match self.shards[shard].receive() {
            ShardResponse::Attached { slot } => slot,
            other => panic!("Fleet: shard {shard} answered {other:?} to Attach"),
        };
        self.slots[shard][slot] = Some(global);
        self.cam_base[shard][slot] = CamReport::default();
        slot
    }

    /// One rebalance step: if the hottest shard out-pressures the coolest
    /// by more than the configured gap, the coolest has parked headroom,
    /// and the hottest serves at least two cameras, move the hottest
    /// shard's cheapest camera (least bank drift from the deployed
    /// weights; ties to the lowest global id) and return the record.
    /// Returns `None` when the fleet is balanced or no legal move exists.
    pub fn rebalance(&mut self) -> Option<MigrationRecord> {
        let scores: Vec<f64> = (0..self.shards.len()).map(|k| self.pressure(k)).collect();
        let hot = (0..scores.len()).max_by(|&a, &b| scores[a].total_cmp(&scores[b]))?;
        let cool = (0..scores.len()).min_by(|&a, &b| scores[a].total_cmp(&scores[b]))?;
        if hot == cool || scores[hot] - scores[cool] < self.rebalance_gap {
            return None;
        }
        if !self.slots[cool].iter().any(|s| s.is_none()) {
            return None;
        }
        if self.slots[hot].iter().filter(|s| s.is_some()).count() < 2 {
            // Moving a lone camera just relocates the hotspot.
            return None;
        }
        let serve = self.last_serve[hot].as_ref()?;
        let (_, global) = self.slots[hot]
            .iter()
            .enumerate()
            .filter_map(|(slot, &g)| {
                g.map(|global| {
                    let l2 = serve
                        .per_stream
                        .get(slot)
                        .and_then(|r| r.bank.as_ref())
                        .map_or(0.0, |b| b.l2_from_init);
                    (l2, global)
                })
            })
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))?;
        Some(self.migrate(global, cool))
    }

    /// Stops every shard (producers included) and closes the transports.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        for shard in &mut self.shards {
            shard.submit(ShardCommand::Shutdown);
        }
        for (k, shard) in self.shards.iter_mut().enumerate() {
            match shard.receive() {
                ShardResponse::Stopped => {}
                other => panic!("Fleet: shard {k} answered {other:?} to Shutdown"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_adapt::{
        frame_spec_for, GovernorConfig, LdBnAdaptConfig, ServerConfig, ServerStats, StreamReport,
    };
    use ld_carlane::Benchmark;
    use ld_ingest::{CamReport, IngestConfig};
    use ld_ufld::UfldConfig;
    use std::collections::VecDeque;

    fn tiny_streams(n: usize) -> StreamSet {
        StreamSet::fleet(
            Benchmark::MoLane,
            frame_spec_for(&UfldConfig::tiny(2)),
            n,
            12,
            5,
        )
    }

    fn tiny_spec() -> ShardSpec {
        ShardSpec {
            server: ServerConfig::new(LdBnAdaptConfig::paper(1), GovernorConfig::default(), 8)
                .with_bn_banks(),
            ufld: UfldConfig::tiny(2),
            model_seed: 0xF1EE7,
            ingest: IngestConfig::new(1_000_000).without_jitter(),
            workers: 1,
            realtime: false,
        }
    }

    #[test]
    fn contiguous_assignment_splits_evenly_and_parks_headroom() {
        let a = Fleet::contiguous_assignment(5, 2, 4);
        assert_eq!(
            a,
            vec![
                vec![Some(0), Some(1), Some(2), None],
                vec![Some(3), Some(4), None, None],
            ]
        );
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn assignment_rejects_overflowing_fleets() {
        Fleet::contiguous_assignment(9, 2, 4);
    }

    /// A scripted transport: records submitted commands, answers from a
    /// queue — lets the router/rebalancer logic be tested without serving.
    struct MockShard {
        submitted: Vec<String>,
        responses: VecDeque<ShardResponse>,
    }

    impl MockShard {
        fn new(responses: Vec<ShardResponse>) -> Box<Self> {
            Box::new(MockShard {
                submitted: Vec::new(),
                responses: responses.into(),
            })
        }
    }

    impl ShardTransport for MockShard {
        fn submit(&mut self, cmd: ShardCommand) {
            self.submitted.push(format!("{cmd:?}"));
        }
        fn receive(&mut self) -> ShardResponse {
            self.responses.pop_front().expect("mock: script exhausted")
        }
    }

    fn served(frames_l2: &[(usize, f32)], produced: u64, age_p99_ns: u64) -> ShardResponse {
        let per_stream = frames_l2
            .iter()
            .map(|&(frames, l2)| StreamReport {
                frames,
                bank: Some(ld_adapt::server::BankTelemetry {
                    l2_from_init: l2,
                    ..Default::default()
                }),
                ..Default::default()
            })
            .collect();
        let per_cam = vec![
            CamReport {
                produced,
                ..Default::default()
            };
            1
        ];
        ShardResponse::Served {
            serve: Box::new(ServeReport {
                per_stream,
                server: ServerStats::default(),
            }),
            ingest: IngestReport {
                ticks: 8,
                tick_overruns: 0,
                per_cam,
                age_p50_ns: age_p99_ns / 2,
                age_p99_ns,
            },
        }
    }

    #[test]
    fn rebalancer_moves_the_cheapest_camera_to_the_coolest_shard() {
        // Shard 0: two cams, serving 25 of 100 offered frames, stale.
        // Shard 1: one cam, keeping up, with headroom.
        let hot = served(&[(15, 0.8), (10, 0.2)], 100, 3_000_000);
        let detached_packet = {
            // A real packet requires a serving stack; script the detach
            // through a live single-slot shard instead.
            let streams = tiny_streams(4);
            let mut shard = InProcessShard::spawn(9, &tiny_spec(), &streams, vec![Some(1), None]);
            shard.submit(ShardCommand::Detach {
                local: 0,
                cam_tag: 1,
            });
            match shard.receive() {
                ShardResponse::Detached(p) => p,
                other => panic!("unexpected {other:?}"),
            }
        };
        let cool = served(&[(8, 0.0)], 8, 200_000);
        let cfg = FleetConfig::new(tiny_spec(), 2, 2);
        let shard0 = MockShard::new(vec![hot, ShardResponse::Detached(detached_packet)]);
        let shard1 = MockShard::new(vec![cool, ShardResponse::Attached { slot: 1 }]);
        let assignment = vec![vec![Some(0), Some(1)], vec![Some(2), None]];
        let mut fleet = Fleet::over_transports(&cfg, vec![shard0, shard1], assignment);
        fleet.run(8);
        assert!(fleet.pressure(0) > fleet.pressure(1) + 0.25);

        let record = fleet.rebalance().expect("gap exceeds threshold");
        // Slot 1 held the cheaper bank (l2 0.2 < 0.8) → camera 1 moves.
        assert_eq!(
            (record.global, record.from_shard, record.to_shard),
            (1, 0, 1)
        );
        assert_eq!(record.to_slot, 1);
        assert!(record.bank_bytes > 0);
        assert_eq!(fleet.locate(1), Some((1, 1)));
        assert_eq!(fleet.assignment()[0], vec![Some(0), None]);
        assert_eq!(fleet.migrations().len(), 1);
        assert_eq!(fleet.report().migrations.len(), 1);
    }

    #[test]
    fn balanced_fleets_do_not_rebalance() {
        let cfg = FleetConfig::new(tiny_spec(), 2, 2);
        let shard0 = MockShard::new(vec![served(&[(8, 0.1)], 8, 200_000)]);
        let shard1 = MockShard::new(vec![served(&[(8, 0.1)], 8, 200_000)]);
        let assignment = vec![vec![Some(0), None], vec![Some(1), None]];
        let mut fleet = Fleet::over_transports(&cfg, vec![shard0, shard1], assignment);
        fleet.run(8);
        assert!(fleet.rebalance().is_none());
    }

    /// End-to-end smoke over real in-process shards: a 2-shard fleet
    /// serves, reports, and shuts down cleanly.
    #[test]
    fn in_process_fleet_serves_and_reports() {
        let streams = tiny_streams(4);
        let cfg = FleetConfig::new(tiny_spec(), 2, 3);
        let mut fleet = Fleet::launch(&cfg, &streams);
        assert_eq!(fleet.num_shards(), 2);
        assert_eq!(fleet.locate(3), Some((1, 1)));
        let report = fleet.run(4);
        assert_eq!(report.ticks, 4);
        let total = report.rollup();
        assert_eq!(total.cams, 4);
        assert!(
            total.served_frames >= 8,
            "4 cams x 4 nominal ticks must serve: {report}"
        );
        assert_eq!(total.offered_frames, 16);
        fleet.shutdown();
        fleet.shutdown(); // idempotent
    }
}
