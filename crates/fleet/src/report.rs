//! Fleet telemetry: per-shard rollups, the migration log, the rendered
//! report table, and the fleet's exported tick traces.

use ld_obs::{Span, StageRollup, TickTrace, TraceGroup};
use std::fmt;

/// One shard's serving + backpressure rollup (cumulative over the fleet's
/// lifetime; every ratio the rebalancer uses is derived from these).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardSummary {
    /// Shard index.
    pub shard: usize,
    /// Occupied (non-parked) slots.
    pub cams: usize,
    /// Frames served into batches.
    pub served_frames: usize,
    /// Frames offered at ingest (produced into mailboxes).
    pub offered_frames: u64,
    /// Frames drained out of the mailboxes.
    pub delivered_frames: u64,
    /// Frames lost at ingest (evictions + latest-wins skips).
    pub dropped_frames: u64,
    /// Shared adaptation steps taken by the shard's server.
    pub adapt_steps: usize,
    /// Drained-frame age p99, ns.
    pub age_p99_ns: u64,
    /// Ticks accounted by the shard's front end.
    pub ticks: usize,
    /// Ticks whose busy time exceeded the tick period.
    pub tick_overruns: usize,
    /// [`ld_orin::ShardPressure`] score at report time.
    pub pressure: f64,
}

impl ShardSummary {
    /// Served frames over offered frames (1.0 when nothing was offered).
    pub fn served_over_offered(&self) -> f64 {
        if self.offered_frames == 0 {
            1.0
        } else {
            self.served_frames as f64 / self.offered_frames as f64
        }
    }
}

/// One completed migration, tick-stamped against the fleet clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationRecord {
    /// Fleet ticks completed when the migration ran (migrations happen
    /// *between* serving calls, so this is exact).
    pub at_tick: usize,
    /// Global camera id moved.
    pub global: usize,
    /// Source shard.
    pub from_shard: usize,
    /// Slot vacated on the source shard.
    pub from_slot: usize,
    /// Destination shard.
    pub to_shard: usize,
    /// Slot occupied on the destination shard.
    pub to_slot: usize,
    /// Size of the live bank's tagged `LDBK` bytes that travelled.
    pub bank_bytes: usize,
    /// Blessed-snapshot tick carried in the bank metadata (`None` if the
    /// stream was never blessed on the source shard).
    pub blessed_tick: Option<u64>,
    /// Ingest frames discarded in flight by the detach.
    pub dropped_in_flight: u64,
}

/// The fleet-wide report: per-shard summaries plus the migration log.
/// `Display` renders the operator table (see the `--fleet` example).
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// Fleet ticks completed.
    pub ticks: usize,
    /// One summary per shard.
    pub per_shard: Vec<ShardSummary>,
    /// Every migration so far, in order.
    pub migrations: Vec<MigrationRecord>,
}

impl FleetReport {
    /// Fleet-wide totals (ages/pressure roll up as maxima — the fleet is
    /// as stale and as pressured as its worst shard; `shard` is the shard
    /// count).
    pub fn rollup(&self) -> ShardSummary {
        let mut total = ShardSummary {
            shard: self.per_shard.len(),
            ..ShardSummary::default()
        };
        for s in &self.per_shard {
            total.cams += s.cams;
            total.served_frames += s.served_frames;
            total.offered_frames += s.offered_frames;
            total.delivered_frames += s.delivered_frames;
            total.dropped_frames += s.dropped_frames;
            total.adapt_steps += s.adapt_steps;
            total.age_p99_ns = total.age_p99_ns.max(s.age_p99_ns);
            total.ticks = total.ticks.max(s.ticks);
            total.tick_overruns += s.tick_overruns;
            total.pressure = total.pressure.max(s.pressure);
        }
        total
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>6} {:>5} {:>7} {:>8} {:>7} {:>8} {:>6} {:>11} {:>9} {:>9}",
            "shard",
            "cams",
            "served",
            "offered",
            "ratio",
            "dropped",
            "adapt",
            "age_p99_ms",
            "overruns",
            "pressure"
        )?;
        let row = |f: &mut fmt::Formatter<'_>, label: &str, s: &ShardSummary| {
            writeln!(
                f,
                "{:>6} {:>5} {:>7} {:>8} {:>7.3} {:>8} {:>6} {:>11.3} {:>9} {:>9.3}",
                label,
                s.cams,
                s.served_frames,
                s.offered_frames,
                s.served_over_offered(),
                s.dropped_frames,
                s.adapt_steps,
                s.age_p99_ns as f64 / 1e6,
                s.tick_overruns,
                s.pressure
            )
        };
        for s in &self.per_shard {
            row(f, &s.shard.to_string(), s)?;
        }
        row(f, "fleet", &self.rollup())?;
        writeln!(f, "migrations ({}):", self.migrations.len())?;
        for m in &self.migrations {
            writeln!(
                f,
                "  tick {:>4}  cam {:>3}: shard {}/slot {} -> shard {}/slot {}  \
                 (bank {} B, blessed @ {}, {} in flight)",
                m.at_tick,
                m.global,
                m.from_shard,
                m.from_slot,
                m.to_shard,
                m.to_slot,
                m.bank_bytes,
                m.blessed_tick
                    .map_or_else(|| "never".to_string(), |t| t.to_string()),
                m.dropped_in_flight
            )?;
        }
        Ok(())
    }
}

/// The fleet's exported tick traces: one Perfetto process group per shard
/// (pid `k+1`, named `shard{k}`) plus a `fleet` group (pid 0) whose
/// timeline carries one `fleet.migrate` marker span per migration. A pure
/// value — rendering it is deterministic, so two identical manual-clock
/// runs export byte-identical traces (pinned by `tests/obs_tracing.rs`).
#[derive(Debug, Clone, Default)]
pub struct FleetTraces {
    /// The trace groups, fleet first then shards in index order.
    pub groups: Vec<TraceGroup>,
}

impl FleetTraces {
    /// Assembles the groups from per-shard tick traces, the migration log,
    /// and the fleet tick period (which places each migration on the fleet
    /// timeline: migrations run *between* serving calls, so the tick
    /// boundary is exact).
    pub fn new(
        per_shard: Vec<Vec<TickTrace>>,
        migrations: &[MigrationRecord],
        tick_period_ns: u64,
    ) -> Self {
        let fleet_ticks = migrations
            .iter()
            .map(|m| {
                let at_ns = m.at_tick as u64 * tick_period_ns;
                TickTrace {
                    tick: m.at_tick as u64,
                    start_ns: at_ns,
                    spans: vec![Span {
                        stage: "fleet.migrate",
                        start_ns: at_ns,
                        dur_ns: 0,
                        args: vec![
                            ("cam", m.global as i64),
                            ("from_shard", m.from_shard as i64),
                            ("to_shard", m.to_shard as i64),
                            ("bank_bytes", m.bank_bytes as i64),
                            ("dropped_in_flight", m.dropped_in_flight as i64),
                        ],
                    }],
                    ..TickTrace::default()
                }
            })
            .collect();
        let mut groups = vec![TraceGroup {
            pid: 0,
            name: "fleet".to_string(),
            ticks: fleet_ticks,
        }];
        for (k, ticks) in per_shard.into_iter().enumerate() {
            groups.push(TraceGroup {
                pid: k as u32 + 1,
                name: format!("shard{k}"),
                ticks,
            });
        }
        FleetTraces { groups }
    }

    /// The Chrome/Perfetto trace-event JSON of the whole fleet run.
    pub fn perfetto_json(&self) -> String {
        ld_obs::perfetto_json(&self.groups)
    }

    /// The flat per-stage rollup across every shard's ticks (its `Display`
    /// is the operator table the `--trace` example prints).
    pub fn rollup(&self) -> StageRollup {
        StageRollup::from_groups(&self.groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_traces_group_shards_and_migrations() {
        let shard_ticks = vec![
            vec![TickTrace {
                tick: 0,
                busy_ns: 5,
                frames: 1,
                ..TickTrace::default()
            }],
            Vec::new(),
        ];
        let migration = MigrationRecord {
            at_tick: 3,
            global: 1,
            from_shard: 0,
            from_slot: 1,
            to_shard: 1,
            to_slot: 0,
            bank_bytes: 128,
            blessed_tick: None,
            dropped_in_flight: 2,
        };
        let traces = FleetTraces::new(shard_ticks, &[migration], 1_000_000);
        assert_eq!(traces.groups.len(), 3);
        assert_eq!(traces.groups[0].name, "fleet");
        assert_eq!(traces.groups[0].ticks[0].spans[0].stage, "fleet.migrate");
        assert_eq!(traces.groups[0].ticks[0].start_ns, 3_000_000);
        assert_eq!(traces.groups[2].name, "shard1");
        let json = traces.perfetto_json();
        assert!(json.contains("fleet.migrate"));
        assert!(json.contains("\"bank_bytes\":128"));
        assert_eq!(json, traces.perfetto_json());
    }

    #[test]
    fn rollup_sums_counters_and_maxes_pressure() {
        let report = FleetReport {
            ticks: 8,
            per_shard: vec![
                ShardSummary {
                    shard: 0,
                    cams: 3,
                    served_frames: 20,
                    offered_frames: 60,
                    delivered_frames: 25,
                    dropped_frames: 35,
                    adapt_steps: 7,
                    age_p99_ns: 2_000_000,
                    ticks: 8,
                    tick_overruns: 1,
                    pressure: 0.9,
                },
                ShardSummary {
                    shard: 1,
                    cams: 1,
                    served_frames: 8,
                    offered_frames: 8,
                    delivered_frames: 8,
                    dropped_frames: 0,
                    adapt_steps: 2,
                    age_p99_ns: 400_000,
                    ticks: 8,
                    tick_overruns: 0,
                    pressure: 0.0,
                },
            ],
            migrations: vec![MigrationRecord {
                at_tick: 4,
                global: 2,
                from_shard: 0,
                from_slot: 2,
                to_shard: 1,
                to_slot: 1,
                bank_bytes: 420,
                blessed_tick: Some(3),
                dropped_in_flight: 0,
            }],
        };
        let total = report.rollup();
        assert_eq!(total.cams, 4);
        assert_eq!(total.served_frames, 28);
        assert_eq!(total.offered_frames, 68);
        assert_eq!(total.pressure, 0.9);
        assert_eq!(total.age_p99_ns, 2_000_000);
        let text = report.to_string();
        assert!(text.contains("fleet"), "{text}");
        assert!(
            text.contains("cam   2: shard 0/slot 2 -> shard 1/slot 1"),
            "{text}"
        );
        assert!(text.contains("blessed @ 3"), "{text}");
    }

    #[test]
    fn empty_offer_counts_as_fully_served() {
        assert_eq!(ShardSummary::default().served_over_offered(), 1.0);
    }
}
