//! The shard transport: command/response protocol plus the in-process
//! shard implementation.
//!
//! The protocol is deliberately *socket-shaped*: a shard is driven through
//! an ordered pair of [`ShardTransport::submit`] / [`ShardTransport::receive`]
//! calls, one response per command, and the control plane fans commands
//! out to every shard before collecting any response — so K shards serve
//! their ticks concurrently even though each transport call is blocking.
//! The in-process realisation ([`InProcessShard`]) is a dedicated thread
//! with two mpsc channels; a future TCP realisation would serialize
//! [`ShardCommand`] frames instead, shipping the `MigrationPacket`'s
//! `LDBK` bytes verbatim (they are already the wire format) and degrading
//! the ingest half to a rebuild-by-global-id (see the crate docs).

use ld_adapt::{AdaptServer, ServeReport, ServerConfig, StreamSnapshot};
use ld_carlane::StreamSet;
use ld_ingest::{CamHandoff, IngestConfig, IngestFrontEnd, IngestReport};
use ld_tensor::parallel::{with_pool, WorkerPool};
use ld_ufld::{UfldConfig, UfldModel};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// Everything one shard needs to build its serving stack. Every shard of a
/// fleet gets the same spec (same deployed model, same serving policy);
/// only the slot map differs.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Server policy. Migration requires BN-bank mode
    /// (`ServerConfig::with_bn_banks`).
    pub server: ServerConfig,
    /// Model architecture of the shared deployment.
    pub ufld: UfldConfig,
    /// Model weight seed — identical across shards: a fleet serves one
    /// deployed model.
    pub model_seed: u64,
    /// Ingest front-end settings (tick period, mailbox policy, loads).
    pub ingest: IngestConfig,
    /// Worker threads in the shard's private compute pool (the pool width
    /// never affects serving bytes — only wall-clock).
    pub workers: usize,
    /// Drive the front end on the real clock instead of the deterministic
    /// manual clock.
    pub realtime: bool,
}

/// A camera's complete state in flight between shards: the ingest half
/// (producer schedule/cursor/sequence) and the server half (banks as
/// tagged `LDBK` v2 bytes + momentum). See the crate docs for the
/// bitwise-preservation contract.
#[derive(Debug)]
pub struct MigrationPacket {
    /// Ingest handoff ([`IngestFrontEnd::detach_cam`]).
    pub handoff: CamHandoff,
    /// Adaptation-state snapshot ([`AdaptServer::detach_stream`]).
    pub snapshot: StreamSnapshot,
}

/// One command to a shard. Every command produces exactly one
/// [`ShardResponse`].
#[derive(Debug)]
pub enum ShardCommand {
    /// Serve `ticks` ingest ticks.
    Run {
        /// Tick count.
        ticks: usize,
    },
    /// Detach the camera on local slot `local`, tagging its bank bytes
    /// with `cam_tag` (the fleet-global camera id).
    Detach {
        /// Shard-local slot.
        local: usize,
        /// Fleet-global camera tag for the `LDBK` metadata.
        cam_tag: u64,
    },
    /// Attach a migrated camera onto the lowest parked slot.
    Attach {
        /// The camera state in flight.
        packet: Box<MigrationPacket>,
    },
    /// Drain the shard's accumulated tick traces (empty unless the spec's
    /// `ServerConfig` enables observability).
    ExportTrace,
    /// Stop producers and exit the shard loop.
    Shutdown,
}

/// One shard response (see [`ShardCommand`]).
#[derive(Debug)]
pub enum ShardResponse {
    /// `Run` result: the serving report plus the front end's cumulative
    /// backpressure report (ages, overruns — the rebalancer's signal).
    Served {
        /// Per-stream serving outcome.
        serve: Box<ServeReport>,
        /// Ingest backpressure telemetry.
        ingest: IngestReport,
    },
    /// `Detach` result.
    Detached(Box<MigrationPacket>),
    /// `Attach` result: the local slot the camera landed on.
    Attached {
        /// Shard-local slot.
        slot: usize,
    },
    /// `ExportTrace` result: the tick traces accumulated since the last
    /// export, in tick order.
    Trace(Vec<ld_obs::TickTrace>),
    /// `Shutdown` acknowledged.
    Stopped,
}

/// Blocking, ordered command transport to one shard (see the module docs
/// for the pipelining contract).
pub trait ShardTransport: Send {
    /// Enqueues one command. Returns immediately; the shard processes
    /// commands in order.
    fn submit(&mut self, cmd: ShardCommand);

    /// Blocks for the next response. Responses arrive in command order.
    fn receive(&mut self) -> ShardResponse;
}

/// A shard on a dedicated in-process thread (see the crate docs for the
/// shard contract). Dropping the handle stops the thread; prefer an
/// explicit [`ShardCommand::Shutdown`] through the fleet so real-time
/// producers stop deterministically.
#[derive(Debug)]
pub struct InProcessShard {
    cmd_tx: Option<Sender<ShardCommand>>,
    resp_rx: Receiver<ShardResponse>,
    thread: Option<JoinHandle<()>>,
}

impl InProcessShard {
    /// Spawns shard `shard` serving `slots` (local slot → global camera,
    /// `None` = parked headroom) over `streams`.
    ///
    /// # Panics
    ///
    /// Panics if the thread cannot be spawned. Invalid specs (bad slot
    /// map, non-bank server config on a later detach) surface as panics on
    /// the shard thread, which in turn close the transport.
    pub fn spawn(
        shard: usize,
        spec: &ShardSpec,
        streams: &StreamSet,
        slots: Vec<Option<usize>>,
    ) -> Self {
        let (cmd_tx, cmd_rx) = channel();
        let (resp_tx, resp_rx) = channel();
        let spec = spec.clone();
        let streams = streams.clone();
        let thread = std::thread::Builder::new()
            .name(format!("ld-fleet-shard{shard}"))
            .spawn(move || shard_main(spec, streams, slots, cmd_rx, resp_tx))
            .expect("InProcessShard: spawn failed");
        InProcessShard {
            cmd_tx: Some(cmd_tx),
            resp_rx,
            thread: Some(thread),
        }
    }
}

impl ShardTransport for InProcessShard {
    fn submit(&mut self, cmd: ShardCommand) {
        self.cmd_tx
            .as_ref()
            .expect("InProcessShard: transport closed")
            .send(cmd)
            .expect("InProcessShard: shard thread is gone");
    }

    fn receive(&mut self) -> ShardResponse {
        self.resp_rx
            .recv()
            .expect("InProcessShard: shard thread is gone")
    }
}

impl Drop for InProcessShard {
    fn drop(&mut self) {
        // Closing the command channel ends the shard loop; join so shard
        // teardown (producer shutdown) finishes before the handle dies.
        drop(self.cmd_tx.take());
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The shard thread body: build the serving stack inside the shard's
/// private pool binding, then process commands until shutdown or
/// transport close.
fn shard_main(
    spec: ShardSpec,
    streams: StreamSet,
    slots: Vec<Option<usize>>,
    cmd_rx: Receiver<ShardCommand>,
    resp_tx: Sender<ShardResponse>,
) {
    let pool = WorkerPool::new(spec.workers);
    with_pool(&pool, || {
        let mut model = UfldModel::new(&spec.ufld, spec.model_seed);
        let mut server = AdaptServer::new(spec.server.clone(), slots.len(), &mut model);
        let mut ingest = if spec.realtime {
            IngestFrontEnd::realtime_routed(&streams, &spec.ingest, &slots)
        } else {
            IngestFrontEnd::manual_routed(&streams, &spec.ingest, &slots)
        };
        while let Ok(cmd) = cmd_rx.recv() {
            let resp = match cmd {
                ShardCommand::Run { ticks } => {
                    let serve = server.serve_ingest(&mut model, &mut ingest, ticks);
                    ShardResponse::Served {
                        serve: Box::new(serve),
                        ingest: ingest.report(),
                    }
                }
                ShardCommand::Detach { local, cam_tag } => {
                    let handoff = ingest.detach_cam(local);
                    let snapshot = server.detach_stream(local, cam_tag);
                    ShardResponse::Detached(Box::new(MigrationPacket { handoff, snapshot }))
                }
                ShardCommand::Attach { packet } => {
                    let MigrationPacket { handoff, snapshot } = *packet;
                    let slot = ingest.attach_cam(&streams, handoff);
                    server.attach_stream(slot, snapshot);
                    ShardResponse::Attached { slot }
                }
                ShardCommand::ExportTrace => ShardResponse::Trace(server.take_traces()),
                ShardCommand::Shutdown => {
                    ingest.shutdown();
                    let _ = resp_tx.send(ShardResponse::Stopped);
                    break;
                }
            };
            if resp_tx.send(resp).is_err() {
                break; // control plane is gone
            }
        }
        ingest.shutdown();
    });
}
