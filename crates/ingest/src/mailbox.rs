//! The per-camera frame mailbox: a lock-free bounded ring buffer.
//!
//! One camera producer pushes frames on its own jittered clock; the serving
//! loop drains at tick boundaries. The queue between them must be
//! *wait-bounded* (a slow consumer must never block the camera) and its
//! drops must be *observable* (a shed frame is an accounting event, not a
//! silent loss). Both requirements rule out a mutexed `VecDeque`:
//!
//! * [`Mailbox::push`] never fails and never blocks — on a full ring the
//!   **oldest** queued frame is evicted (cameras produce strictly fresher
//!   data; keeping stale frames while dropping fresh ones would invert the
//!   real-time contract), and the eviction is counted.
//! * The consumer side is policy-driven ([`OverflowPolicy`]):
//!   [`OverflowPolicy::DropOldest`] pops FIFO, for servers that want every
//!   frame they can afford; [`OverflowPolicy::LatestWins`] drains to the
//!   newest frame, counting everything older as skipped — the classic
//!   "current camera image" semantics.
//!
//! The implementation is a bounded ring with per-slot sequence counters
//! (Vyukov's bounded-queue scheme). Slot sequence numbers, not head/tail
//! comparison, decide slot ownership, which is what lets the *producer*
//! evict the oldest element with a plain CAS on the dequeue cursor — the
//! one operation a pure SPSC ring cannot express — while staying lock-free
//! on every path.
//!
//! Frame-level drop observability is layered on top: producers stamp every
//! frame with a per-camera sequence number, and [`SeqTracker`] converts the
//! gaps the consumer observes into a drop count, no matter where in the
//! pipeline the frame was lost.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// What a full mailbox (and its consumer) does with surplus frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// The consumer only ever wants the newest frame:
    /// [`Mailbox::pop_policy`] drains the ring and returns the most recent
    /// item, counting everything older as skipped.
    #[default]
    LatestWins,
    /// FIFO ring: the consumer pops in arrival order; overflow evicts the
    /// oldest queued item at push time (counted by
    /// [`Mailbox::overflow_drops`]).
    DropOldest,
}

/// One ring slot: a sequence counter arbitrating ownership plus the value.
struct Slot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Pads the hot cursors to their own cache lines so the producer's enqueue
/// cursor and the consumer's dequeue cursor do not false-share.
#[repr(align(64))]
struct Padded(AtomicUsize);

/// A lock-free bounded frame queue (see the module docs).
///
/// Capacity is rounded up to a power of two, minimum 2. `push` is intended
/// for a single producer and `pop`/`pop_policy` for a single consumer
/// (per-camera SPSC); the slot-sequence scheme itself tolerates the
/// producer-side eviction racing the consumer's pop.
///
/// # Example
///
/// ```
/// use ld_ingest::{Mailbox, OverflowPolicy};
///
/// let mb = Mailbox::new(2, OverflowPolicy::DropOldest);
/// mb.push(1);
/// mb.push(2);
/// mb.push(3); // full: evicts 1
/// assert_eq!(mb.overflow_drops(), 1);
/// assert_eq!(mb.pop(), Some(2));
/// assert_eq!(mb.pop(), Some(3));
/// assert_eq!(mb.pop(), None);
/// ```
pub struct Mailbox<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    policy: OverflowPolicy,
    enqueue_pos: Padded,
    dequeue_pos: Padded,
    overflow_drops: AtomicUsize,
    pushed: AtomicUsize,
}

// SAFETY: values move between threads through the ring exactly once each
// (slot sequence numbers arbitrate ownership), so `T: Send` suffices; the
// UnsafeCell is only touched by the thread that won the slot's CAS.
unsafe impl<T: Send> Send for Mailbox<T> {}
unsafe impl<T: Send> Sync for Mailbox<T> {}

impl<T> Mailbox<T> {
    /// Creates a mailbox holding at most `capacity` items (rounded up to a
    /// power of two, minimum 2 — the slot-sequence scheme needs one slot of
    /// slack to distinguish full from empty).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, policy: OverflowPolicy) -> Self {
        assert!(capacity > 0, "Mailbox: zero capacity");
        let cap = capacity.next_power_of_two().max(2);
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Mailbox {
            slots,
            mask: cap - 1,
            policy,
            enqueue_pos: Padded(AtomicUsize::new(0)),
            dequeue_pos: Padded(AtomicUsize::new(0)),
            overflow_drops: AtomicUsize::new(0),
            pushed: AtomicUsize::new(0),
        }
    }

    /// Actual ring capacity after rounding.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The consumer-side overflow policy.
    pub fn policy(&self) -> OverflowPolicy {
        self.policy
    }

    /// Items currently queued (exact when quiescent; a snapshot under
    /// concurrency).
    pub fn len(&self) -> usize {
        let tail = self.enqueue_pos.0.load(Ordering::Acquire);
        let head = self.dequeue_pos.0.load(Ordering::Acquire);
        tail.saturating_sub(head)
    }

    /// Whether the mailbox is currently empty (same caveat as [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Items evicted at push time because the ring was full.
    pub fn overflow_drops(&self) -> usize {
        self.overflow_drops.load(Ordering::Acquire)
    }

    /// Total items ever pushed.
    pub fn pushed(&self) -> usize {
        self.pushed.load(Ordering::Acquire)
    }

    /// Enqueues `value`. Never blocks and never fails: a full ring evicts
    /// its oldest item (counted by [`Mailbox::overflow_drops`]).
    pub fn push(&self, value: T) {
        self.pushed.fetch_add(1, Ordering::AcqRel);
        let mut value = value;
        loop {
            match self.try_push(value) {
                Ok(()) => return,
                Err(v) => {
                    // Full: evict the oldest queued item to make room. If
                    // the consumer raced us and emptied the ring, the retry
                    // simply succeeds.
                    if self.try_pop().is_some() {
                        self.overflow_drops.fetch_add(1, Ordering::AcqRel);
                    }
                    value = v;
                }
            }
        }
    }

    /// Enqueue attempt; returns the value back if the ring is full.
    fn try_push(&self, value: T) -> Result<(), T> {
        let mut pos = self.enqueue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                match self.enqueue_pos.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS grants exclusive write
                        // ownership of this slot until the seq store below
                        // publishes it.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(now) => pos = now,
                }
            } else if diff < 0 {
                return Err(value); // full
            } else {
                pos = self.enqueue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest item, if any (FIFO).
    fn try_pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos.wrapping_add(1) as isize;
            if diff == 0 {
                match self.dequeue_pos.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS grants exclusive read
                        // ownership; the slot was fully written before its
                        // seq advanced to pos + 1.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(value);
                    }
                    Err(now) => pos = now,
                }
            } else if diff < 0 {
                return None; // empty
            } else {
                pos = self.dequeue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// FIFO pop (both policies share it; [`OverflowPolicy::LatestWins`]
    /// consumers normally use [`Mailbox::pop_policy`]).
    pub fn pop(&self) -> Option<T> {
        self.try_pop()
    }

    /// The policy-driven consumer entry: returns the next item plus how
    /// many queued items were skipped to get it (always 0 under
    /// [`OverflowPolicy::DropOldest`]; the count of superseded older frames
    /// under [`OverflowPolicy::LatestWins`]).
    pub fn pop_policy(&self) -> Option<(T, usize)> {
        match self.policy {
            OverflowPolicy::DropOldest => self.try_pop().map(|v| (v, 0)),
            OverflowPolicy::LatestWins => {
                let mut newest = self.try_pop()?;
                let mut skipped = 0;
                while let Some(next) = self.try_pop() {
                    newest = next;
                    skipped += 1;
                }
                Some((newest, skipped))
            }
        }
    }
}

impl<T> Drop for Mailbox<T> {
    fn drop(&mut self) {
        while self.try_pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for Mailbox<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mailbox")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("policy", &self.policy)
            .field("overflow_drops", &self.overflow_drops())
            .field("pushed", &self.pushed())
            .finish()
    }
}

/// Consumer-side sequence-gap accounting: feed it the per-camera sequence
/// number of every frame actually received, and it tallies the frames that
/// went missing in between — no matter whether they were evicted at push,
/// skipped by a `LatestWins` drain, or lost anywhere else upstream.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqTracker {
    last: Option<u64>,
    gaps: u64,
    observed: u64,
}

impl SeqTracker {
    /// Fresh tracker (no frames observed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records receipt of `seq`; returns the gap since the previously
    /// observed sequence number (0 when consecutive).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not strictly greater than the last observed
    /// sequence number (producers stamp monotonically).
    pub fn observe(&mut self, seq: u64) -> u64 {
        let gap = match self.last {
            None => seq, // frames 0..seq never arrived
            Some(prev) => {
                assert!(
                    seq > prev,
                    "SeqTracker: non-monotonic seq {seq} after {prev}"
                );
                seq - prev - 1
            }
        };
        self.last = Some(seq);
        self.gaps += gap;
        self.observed += 1;
        gap
    }

    /// Total frames that went missing (sum of observed gaps).
    pub fn dropped(&self) -> u64 {
        self.gaps
    }

    /// Total frames received.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Highest sequence number seen so far.
    pub fn last_seq(&self) -> Option<u64> {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_roundtrip_and_wraparound() {
        let mb = Mailbox::new(4, OverflowPolicy::DropOldest);
        // Push/pop far past the ring size so every slot wraps many times.
        for round in 0u64..100 {
            mb.push(round * 2);
            mb.push(round * 2 + 1);
            assert_eq!(mb.pop(), Some(round * 2));
            assert_eq!(mb.pop(), Some(round * 2 + 1));
            assert_eq!(mb.pop(), None);
        }
        assert_eq!(mb.overflow_drops(), 0);
        assert_eq!(mb.pushed(), 200);
    }

    #[test]
    fn overflow_evicts_oldest_under_drop_oldest() {
        let mb = Mailbox::new(2, OverflowPolicy::DropOldest);
        for v in 0..5 {
            mb.push(v);
        }
        assert_eq!(mb.overflow_drops(), 3, "capacity 2, 5 pushes");
        // The survivors are the two newest, in order.
        assert_eq!(mb.pop(), Some(3));
        assert_eq!(mb.pop(), Some(4));
        assert_eq!(mb.pop(), None);
    }

    #[test]
    fn latest_wins_drains_to_the_newest() {
        let mb = Mailbox::new(8, OverflowPolicy::LatestWins);
        for v in 10..14 {
            mb.push(v);
        }
        let (newest, skipped) = mb.pop_policy().expect("non-empty");
        assert_eq!((newest, skipped), (13, 3));
        assert!(mb.pop_policy().is_none());
        // A single queued item skips nothing.
        mb.push(99);
        assert_eq!(mb.pop_policy(), Some((99, 0)));
    }

    #[test]
    fn capacity_rounds_up_and_len_tracks() {
        let mb = Mailbox::<u32>::new(3, OverflowPolicy::DropOldest);
        assert_eq!(mb.capacity(), 4);
        assert!(mb.is_empty());
        mb.push(1);
        mb.push(2);
        assert_eq!(mb.len(), 2);
        mb.pop();
        assert_eq!(mb.len(), 1);
    }

    #[test]
    #[should_panic(expected = "zero capacity")]
    fn rejects_zero_capacity() {
        Mailbox::<u32>::new(0, OverflowPolicy::LatestWins);
    }

    #[test]
    fn drops_queued_values_without_leaking() {
        // Drop-counting payload: the ring must drop exactly the un-popped
        // values when the mailbox itself is dropped.
        struct Counted(Arc<std::sync::atomic::AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
            }
        }
        let drops = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mb = Mailbox::new(4, OverflowPolicy::DropOldest);
        for _ in 0..3 {
            mb.push(Counted(drops.clone()));
        }
        drop(mb.pop());
        drop(mb);
        assert_eq!(drops.load(std::sync::atomic::Ordering::Acquire), 3);
    }

    /// Interleaving stress: a real producer thread races the consumer
    /// through thousands of push/pop cycles on a tiny ring. Every value
    /// must be either received or accounted as dropped — no loss, no
    /// duplication, FIFO order preserved among the received.
    #[test]
    fn concurrent_producer_consumer_accounts_for_every_item() {
        for trial in 0..4 {
            let mb = Arc::new(Mailbox::new(4, OverflowPolicy::DropOldest));
            let total = 20_000u64;
            let producer = {
                let mb = mb.clone();
                std::thread::spawn(move || {
                    for v in 0..total {
                        mb.push(v);
                        if v % 97 == 0 {
                            std::thread::yield_now();
                        }
                    }
                })
            };
            let mut tracker = SeqTracker::new();
            let mut received = 0u64;
            let mut done = false;
            while !done {
                done = producer.is_finished();
                while let Some(v) = mb.pop() {
                    tracker.observe(v);
                    received += 1;
                }
            }
            producer.join().expect("producer");
            // Drain anything pushed after the last pre-join sweep.
            while let Some(v) = mb.pop() {
                tracker.observe(v);
                received += 1;
            }
            // Receipt order was strictly monotone (SeqTracker::observe
            // panics otherwise), and the books balance.
            let tail_gap = total - 1 - tracker.last_seq().expect("received something");
            assert_eq!(
                received + tracker.dropped() + tail_gap,
                total,
                "trial {trial}: received {received}, gap-dropped {}",
                tracker.dropped()
            );
            assert_eq!(tail_gap, 0, "the final push must be observed");
            assert_eq!(
                tracker.dropped() as usize,
                mb.overflow_drops(),
                "trial {trial}: every loss must be a counted eviction"
            );
        }
    }

    /// The same stress under LatestWins: the consumer's policy drain skips
    /// superseded frames; skips + evictions + receipts must cover every
    /// produced value.
    #[test]
    fn concurrent_latest_wins_accounts_for_skips() {
        let mb = Arc::new(Mailbox::new(4, OverflowPolicy::LatestWins));
        let total = 20_000u64;
        let producer = {
            let mb = mb.clone();
            std::thread::spawn(move || {
                for v in 0..total {
                    mb.push(v);
                }
            })
        };
        let mut tracker = SeqTracker::new();
        let mut received = 0u64;
        let mut skipped = 0u64;
        let mut done = false;
        while !done {
            done = producer.is_finished();
            while let Some((v, s)) = mb.pop_policy() {
                tracker.observe(v);
                received += 1;
                skipped += s as u64;
            }
        }
        producer.join().expect("producer");
        while let Some((v, s)) = mb.pop_policy() {
            tracker.observe(v);
            received += 1;
            skipped += s as u64;
        }
        assert_eq!(tracker.last_seq(), Some(total - 1));
        assert_eq!(received + tracker.dropped(), total);
        assert_eq!(
            tracker.dropped(),
            skipped + mb.overflow_drops() as u64,
            "every gap is either a policy skip or a counted eviction"
        );
    }

    #[test]
    fn seq_tracker_counts_gaps() {
        let mut t = SeqTracker::new();
        assert_eq!(t.observe(0), 0);
        assert_eq!(t.observe(1), 0);
        assert_eq!(t.observe(4), 2, "frames 2 and 3 lost");
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.observed(), 3);
        // A consumer that never saw the first frames counts them too.
        let mut late = SeqTracker::new();
        assert_eq!(late.observe(3), 3);
    }

    #[test]
    #[should_panic(expected = "non-monotonic")]
    fn seq_tracker_rejects_reordering() {
        let mut t = SeqTracker::new();
        t.observe(5);
        t.observe(5);
    }
}
