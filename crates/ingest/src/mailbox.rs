//! The per-camera frame mailbox: a lock-free bounded ring buffer.
//!
//! One camera producer pushes frames on its own jittered clock; the serving
//! loop drains at tick boundaries. The queue between them must be
//! *wait-bounded* (a slow consumer must never block the camera) and its
//! drops must be *observable* (a shed frame is an accounting event, not a
//! silent loss). Both requirements rule out a mutexed `VecDeque`:
//!
//! * [`Mailbox::push`] never fails and never blocks — on a full ring the
//!   **oldest** queued frame is evicted (cameras produce strictly fresher
//!   data; keeping stale frames while dropping fresh ones would invert the
//!   real-time contract), and the eviction is counted.
//! * The consumer side is policy-driven ([`OverflowPolicy`]):
//!   [`OverflowPolicy::DropOldest`] pops FIFO, for servers that want every
//!   frame they can afford; [`OverflowPolicy::LatestWins`] drains to the
//!   newest frame, counting everything older as skipped — the classic
//!   "current camera image" semantics.
//!
//! The implementation is a bounded ring with per-slot sequence counters
//! (Vyukov's bounded-queue scheme). Slot sequence numbers, not head/tail
//! comparison, decide slot ownership, which is what lets the *producer*
//! evict the oldest element with a plain CAS on the dequeue cursor — the
//! one operation a pure SPSC ring cannot express — while staying lock-free
//! on every path.
//!
//! Frame-level drop observability is layered on top: producers stamp every
//! frame with a per-camera sequence number, and [`SeqTracker`] converts the
//! gaps the consumer observes into a drop count, no matter where in the
//! pipeline the frame was lost.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// What a full mailbox (and its consumer) does with surplus frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// The consumer only ever wants the newest frame:
    /// [`Mailbox::pop_policy`] drains the ring and returns the most recent
    /// item, counting everything older as skipped.
    #[default]
    LatestWins,
    /// FIFO ring: the consumer pops in arrival order; overflow evicts the
    /// oldest queued item at push time (counted by
    /// [`Mailbox::overflow_drops`]).
    DropOldest,
}

/// One ring slot: a sequence counter arbitrating ownership plus the value.
struct Slot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Pads the hot cursors to their own cache lines so the producer's enqueue
/// cursor and the consumer's dequeue cursor do not false-share.
#[repr(align(64))]
struct Padded(AtomicUsize);

/// A lock-free bounded frame queue (see the module docs).
///
/// Capacity is rounded up to a power of two, minimum 2. `push` is intended
/// for a single producer and `pop`/`pop_policy` for a single consumer
/// (per-camera SPSC); the slot-sequence scheme itself tolerates the
/// producer-side eviction racing the consumer's pop.
///
/// # Example
///
/// ```
/// use ld_ingest::{Mailbox, OverflowPolicy};
///
/// let mb = Mailbox::new(2, OverflowPolicy::DropOldest);
/// mb.push(1);
/// mb.push(2);
/// mb.push(3); // full: evicts 1
/// assert_eq!(mb.overflow_drops(), 1);
/// assert_eq!(mb.pop(), Some(2));
/// assert_eq!(mb.pop(), Some(3));
/// assert_eq!(mb.pop(), None);
/// ```
pub struct Mailbox<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    policy: OverflowPolicy,
    enqueue_pos: Padded,
    dequeue_pos: Padded,
    overflow_drops: AtomicUsize,
    pushed: AtomicUsize,
}

// SAFETY: values move between threads through the ring exactly once each
// (slot sequence numbers arbitrate ownership), so `T: Send` suffices; the
// UnsafeCell is only touched by the thread that won the slot's CAS.
unsafe impl<T: Send> Send for Mailbox<T> {}
unsafe impl<T: Send> Sync for Mailbox<T> {}

impl<T> Mailbox<T> {
    /// Creates a mailbox holding at most `capacity` items (rounded up to a
    /// power of two, minimum 2 — the slot-sequence scheme needs one slot of
    /// slack to distinguish full from empty).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, policy: OverflowPolicy) -> Self {
        assert!(capacity > 0, "Mailbox: zero capacity");
        let cap = capacity.next_power_of_two().max(2);
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Mailbox {
            slots,
            mask: cap - 1,
            policy,
            enqueue_pos: Padded(AtomicUsize::new(0)),
            dequeue_pos: Padded(AtomicUsize::new(0)),
            overflow_drops: AtomicUsize::new(0),
            pushed: AtomicUsize::new(0),
        }
    }

    /// Actual ring capacity after rounding.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The consumer-side overflow policy.
    pub fn policy(&self) -> OverflowPolicy {
        self.policy
    }

    /// Items currently queued (exact when quiescent; a snapshot under
    /// concurrency).
    pub fn len(&self) -> usize {
        let tail = self.enqueue_pos.0.load(Ordering::Acquire);
        let head = self.dequeue_pos.0.load(Ordering::Acquire);
        tail.saturating_sub(head)
    }

    /// Whether the mailbox is currently empty (same caveat as [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Items evicted at push time because the ring was full.
    pub fn overflow_drops(&self) -> usize {
        self.overflow_drops.load(Ordering::Acquire)
    }

    /// Total items ever pushed.
    pub fn pushed(&self) -> usize {
        self.pushed.load(Ordering::Acquire)
    }

    /// Enqueues `value`. Never blocks and never fails: a full ring evicts
    /// its oldest item (counted by [`Mailbox::overflow_drops`]).
    pub fn push(&self, value: T) {
        self.pushed.fetch_add(1, Ordering::AcqRel);
        let mut value = value;
        loop {
            match self.try_push(value) {
                Ok(()) => return,
                Err(v) => {
                    // Full: evict the oldest queued item to make room. If
                    // the consumer raced us and emptied the ring, the retry
                    // simply succeeds.
                    if self.try_pop().is_some() {
                        self.overflow_drops.fetch_add(1, Ordering::AcqRel);
                    }
                    value = v;
                }
            }
        }
    }

    /// Enqueue attempt; returns the value back if the ring is full.
    fn try_push(&self, value: T) -> Result<(), T> {
        let mut pos = self.enqueue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                match self.enqueue_pos.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS grants exclusive write
                        // ownership of this slot until the seq store below
                        // publishes it.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(now) => pos = now,
                }
            } else if diff < 0 {
                return Err(value); // full
            } else {
                pos = self.enqueue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest item, if any (FIFO).
    fn try_pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos.wrapping_add(1) as isize;
            if diff == 0 {
                match self.dequeue_pos.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS grants exclusive read
                        // ownership; the slot was fully written before its
                        // seq advanced to pos + 1.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(value);
                    }
                    Err(now) => pos = now,
                }
            } else if diff < 0 {
                return None; // empty
            } else {
                pos = self.dequeue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// FIFO pop (both policies share it; [`OverflowPolicy::LatestWins`]
    /// consumers normally use [`Mailbox::pop_policy`]).
    pub fn pop(&self) -> Option<T> {
        self.try_pop()
    }

    /// The policy-driven consumer entry: returns the next item plus how
    /// many queued items were skipped to get it (always 0 under
    /// [`OverflowPolicy::DropOldest`]; the count of superseded older frames
    /// under [`OverflowPolicy::LatestWins`]).
    pub fn pop_policy(&self) -> Option<(T, usize)> {
        match self.policy {
            OverflowPolicy::DropOldest => self.try_pop().map(|v| (v, 0)),
            OverflowPolicy::LatestWins => {
                let mut newest = self.try_pop()?;
                let mut skipped = 0;
                while let Some(next) = self.try_pop() {
                    newest = next;
                    skipped += 1;
                }
                Some((newest, skipped))
            }
        }
    }
}

impl<T> Drop for Mailbox<T> {
    fn drop(&mut self) {
        while self.try_pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for Mailbox<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mailbox")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("policy", &self.policy)
            .field("overflow_drops", &self.overflow_drops())
            .field("pushed", &self.pushed())
            .finish()
    }
}

/// Consumer-side sequence-gap accounting: feed it the per-camera sequence
/// number of every frame actually received, and it tallies the frames that
/// went missing in between — no matter whether they were evicted at push,
/// skipped by a `LatestWins` drain, or lost anywhere else upstream.
///
/// A sequence number that does **not** increase is treated as a producer
/// restart (camera firmware reboot re-issuing low seqs), not an error: the
/// tracker opens a new epoch at `seq`, counts the restart in
/// [`SeqTracker::regressions`], and books the new epoch's startup loss
/// (frames `0..seq` of the fresh counter) as a gap — exactly what a late
/// first observation books. Frames of the *old* epoch that were still in
/// flight past the last pre-restart receipt cannot be seen by the consumer
/// and are the caller's tail-gap to account, same as at end of stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqTracker {
    last: Option<u64>,
    gaps: u64,
    observed: u64,
    regressions: u64,
}

impl SeqTracker {
    /// Fresh tracker (no frames observed).
    pub fn new() -> Self {
        Self::default()
    }

    /// A tracker primed to continue from `last`: counters start fresh, but
    /// the next observed sequence number is gapped against `last` instead
    /// of being booked as a late first observation. The migration seam — a
    /// camera re-attached to a new front end keeps exact gap accounting
    /// without importing its previous host's totals.
    pub fn resume_at(last: Option<u64>) -> Self {
        SeqTracker {
            last,
            ..Default::default()
        }
    }

    /// Records receipt of `seq`; returns the gap since the previously
    /// observed sequence number (0 when consecutive). A non-increasing
    /// `seq` opens a restart epoch: the returned gap is the fresh
    /// counter's startup loss `seq` (frames `0..seq` of the new epoch
    /// never arrived).
    pub fn observe(&mut self, seq: u64) -> u64 {
        let gap = match self.last {
            None => seq, // frames 0..seq never arrived
            Some(prev) if seq > prev => seq - prev - 1,
            Some(_) => {
                // Producer restart: the counter regressed. Same books as a
                // fresh tracker's late first observation.
                self.regressions += 1;
                seq
            }
        };
        self.last = Some(seq);
        self.gaps += gap;
        self.observed += 1;
        gap
    }

    /// Total frames that went missing (sum of observed gaps).
    pub fn dropped(&self) -> u64 {
        self.gaps
    }

    /// Total frames received.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Producer restarts detected (sequence-number regressions).
    pub fn regressions(&self) -> u64 {
        self.regressions
    }

    /// Highest sequence number seen in the current epoch.
    pub fn last_seq(&self) -> Option<u64> {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_roundtrip_and_wraparound() {
        let mb = Mailbox::new(4, OverflowPolicy::DropOldest);
        // Push/pop far past the ring size so every slot wraps many times.
        for round in 0u64..100 {
            mb.push(round * 2);
            mb.push(round * 2 + 1);
            assert_eq!(mb.pop(), Some(round * 2));
            assert_eq!(mb.pop(), Some(round * 2 + 1));
            assert_eq!(mb.pop(), None);
        }
        assert_eq!(mb.overflow_drops(), 0);
        assert_eq!(mb.pushed(), 200);
    }

    #[test]
    fn overflow_evicts_oldest_under_drop_oldest() {
        let mb = Mailbox::new(2, OverflowPolicy::DropOldest);
        for v in 0..5 {
            mb.push(v);
        }
        assert_eq!(mb.overflow_drops(), 3, "capacity 2, 5 pushes");
        // The survivors are the two newest, in order.
        assert_eq!(mb.pop(), Some(3));
        assert_eq!(mb.pop(), Some(4));
        assert_eq!(mb.pop(), None);
    }

    #[test]
    fn latest_wins_drains_to_the_newest() {
        let mb = Mailbox::new(8, OverflowPolicy::LatestWins);
        for v in 10..14 {
            mb.push(v);
        }
        let (newest, skipped) = mb.pop_policy().expect("non-empty");
        assert_eq!((newest, skipped), (13, 3));
        assert!(mb.pop_policy().is_none());
        // A single queued item skips nothing.
        mb.push(99);
        assert_eq!(mb.pop_policy(), Some((99, 0)));
    }

    #[test]
    fn capacity_rounds_up_and_len_tracks() {
        let mb = Mailbox::<u32>::new(3, OverflowPolicy::DropOldest);
        assert_eq!(mb.capacity(), 4);
        assert!(mb.is_empty());
        mb.push(1);
        mb.push(2);
        assert_eq!(mb.len(), 2);
        mb.pop();
        assert_eq!(mb.len(), 1);
    }

    #[test]
    #[should_panic(expected = "zero capacity")]
    fn rejects_zero_capacity() {
        Mailbox::<u32>::new(0, OverflowPolicy::LatestWins);
    }

    #[test]
    fn drops_queued_values_without_leaking() {
        // Drop-counting payload: the ring must drop exactly the un-popped
        // values when the mailbox itself is dropped.
        struct Counted(Arc<std::sync::atomic::AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
            }
        }
        let drops = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mb = Mailbox::new(4, OverflowPolicy::DropOldest);
        for _ in 0..3 {
            mb.push(Counted(drops.clone()));
        }
        drop(mb.pop());
        drop(mb);
        assert_eq!(drops.load(std::sync::atomic::Ordering::Acquire), 3);
    }

    /// Interleaving stress: a real producer thread races the consumer
    /// through thousands of push/pop cycles on a tiny ring. Every value
    /// must be either received or accounted as dropped — no loss, no
    /// duplication, FIFO order preserved among the received.
    #[test]
    fn concurrent_producer_consumer_accounts_for_every_item() {
        for trial in 0..4 {
            let mb = Arc::new(Mailbox::new(4, OverflowPolicy::DropOldest));
            let total = 20_000u64;
            let producer = {
                let mb = mb.clone();
                std::thread::spawn(move || {
                    for v in 0..total {
                        mb.push(v);
                        if v % 97 == 0 {
                            std::thread::yield_now();
                        }
                    }
                })
            };
            let mut tracker = SeqTracker::new();
            let mut received = 0u64;
            let mut done = false;
            while !done {
                done = producer.is_finished();
                while let Some(v) = mb.pop() {
                    tracker.observe(v);
                    received += 1;
                }
            }
            producer.join().expect("producer");
            // Drain anything pushed after the last pre-join sweep.
            while let Some(v) = mb.pop() {
                tracker.observe(v);
                received += 1;
            }
            // Receipt order was strictly monotone (SeqTracker::observe
            // panics otherwise), and the books balance.
            let tail_gap = total - 1 - tracker.last_seq().expect("received something");
            assert_eq!(
                received + tracker.dropped() + tail_gap,
                total,
                "trial {trial}: received {received}, gap-dropped {}",
                tracker.dropped()
            );
            assert_eq!(tail_gap, 0, "the final push must be observed");
            assert_eq!(
                tracker.dropped() as usize,
                mb.overflow_drops(),
                "trial {trial}: every loss must be a counted eviction"
            );
        }
    }

    /// The same stress under LatestWins: the consumer's policy drain skips
    /// superseded frames; skips + evictions + receipts must cover every
    /// produced value.
    #[test]
    fn concurrent_latest_wins_accounts_for_skips() {
        let mb = Arc::new(Mailbox::new(4, OverflowPolicy::LatestWins));
        let total = 20_000u64;
        let producer = {
            let mb = mb.clone();
            std::thread::spawn(move || {
                for v in 0..total {
                    mb.push(v);
                }
            })
        };
        let mut tracker = SeqTracker::new();
        let mut received = 0u64;
        let mut skipped = 0u64;
        let mut done = false;
        while !done {
            done = producer.is_finished();
            while let Some((v, s)) = mb.pop_policy() {
                tracker.observe(v);
                received += 1;
                skipped += s as u64;
            }
        }
        producer.join().expect("producer");
        while let Some((v, s)) = mb.pop_policy() {
            tracker.observe(v);
            received += 1;
            skipped += s as u64;
        }
        assert_eq!(tracker.last_seq(), Some(total - 1));
        assert_eq!(received + tracker.dropped(), total);
        assert_eq!(
            tracker.dropped(),
            skipped + mb.overflow_drops() as u64,
            "every gap is either a policy skip or a counted eviction"
        );
    }

    #[test]
    fn seq_tracker_counts_gaps() {
        let mut t = SeqTracker::new();
        assert_eq!(t.observe(0), 0);
        assert_eq!(t.observe(1), 0);
        assert_eq!(t.observe(4), 2, "frames 2 and 3 lost");
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.observed(), 3);
        // A consumer that never saw the first frames counts them too.
        let mut late = SeqTracker::new();
        assert_eq!(late.observe(3), 3);
    }

    #[test]
    fn seq_tracker_books_restart_as_new_epoch() {
        let mut t = SeqTracker::new();
        assert_eq!(t.observe(5), 5);
        // A re-issued seq is a producer restart, not a panic: the fresh
        // counter's frames 0..5 never arrived.
        assert_eq!(t.observe(5), 5);
        assert_eq!(t.regressions(), 1);
        assert_eq!(t.observe(6), 0, "the new epoch continues normally");
        assert_eq!(t.observe(2), 2, "second reboot: frames 0 and 1 lost");
        assert_eq!(t.regressions(), 2);
        assert_eq!(t.dropped(), 5 + 5 + 2);
        assert_eq!(t.observed(), 4);
        assert_eq!(t.last_seq(), Some(2));
    }

    /// Producer-restart stress: a camera that reboots mid-stream four
    /// times, re-issuing low seqs through a tiny lossy ring while the
    /// consumer drains in bursts. Every produced frame must end up
    /// received, booked as an observed gap, or booked as an epoch's
    /// un-witnessed eviction tail — and every missing frame must be a
    /// counted ring eviction. The books balance *exactly*.
    #[test]
    fn producer_restart_stress_balances_the_books() {
        let mb = Mailbox::new(4, OverflowPolicy::DropOldest);
        let mut tracker = SeqTracker::new();
        let mut received = 0u64;
        let mut produced = 0u64;
        let mut tail = 0u64;
        // The camera dies and reboots after each epoch (restarting seq at
        // 0). Epochs are long enough that every restart is *detectable*:
        // the new epoch's first receipt carries a seq at or below the old
        // epoch's last one (a reboot after a 1-frame epoch is inherently
        // indistinguishable from a plain gap — that ambiguity is the
        // tail-accounting case pinned by the reboot test below).
        let epochs = [37u64, 9, 83, 12, 64];
        for &len in &epochs {
            for seq in 0..len {
                mb.push(seq);
                produced += 1;
                // Bursty consumer: sweep only every 7th frame, so the
                // 4-slot ring overflows and evicts between sweeps.
                if seq % 7 == 6 {
                    while let Some(v) = mb.pop() {
                        tracker.observe(v);
                        received += 1;
                    }
                }
            }
            // The reboot: whatever the dying epoch pushed after the last
            // sweep either drains now or was evicted un-witnessed (no
            // later receipt can reveal the gap) — that is the epoch's
            // tail loss, accounted here like at end of stream.
            while let Some(v) = mb.pop() {
                tracker.observe(v);
                received += 1;
            }
            tail += len - 1 - tracker.last_seq().expect("every epoch delivers");
        }
        assert_eq!(tracker.regressions(), epochs.len() as u64 - 1);
        assert_eq!(received, tracker.observed());
        assert_eq!(
            received + tracker.dropped() + tail,
            produced,
            "received {received} + gap-dropped {} + tails {tail} must cover all {produced}",
            tracker.dropped()
        );
        assert_eq!(
            tracker.dropped() + tail,
            mb.overflow_drops() as u64,
            "every missing frame is a counted ring eviction"
        );
    }

    /// A reboot that destroys the dying epoch's queued tail: the old
    /// frames still in the ring are evicted by the new epoch's pushes
    /// before the consumer ever sees them. No later receipt can witness
    /// that gap — it is the old epoch's *tail loss*, accounted from the
    /// last pre-restart receipt, and the books still balance exactly.
    #[test]
    fn reboot_evicting_the_queued_tail_balances_exactly() {
        let mb = Mailbox::new(4, OverflowPolicy::DropOldest);
        let mut tracker = SeqTracker::new();
        let mut received = 0u64;
        // Epoch A: frames 0..=6 queued, one sweep. The 4-slot ring kept
        // only 3..=6; the eviction of 0..=2 is witnessed as the gap on
        // first receipt.
        for seq in 0..=6u64 {
            mb.push(seq);
        }
        while let Some(v) = mb.pop() {
            tracker.observe(v);
            received += 1;
        }
        assert_eq!(tracker.last_seq(), Some(6));
        assert_eq!(tracker.dropped(), 3, "frames 0..=2 evicted, witnessed");
        for seq in 7..=9u64 {
            mb.push(seq); // queued, never to be seen again
        }
        let last_before_reboot = tracker.last_seq().unwrap();
        // Reboot: epoch B pushes 0..=3, evicting A's queued 7..=9.
        for seq in 0..=3u64 {
            mb.push(seq);
        }
        while let Some(v) = mb.pop() {
            tracker.observe(v);
            received += 1;
        }
        assert_eq!(tracker.regressions(), 1, "the restart was detected");
        let tail = 9 - last_before_reboot; // A's frames 7..=9, un-witnessed
        let produced = 10 + 4;
        assert_eq!(received + tracker.dropped() + tail, produced);
        assert_eq!(tracker.dropped() + tail, mb.overflow_drops() as u64);
        assert_eq!(tracker.last_seq(), Some(3), "epoch B is current");
    }
}
