//! Camera health state machine: `Healthy → Degraded → Stalled → Dead`,
//! with exponential-backoff probation before re-promotion.
//!
//! A fleet front end must not let one wedged camera cost serving budget
//! forever, and must not flap a camera back to full service the moment a
//! single frame trickles in after a stall. The per-camera
//! [`CamHealthMachine`] consumes the backpressure signals the front end
//! already tracks — frames **delivered** to the serving loop this tick,
//! frames **dropped** (sequence-gap accounting) this tick, and frames the
//! camera **pushed** into its mailbox this tick — and classifies:
//!
//! * [`CamHealth::Healthy`] — delivering, nothing shed.
//! * [`CamHealth::Degraded`] — delivering, but shedding (drop accounting
//!   grew this tick: the camera outruns the drain, or frames go missing).
//! * [`CamHealth::Stalled`] — silent (nothing delivered, nothing pushed)
//!   for [`HealthConfig::stall_ticks`] consecutive ticks.
//! * [`CamHealth::Dead`] — silent for [`HealthConfig::dead_ticks`]
//!   consecutive ticks. The front end's
//!   [`dead_mask`](crate::IngestFrontEnd::dead_mask) excludes dead cameras
//!   from the drain, so they cost **zero** tick budget; liveness is then
//!   detected from mailbox pushes alone.
//! * [`CamHealth::Probation`] — active again after a stall/death, but not
//!   yet trusted: it must survive a backoff-scaled run of clean ticks
//!   (delivering, no drops) before re-promotion to `Healthy`. Every
//!   relapse **doubles** the next probation term (clamped to
//!   [`HealthConfig::probation_max`]); a sustained healthy run resets the
//!   backoff to its base.
//!
//! Driven once per tick from
//! [`IngestFrontEnd::record_busy`](crate::IngestFrontEnd::record_busy) on
//! counter *deltas*, the machine is fully deterministic on the manual
//! clock — the chaos suite replays identical health trajectories run over
//! run.

/// Health classification of one camera (see the module doc).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CamHealth {
    /// Delivering, nothing shed.
    #[default]
    Healthy,
    /// Delivering, but shedding frames.
    Degraded,
    /// Silent for at least `stall_ticks` consecutive ticks.
    Stalled,
    /// Silent for at least `dead_ticks`; excluded from draining.
    Dead,
    /// Active again after stall/death, serving out its backoff term.
    Probation,
}

/// Thresholds of the camera health machine.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Consecutive silent ticks before `Healthy/Degraded → Stalled`.
    pub stall_ticks: u32,
    /// Consecutive silent ticks before `→ Dead`.
    pub dead_ticks: u32,
    /// Base probation term (clean ticks required for re-promotion).
    pub probation_ticks: u32,
    /// Backoff clamp: no probation term grows past this.
    pub probation_max: u32,
    /// Consecutive healthy ticks after which the backoff resets to its
    /// base (the camera has earned back its trust).
    pub backoff_reset_ticks: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            stall_ticks: 2,
            dead_ticks: 6,
            probation_ticks: 2,
            probation_max: 16,
            backoff_reset_ticks: 32,
        }
    }
}

/// Per-camera health state machine (see the module doc).
#[derive(Debug, Clone, Copy)]
pub struct CamHealthMachine {
    cfg: HealthConfig,
    state: CamHealth,
    silent: u32,
    probation_left: u32,
    /// The probation term currently being served (reloaded on an unclean
    /// probation tick).
    term: u32,
    backoff: u32,
    healthy_streak: u32,
    stall_events: u64,
    death_events: u64,
    repromotions: u64,
}

impl CamHealthMachine {
    /// Fresh machine in the `Healthy` state.
    pub fn new(cfg: HealthConfig) -> Self {
        assert!(cfg.stall_ticks > 0, "HealthConfig: zero stall_ticks");
        assert!(
            cfg.dead_ticks >= cfg.stall_ticks,
            "HealthConfig: dead_ticks {} below stall_ticks {}",
            cfg.dead_ticks,
            cfg.stall_ticks
        );
        assert!(cfg.probation_ticks > 0, "HealthConfig: zero probation");
        CamHealthMachine {
            cfg,
            state: CamHealth::Healthy,
            silent: 0,
            probation_left: 0,
            term: cfg.probation_ticks,
            backoff: cfg.probation_ticks,
            healthy_streak: 0,
            stall_events: 0,
            death_events: 0,
            repromotions: 0,
        }
    }

    /// Current classification.
    pub fn state(&self) -> CamHealth {
        self.state
    }

    /// Times the camera crossed into `Stalled`.
    pub fn stall_events(&self) -> u64 {
        self.stall_events
    }

    /// Times the camera crossed into `Dead`.
    pub fn death_events(&self) -> u64 {
        self.death_events
    }

    /// Times the camera served out probation back to `Healthy`.
    pub fn repromotions(&self) -> u64 {
        self.repromotions
    }

    /// The probation term the *next* demotion would impose, in ticks.
    pub fn current_backoff(&self) -> u32 {
        self.backoff
    }

    /// Folds one tick's observation into the machine: frames `delivered`
    /// to the serving loop, `dropped` booked by the gap accounting, and
    /// `pushed` into the mailbox — all as this-tick deltas.
    pub fn observe_tick(&mut self, delivered: u64, dropped: u64, pushed: u64) {
        let active = delivered > 0 || pushed > 0;
        if !active {
            self.silent += 1;
            self.healthy_streak = 0;
            if self.state != CamHealth::Dead && self.silent >= self.cfg.dead_ticks {
                self.state = CamHealth::Dead;
                self.death_events += 1;
            } else if matches!(
                self.state,
                CamHealth::Healthy | CamHealth::Degraded | CamHealth::Probation
            ) && self.silent >= self.cfg.stall_ticks
            {
                self.state = CamHealth::Stalled;
                self.stall_events += 1;
            }
            return;
        }
        self.silent = 0;
        match self.state {
            CamHealth::Stalled | CamHealth::Dead => {
                // Back from the dead: serve out a probation term that
                // doubles on every relapse.
                self.state = CamHealth::Probation;
                self.term = self.backoff;
                self.probation_left = self.term;
                self.backoff = (self.backoff * 2).min(self.cfg.probation_max);
                self.healthy_streak = 0;
            }
            CamHealth::Probation => {
                if delivered > 0 && dropped == 0 {
                    self.probation_left = self.probation_left.saturating_sub(1);
                    if self.probation_left == 0 {
                        self.state = CamHealth::Healthy;
                        self.repromotions += 1;
                    }
                } else if dropped > 0 {
                    // An unclean tick restarts the countdown.
                    self.probation_left = self.term;
                }
            }
            CamHealth::Healthy | CamHealth::Degraded => {
                self.state = if dropped > 0 {
                    CamHealth::Degraded
                } else {
                    CamHealth::Healthy
                };
            }
        }
        if self.state == CamHealth::Healthy && dropped == 0 {
            self.healthy_streak += 1;
            if self.healthy_streak >= self.cfg.backoff_reset_ticks {
                self.backoff = self.cfg.probation_ticks;
            }
        } else {
            self.healthy_streak = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> CamHealthMachine {
        CamHealthMachine::new(HealthConfig::default())
    }

    #[test]
    fn nominal_ticks_stay_healthy() {
        let mut m = machine();
        for _ in 0..50 {
            m.observe_tick(1, 0, 1);
        }
        assert_eq!(m.state(), CamHealth::Healthy);
        assert_eq!(m.stall_events() + m.death_events(), 0);
    }

    #[test]
    fn drops_degrade_and_clean_ticks_recover() {
        let mut m = machine();
        m.observe_tick(1, 0, 1);
        m.observe_tick(1, 2, 3);
        assert_eq!(m.state(), CamHealth::Degraded);
        m.observe_tick(1, 0, 1);
        assert_eq!(m.state(), CamHealth::Healthy, "degraded is not sticky");
    }

    #[test]
    fn silence_walks_stalled_then_dead() {
        let mut m = machine();
        m.observe_tick(1, 0, 1);
        m.observe_tick(0, 0, 0);
        assert_eq!(m.state(), CamHealth::Healthy, "one silent tick tolerated");
        m.observe_tick(0, 0, 0);
        assert_eq!(m.state(), CamHealth::Stalled);
        for _ in 0..3 {
            m.observe_tick(0, 0, 0);
        }
        assert_eq!(
            m.state(),
            CamHealth::Stalled,
            "5 silent ticks: not dead yet"
        );
        m.observe_tick(0, 0, 0);
        assert_eq!(m.state(), CamHealth::Dead, "6th silent tick kills it");
        assert_eq!((m.stall_events(), m.death_events()), (1, 1));
    }

    #[test]
    fn recovery_serves_probation_with_doubling_backoff() {
        let mut m = machine();
        // First death → probation term 2.
        for _ in 0..6 {
            m.observe_tick(0, 0, 0);
        }
        assert_eq!(m.state(), CamHealth::Dead);
        m.observe_tick(0, 0, 1); // liveness via mailbox push alone
        assert_eq!(m.state(), CamHealth::Probation);
        m.observe_tick(1, 0, 1);
        m.observe_tick(1, 0, 1);
        assert_eq!(m.state(), CamHealth::Healthy, "2 clean ticks re-promote");
        assert_eq!(m.repromotions(), 1);

        // Relapse → the term doubled to 4.
        for _ in 0..6 {
            m.observe_tick(0, 0, 0);
        }
        m.observe_tick(1, 0, 1);
        assert_eq!(m.state(), CamHealth::Probation);
        for _ in 0..3 {
            m.observe_tick(1, 0, 1);
        }
        assert_eq!(m.state(), CamHealth::Probation, "term is now 4, not 2");
        m.observe_tick(1, 0, 1);
        assert_eq!(m.state(), CamHealth::Healthy);

        // A long healthy run earns the base term back.
        for _ in 0..32 {
            m.observe_tick(1, 0, 1);
        }
        assert_eq!(
            m.current_backoff(),
            2,
            "backoff reset after sustained health"
        );
    }

    #[test]
    fn unclean_probation_tick_restarts_the_countdown() {
        let mut m = machine();
        for _ in 0..2 {
            m.observe_tick(0, 0, 0);
        }
        assert_eq!(m.state(), CamHealth::Stalled);
        m.observe_tick(1, 0, 1);
        assert_eq!(m.state(), CamHealth::Probation);
        m.observe_tick(1, 1, 2); // drops during probation
        m.observe_tick(1, 0, 1);
        assert_eq!(
            m.state(),
            CamHealth::Probation,
            "the unclean tick reset the countdown"
        );
        m.observe_tick(1, 0, 1);
        assert_eq!(m.state(), CamHealth::Healthy);
    }

    #[test]
    fn probation_relapse_to_silence_stalls_again() {
        let mut m = machine();
        for _ in 0..2 {
            m.observe_tick(0, 0, 0);
        }
        m.observe_tick(1, 0, 1); // probation
        for _ in 0..2 {
            m.observe_tick(0, 0, 0);
        }
        assert_eq!(m.state(), CamHealth::Stalled);
        assert_eq!(m.stall_events(), 2);
    }
}
