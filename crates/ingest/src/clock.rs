//! [`TickClock`]: the monotonic tick scheduler of the ingest front end.
//!
//! Serving runs in fixed-period ticks. Tick `t` spans
//! `[t·period, (t+1)·period)` on a monotonic time base: frames produced
//! during the tick land in the mailboxes, and the serving loop drains them
//! at the tick's *end* boundary. Two modes share one API:
//!
//! * **Real** — the time base is [`std::time::Instant`]; advancing to a
//!   boundary sleeps. This is the deployment mode.
//! * **Manual** — the time base is an explicit nanosecond counter the
//!   harness advances. `Instant` cannot drive reproducible tests (a loaded
//!   CI box would shift every due time), so every determinism test and the
//!   bitwise serve-parity proofs run on a manual clock, advancing it by the
//!   cost model's *predicted* tick latency instead of wall time.
//!
//! Time is always expressed as nanoseconds since the clock's start.

use std::time::{Duration, Instant};

/// Monotonic tick scheduler (see the module docs).
#[derive(Debug)]
pub struct TickClock {
    period_ns: u64,
    mode: Mode,
}

#[derive(Debug)]
enum Mode {
    Real { start: Instant },
    Manual { now_ns: u64 },
}

impl TickClock {
    /// A real-time clock starting now.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn real(period: Duration) -> Self {
        Self::real_at(Instant::now(), period)
    }

    /// A real-time clock over an explicit start instant — the ingest front
    /// end hands the same instant to its camera producers so frame due
    /// times and tick boundaries share one time base.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn real_at(start: Instant, period: Duration) -> Self {
        let period_ns = u64::try_from(period.as_nanos()).expect("period overflow");
        assert!(period_ns > 0, "TickClock: zero period");
        TickClock {
            period_ns,
            mode: Mode::Real { start },
        }
    }

    /// A deterministic manual clock starting at 0 ns.
    ///
    /// # Panics
    ///
    /// Panics if `period_ns` is zero.
    pub fn manual(period_ns: u64) -> Self {
        assert!(period_ns > 0, "TickClock: zero period");
        TickClock {
            period_ns,
            mode: Mode::Manual { now_ns: 0 },
        }
    }

    /// Whether this is the deterministic manual clock.
    pub fn is_manual(&self) -> bool {
        matches!(self.mode, Mode::Manual { .. })
    }

    /// Tick period in nanoseconds.
    pub fn period_ns(&self) -> u64 {
        self.period_ns
    }

    /// Nanoseconds since the clock started.
    pub fn now_ns(&self) -> u64 {
        match &self.mode {
            Mode::Real { start } => u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            Mode::Manual { now_ns } => *now_ns,
        }
    }

    /// End boundary of tick `t`: `(t + 1) · period`.
    pub fn tick_boundary_ns(&self, tick: u64) -> u64 {
        (tick + 1).saturating_mul(self.period_ns)
    }

    /// Advances to `deadline_ns`: sleeps in real mode, jumps the counter in
    /// manual mode. Returns whether the clock was *late* — `now` had
    /// already passed `deadline_ns` on entry, in which case time does not
    /// move (it never rewinds).
    pub fn advance_to(&mut self, deadline_ns: u64) -> bool {
        let now = self.now_ns();
        if now >= deadline_ns {
            return now > deadline_ns;
        }
        match &mut self.mode {
            Mode::Real { .. } => std::thread::sleep(Duration::from_nanos(deadline_ns - now)),
            Mode::Manual { now_ns } => *now_ns = deadline_ns,
        }
        false
    }

    /// Advances the manual counter by `ns` (models the processing time a
    /// simulated tick spent). No-op in real mode, where wall time advances
    /// by itself.
    pub fn advance_by(&mut self, ns: u64) {
        if let Mode::Manual { now_ns } = &mut self.mode {
            *now_ns = now_ns.saturating_add(ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_deterministic() {
        let mut c = TickClock::manual(1_000);
        assert!(c.is_manual());
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.tick_boundary_ns(0), 1_000);
        assert_eq!(c.tick_boundary_ns(4), 5_000);
        assert!(!c.advance_to(1_000));
        assert_eq!(c.now_ns(), 1_000);
        c.advance_by(250);
        assert_eq!(c.now_ns(), 1_250);
        // Already past a boundary → late.
        assert!(c.advance_to(1_100));
        assert_eq!(c.now_ns(), 1_250, "late advance must not rewind");
        // Landing exactly on the deadline is on time.
        assert!(!c.advance_to(1_250));
    }

    #[test]
    fn real_clock_waits_for_the_boundary() {
        let mut c = TickClock::real(Duration::from_millis(5));
        assert!(!c.is_manual());
        assert!(!c.advance_to(c.tick_boundary_ns(0)));
        assert!(c.now_ns() >= 5_000_000, "must have slept to the boundary");
        // advance_by is a no-op on the real clock.
        let before = c.now_ns();
        c.advance_by(u64::MAX / 2);
        assert!(c.now_ns() < before + 4_000_000_000);
    }

    #[test]
    #[should_panic(expected = "zero period")]
    fn rejects_zero_period() {
        TickClock::manual(0);
    }
}
