//! **`ld_ingest`** — the real-time frame ingest front end.
//!
//! The paper's premise is *real-time* on-device adaptation under a hard
//! latency budget, but a synchronous serving loop that polls its frame
//! generators can only pretend: real cameras deliver on their own jittered
//! clocks, keep delivering when the server falls behind, and the deadline
//! analysis only holds if stale frames are shed **at ingest** — before they
//! consume batching, inference or adaptation budget. This crate supplies
//! that front end:
//!
//! * [`Mailbox`] — a lock-free bounded ring per camera. Producers never
//!   block; overflow evicts the oldest frame; every loss is observable
//!   (eviction counters plus [`SeqTracker`] sequence-gap accounting).
//!   Consumer semantics are policy-driven ([`OverflowPolicy`]).
//! * [`CameraProducer`] / [`CameraSchedule`] — `ld_carlane` stream
//!   generators driven on per-camera jittered clocks, either pumped
//!   synchronously (deterministic) or running on pooled background threads
//!   ([`ld_tensor::parallel::spawn_background`]).
//! * [`TickClock`] — the monotonic tick scheduler, with a manual mode that
//!   makes every test (including the bitwise serve-parity proofs in
//!   `ld_adapt`) reproducible.
//! * [`IngestFrontEnd`] — the bundle the serving loop consumes: advance to
//!   a tick boundary, drain age-stamped frames, record the tick's busy
//!   time, read the backpressure report ([`IngestReport`]: drops, queue
//!   depths, frame-age p50/p99, tick overruns).
//! * [`CamHealthMachine`] — the per-camera health state machine
//!   (`Healthy → Degraded → Stalled → Dead`, with exponential-backoff
//!   probation before re-promotion), driven from the drop/gap/push
//!   telemetry every [`IngestFrontEnd::record_busy`] tick; `Dead` cameras
//!   are excluded from the drain via [`IngestFrontEnd::dead_mask`] so a
//!   wedged sensor costs zero serving budget.
//! * [`FrameTap`] / [`TapVerdict`] — the seam between frame generation
//!   and mailbox delivery that the `ld_fault` injector plugs into
//!   (corrupt pixels in place; lose, suppress, or sequence-restart
//!   delivery).
//! * Routed slots + [`CamHandoff`] — a front end can serve an arbitrary
//!   subset of a fleet's cameras ([`IngestFrontEnd::manual_routed`] /
//!   [`IngestFrontEnd::realtime_routed`]; schedules keyed by global
//!   camera id, frames stamped with the local slot) and hand a camera to
//!   another front end live ([`IngestFrontEnd::detach_cam`] /
//!   [`IngestFrontEnd::attach_cam`]) — the seam `ld_fleet`'s rebalancer
//!   moves cameras across shards through.
//!
//! # Example (deterministic)
//!
//! ```
//! use ld_carlane::{Benchmark, FrameSpec, StreamSet};
//! use ld_ingest::{IngestConfig, IngestFrontEnd};
//!
//! let streams = StreamSet::drifting(Benchmark::MoLane, FrameSpec::new(32, 16, 6, 4, 2), 2, 8, 7);
//! let mut fe = IngestFrontEnd::manual(&streams, &IngestConfig::new(1_000_000));
//! fe.next_tick();
//! let frames = fe.drain();
//! assert_eq!(frames.len(), 2); // nominal load: one frame per camera per tick
//! fe.record_busy(100_000);
//! assert_eq!(fe.report().tick_overruns, 0);
//! ```

pub mod clock;
pub mod front;
pub mod health;
pub mod mailbox;
pub mod producer;

pub use clock::TickClock;
pub use front::{CamHandoff, CamReport, IngestConfig, IngestFrame, IngestFrontEnd, IngestReport};
pub use health::{CamHealth, CamHealthMachine, HealthConfig};
pub use mailbox::{Mailbox, OverflowPolicy, SeqTracker};
pub use producer::{
    CameraProducer, CameraSchedule, FrameSource, FrameTap, StampedFrame, TapVerdict,
};
