//! [`IngestFrontEnd`]: per-camera mailboxes + producers + tick scheduling,
//! bundled behind the drain/telemetry API the serving loop consumes.
//!
//! The lifecycle of one serving tick:
//!
//! 1. [`IngestFrontEnd::next_tick`] advances the [`TickClock`] to the next
//!    tick boundary. On the manual clock this also pumps every camera
//!    producer synchronously (deterministic); on the real clock the
//!    producers have been pushing from their background threads all along.
//! 2. [`IngestFrontEnd::drain`] empties the mailboxes under each camera's
//!    [`OverflowPolicy`], stamping every frame with its **age** (now minus
//!    due time) and folding sequence-number gaps into the per-camera drop
//!    accounting.
//! 3. The server batches/serves what survives its admission gate and calls
//!    [`IngestFrontEnd::record_busy`] with the tick's processing time
//!    (measured wall-clock in real mode; the cost model's prediction in
//!    manual mode) — which both advances the manual clock and counts
//!    tick-deadline overruns.
//!
//! [`IngestFrontEnd::report`] exposes the backpressure picture: per-camera
//! produced/delivered/dropped counts, peak queue depth, frame-age p50/p99
//! and tick overruns.
//!
//! # Routed slots and camera migration
//!
//! A sharded fleet (`ld_fleet`) runs one front end per shard, each serving
//! a *subset* of the fleet's cameras. [`IngestFrontEnd::manual_routed`] /
//! [`IngestFrontEnd::realtime_routed`] build a front end from a slot map:
//! slot `i` either carries a **global** camera id (its schedule, load
//! override, jitter seed and frame source are all keyed by the global id,
//! while delivered frames are stamped with the **local** slot so the
//! shard-local server indexes them directly) or is **parked** (`None`) — a
//! mailbox with no producer, reserved headroom for cameras migrating in.
//!
//! [`IngestFrontEnd::detach_cam`] stops a slot's producer and returns a
//! [`CamHandoff`]; [`IngestFrontEnd::attach_cam`] resumes it on the lowest
//! parked slot of another front end. On the manual clock the handoff
//! carries the producer itself — schedule index, frame-source cursor and
//! sequence counter intact — so the migrated camera resumes with no frame
//! replayed or skipped and its gap accounting seamless
//! ([`SeqTracker::resume_at`]). In real-time mode the producer lives on a
//! background thread and cannot be carried: attach rebuilds it, and the
//! camera restarts from frame 0 of its schedule (a fresh sequence epoch on
//! a fresh tracker — downstream sees a camera reboot, which is exactly
//! what a physical re-home looks like). Frames still queued at detach time
//! can no longer reach any server; they are discarded and surface in
//! [`CamHandoff::dropped_in_flight`].

use crate::clock::TickClock;
use crate::health::{CamHealth, CamHealthMachine, HealthConfig};
use crate::mailbox::{Mailbox, OverflowPolicy, SeqTracker};
use crate::producer::{CameraProducer, CameraSchedule, FrameSource, FrameTap, StampedFrame};
use ld_carlane::{LabeledFrame, StreamSet};
use ld_tensor::parallel::BackgroundTask;
use ld_tensor::rng::mix_seed;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of the ingest front end.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Serving tick period, ns.
    pub tick_period_ns: u64,
    /// Mailbox capacity per camera (rounded up to a power of two, min 2).
    pub capacity: usize,
    /// Overflow/drain policy of every mailbox.
    pub policy: OverflowPolicy,
    /// Per-frame delivery jitter cap, ns (clamped per camera so the
    /// [`CameraSchedule`] monotonicity invariant holds).
    pub jitter_ns: u64,
    /// Seed for the per-camera phases and jitter.
    pub seed: u64,
    /// When > 0, pre-render this many frames per camera and cycle them —
    /// real-time benches use this so render cost cannot distort the
    /// offered load. 0 renders live (the deterministic default).
    pub prerender: usize,
    /// Offered load per camera, as frames per tick (1.0 = nominal: one
    /// frame per camera per tick). Per-camera overrides via
    /// [`IngestConfig::with_cam_load`].
    pub load: f64,
    /// `(cam, frames-per-tick)` overrides of [`IngestConfig::load`].
    pub cam_loads: Vec<(usize, f64)>,
    /// Thresholds of the per-camera health state machine.
    pub health: HealthConfig,
}

impl IngestConfig {
    /// Nominal-load defaults: capacity 4, latest-wins, jitter an eighth of
    /// the tick, live rendering.
    pub fn new(tick_period_ns: u64) -> Self {
        IngestConfig {
            tick_period_ns,
            capacity: 4,
            policy: OverflowPolicy::LatestWins,
            jitter_ns: tick_period_ns / 8,
            seed: 0x1A6E57,
            prerender: 0,
            load: 1.0,
            cam_loads: Vec::new(),
            health: HealthConfig::default(),
        }
    }

    /// Overrides the health-machine thresholds (builder style).
    pub fn with_health(mut self, health: HealthConfig) -> Self {
        self.health = health;
        self
    }

    /// Sets the uniform offered load (builder style).
    pub fn with_load(mut self, frames_per_tick: f64) -> Self {
        self.load = frames_per_tick;
        self
    }

    /// Overrides one camera's offered load (builder style).
    pub fn with_cam_load(mut self, cam: usize, frames_per_tick: f64) -> Self {
        self.cam_loads.push((cam, frames_per_tick));
        self
    }

    /// Sets the overflow policy (builder style).
    pub fn with_policy(mut self, policy: OverflowPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the mailbox capacity (builder style).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Pre-renders `frames` per camera instead of rendering live (builder
    /// style).
    pub fn with_prerender(mut self, frames: usize) -> Self {
        self.prerender = frames;
        self
    }

    /// Disables delivery jitter (builder style) — with zero jitter and
    /// nominal load, camera `k`'s frame `t` is due strictly inside tick
    /// `t`, which the bitwise serve-parity tests rely on.
    pub fn without_jitter(mut self) -> Self {
        self.jitter_ns = 0;
        self
    }

    fn cam_load(&self, cam: usize) -> f64 {
        self.cam_loads
            .iter()
            .rev()
            .find(|&&(c, _)| c == cam)
            .map_or(self.load, |&(_, l)| l)
    }
}

/// A drained frame, ready for admission: the stamp plus its age at drain
/// time.
#[derive(Debug, Clone)]
pub struct IngestFrame {
    /// Producing camera id (== the server's stream id).
    pub cam: usize,
    /// Per-camera sequence number.
    pub seq: u64,
    /// Due (capture) time, ns on the front end's clock.
    pub due_ns: u64,
    /// Age when drained: `drain_now − due_ns`.
    pub age_ns: u64,
    /// The frame.
    pub frame: LabeledFrame,
}

/// Per-camera backpressure counters (a snapshot; see
/// [`IngestFrontEnd::report`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CamReport {
    /// Frames the camera pushed into its mailbox.
    pub produced: u64,
    /// Frames the serving loop drained.
    pub delivered: u64,
    /// Frames lost between production and drain (sequence-gap accounting:
    /// covers both full-ring evictions and latest-wins skips).
    pub dropped: u64,
    /// Frames still queued at snapshot time.
    pub queued: usize,
    /// Peak queue depth observed at drain boundaries.
    pub max_queue_depth: usize,
    /// Health classification at snapshot time.
    pub health: CamHealth,
}

/// Whole-front-end backpressure report.
#[derive(Debug, Clone, Default)]
pub struct IngestReport {
    /// Ticks accounted via [`IngestFrontEnd::record_busy`].
    pub ticks: usize,
    /// Ticks whose processing time exceeded the tick period.
    pub tick_overruns: usize,
    /// Per-camera counters.
    pub per_cam: Vec<CamReport>,
    /// Median drained-frame age, ns.
    pub age_p50_ns: u64,
    /// 99th-percentile drained-frame age, ns.
    pub age_p99_ns: u64,
}

impl IngestReport {
    /// Total frames produced across cameras.
    pub fn produced(&self) -> u64 {
        self.per_cam.iter().map(|c| c.produced).sum()
    }

    /// Total frames delivered across cameras.
    pub fn delivered(&self) -> u64 {
        self.per_cam.iter().map(|c| c.delivered).sum()
    }

    /// Total frames dropped at ingest across cameras.
    pub fn dropped(&self) -> u64 {
        self.per_cam.iter().map(|c| c.dropped).sum()
    }
}

enum DriveMode {
    /// Deterministic: producers pumped synchronously at tick boundaries.
    /// Each producer knows its local slot ([`CameraProducer::cam`]).
    Manual(Vec<CameraProducer>),
    /// Producers on pooled background threads, tagged with their local
    /// slot; the handles stop them on drop.
    Realtime(Vec<(usize, BackgroundTask)>),
}

/// A detached camera in flight between front ends (see the module docs on
/// routed slots and migration).
pub struct CamHandoff {
    global: usize,
    /// Manual mode carries the producer (cursor + sequence state);
    /// real-time producers live on background threads and are rebuilt at
    /// attach.
    producer: Option<CameraProducer>,
    /// Last sequence number the detaching front end drained — primes the
    /// attaching tracker so gap accounting stays exact across the move.
    last_seq: Option<u64>,
    dropped_in_flight: u64,
}

impl std::fmt::Debug for CamHandoff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CamHandoff")
            .field("global", &self.global)
            .field("carries_producer", &self.producer.is_some())
            .field("last_seq", &self.last_seq)
            .field("dropped_in_flight", &self.dropped_in_flight)
            .finish()
    }
}

impl CamHandoff {
    /// Global id of the camera in flight.
    pub fn global(&self) -> usize {
        self.global
    }

    /// Whether the producer itself travels (manual mode) or must be
    /// rebuilt at attach (real-time mode).
    pub fn carries_producer(&self) -> bool {
        self.producer.is_some()
    }

    /// Frames that were still queued at detach time — they can no longer
    /// reach any server and were discarded.
    pub fn dropped_in_flight(&self) -> u64 {
        self.dropped_in_flight
    }
}

/// The ingest front end (see the module docs).
pub struct IngestFrontEnd {
    clock: TickClock,
    cfg: IngestConfig,
    /// Per-slot global camera id; `None` = parked (mailbox, no producer).
    globals: Vec<Option<usize>>,
    mailboxes: Vec<Arc<Mailbox<StampedFrame>>>,
    mode: DriveMode,
    /// Real-clock epoch shared by the tick clock and every producer
    /// schedule; `None` on the manual clock.
    start: Option<Instant>,
    trackers: Vec<SeqTracker>,
    delivered: Vec<u64>,
    max_depth: Vec<usize>,
    health: Vec<CamHealthMachine>,
    // Previous-tick counter snapshots, so the health machines see deltas.
    seen_delivered: Vec<u64>,
    seen_dropped: Vec<u64>,
    seen_pushed: Vec<u64>,
    tick: u64,
    ticks_run: usize,
    tick_overruns: usize,
    /// Frame ages at delivery, ns. The log2 histogram is O(1) memory, so —
    /// unlike the capped sample vector it replaced — every frame of an
    /// arbitrarily long run is counted, and per-shard histograms merge
    /// exactly for fleet rollups.
    age_hist: ld_obs::Histogram,
}

impl std::fmt::Debug for IngestFrontEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestFrontEnd")
            .field("cams", &self.mailboxes.len())
            .field("tick", &self.tick)
            .field("manual", &self.clock.is_manual())
            .finish_non_exhaustive()
    }
}

impl IngestFrontEnd {
    /// Deterministic front end over a manual clock: one camera per stream
    /// of `streams`, pumped synchronously at every tick boundary.
    pub fn manual(streams: &StreamSet, cfg: &IngestConfig) -> Self {
        Self::manual_with_taps(streams, cfg, Vec::new())
    }

    /// [`IngestFrontEnd::manual`] with per-camera fault-injection taps
    /// (`(cam, tap)` pairs; see [`FrameTap`]) installed between frame
    /// generation and mailbox delivery.
    ///
    /// # Panics
    ///
    /// Panics if a tap names a camera the stream set does not have.
    pub fn manual_with_taps(
        streams: &StreamSet,
        cfg: &IngestConfig,
        taps: Vec<(usize, Box<dyn FrameTap>)>,
    ) -> Self {
        let slots: Vec<Option<usize>> = (0..streams.num_streams()).map(Some).collect();
        let clock = TickClock::manual(cfg.tick_period_ns);
        let (mailboxes, producers) = Self::build_cams(streams, cfg, taps, &slots);
        Self::assemble(
            clock,
            mailboxes,
            DriveMode::Manual(producers),
            cfg,
            slots,
            None,
        )
    }

    /// Deterministic front end over an explicit slot map: slot `i` serves
    /// global camera `slots[i]`, or is parked when `None` (see the module
    /// docs on routed slots).
    ///
    /// # Panics
    ///
    /// Panics if the map is empty, names a camera the stream set does not
    /// have, or routes the same global camera to two slots.
    pub fn manual_routed(streams: &StreamSet, cfg: &IngestConfig, slots: &[Option<usize>]) -> Self {
        Self::check_slots(streams, slots);
        let clock = TickClock::manual(cfg.tick_period_ns);
        let (mailboxes, producers) = Self::build_cams(streams, cfg, Vec::new(), slots);
        Self::assemble(
            clock,
            mailboxes,
            DriveMode::Manual(producers),
            cfg,
            slots.to_vec(),
            None,
        )
    }

    /// Real-time front end: cameras run on pooled background threads
    /// ([`ld_tensor::parallel::spawn_background`]) pushing frames at their
    /// real due times; the serving loop sleeps to each tick boundary.
    pub fn realtime(streams: &StreamSet, cfg: &IngestConfig) -> Self {
        Self::realtime_with_taps(streams, cfg, Vec::new())
    }

    /// [`IngestFrontEnd::realtime`] with per-camera fault-injection taps.
    ///
    /// # Panics
    ///
    /// Panics if a tap names a camera the stream set does not have.
    pub fn realtime_with_taps(
        streams: &StreamSet,
        cfg: &IngestConfig,
        taps: Vec<(usize, Box<dyn FrameTap>)>,
    ) -> Self {
        let slots: Vec<Option<usize>> = (0..streams.num_streams()).map(Some).collect();
        Self::realtime_from_slots(streams, cfg, taps, slots)
    }

    /// Real-time front end over an explicit slot map (see
    /// [`IngestFrontEnd::manual_routed`]).
    ///
    /// # Panics
    ///
    /// Panics if the map is empty, names a camera the stream set does not
    /// have, or routes the same global camera to two slots.
    pub fn realtime_routed(
        streams: &StreamSet,
        cfg: &IngestConfig,
        slots: &[Option<usize>],
    ) -> Self {
        Self::check_slots(streams, slots);
        Self::realtime_from_slots(streams, cfg, Vec::new(), slots.to_vec())
    }

    fn realtime_from_slots(
        streams: &StreamSet,
        cfg: &IngestConfig,
        taps: Vec<(usize, Box<dyn FrameTap>)>,
        slots: Vec<Option<usize>>,
    ) -> Self {
        let start = Instant::now();
        let clock = TickClock::real_at(start, Duration::from_nanos(cfg.tick_period_ns));
        let (mailboxes, producers) = Self::build_cams(streams, cfg, taps, &slots);
        let tasks = producers
            .into_iter()
            .map(|p| (p.cam(), p.run_realtime(start)))
            .collect();
        Self::assemble(
            clock,
            mailboxes,
            DriveMode::Realtime(tasks),
            cfg,
            slots,
            Some(start),
        )
    }

    fn check_slots(streams: &StreamSet, slots: &[Option<usize>]) {
        assert!(!slots.is_empty(), "IngestFrontEnd: empty slot map");
        let n = streams.num_streams();
        let mut seen = Vec::new();
        for &slot in slots {
            let Some(global) = slot else { continue };
            assert!(
                global < n,
                "IngestFrontEnd: slot routes unknown camera {global} (stream set has {n})"
            );
            assert!(
                !seen.contains(&global),
                "IngestFrontEnd: camera {global} routed to two slots"
            );
            seen.push(global);
        }
    }

    /// Builds one producer for global camera `global`, stamping frames
    /// with local slot `local`. Schedule (load, phase, jitter, seed) and
    /// frame source are keyed by the **global** id, so a camera keeps its
    /// delivery pattern no matter which shard hosts it.
    fn producer_for(
        streams: &StreamSet,
        cfg: &IngestConfig,
        global: usize,
        local: usize,
        mailbox: Arc<Mailbox<StampedFrame>>,
    ) -> CameraProducer {
        let load = cfg.cam_load(global);
        assert!(
            load.is_finite() && load > 0.0,
            "IngestFrontEnd: bad load {load} for cam {global}"
        );
        let period = ((cfg.tick_period_ns as f64 / load) as u64).max(4);
        // Deterministic per-camera phase in (0, period/2]; jitter is
        // clamped so phase + jitter stays inside the frame period.
        let phase = (period / 8 * (1 + (global as u64 % 4))).max(1);
        let jitter = cfg.jitter_ns.min(period.saturating_sub(phase) / 2);
        let schedule =
            CameraSchedule::new(phase, period, jitter, mix_seed(cfg.seed, global as u64));
        let source = if cfg.prerender > 0 {
            FrameSource::Prerendered(streams.prerender(global, cfg.prerender))
        } else {
            FrameSource::Live(streams.isolate(global))
        };
        CameraProducer::new(local, source, schedule, mailbox)
    }

    fn build_cams(
        streams: &StreamSet,
        cfg: &IngestConfig,
        mut taps: Vec<(usize, Box<dyn FrameTap>)>,
        slots: &[Option<usize>],
    ) -> (Vec<Arc<Mailbox<StampedFrame>>>, Vec<CameraProducer>) {
        let n = slots.len();
        assert!(n > 0, "IngestFrontEnd: no cameras");
        let mut mailboxes = Vec::with_capacity(n);
        let mut producers = Vec::with_capacity(n);
        for (local, &slot) in slots.iter().enumerate() {
            let mailbox = Arc::new(Mailbox::new(cfg.capacity, cfg.policy));
            if let Some(global) = slot {
                let mut producer = Self::producer_for(streams, cfg, global, local, mailbox.clone());
                if let Some(pos) = taps.iter().position(|&(c, _)| c == local) {
                    producer = producer.with_tap(taps.swap_remove(pos).1);
                }
                producers.push(producer);
            }
            mailboxes.push(mailbox);
        }
        assert!(
            taps.is_empty(),
            "IngestFrontEnd: tap for unknown camera {}",
            taps[0].0
        );
        (mailboxes, producers)
    }

    fn assemble(
        clock: TickClock,
        mailboxes: Vec<Arc<Mailbox<StampedFrame>>>,
        mode: DriveMode,
        cfg: &IngestConfig,
        globals: Vec<Option<usize>>,
        start: Option<Instant>,
    ) -> Self {
        let n = mailboxes.len();
        IngestFrontEnd {
            clock,
            cfg: cfg.clone(),
            globals,
            mailboxes,
            mode,
            start,
            trackers: vec![SeqTracker::new(); n],
            delivered: vec![0; n],
            max_depth: vec![0; n],
            health: vec![CamHealthMachine::new(cfg.health); n],
            seen_delivered: vec![0; n],
            seen_dropped: vec![0; n],
            seen_pushed: vec![0; n],
            tick: 0,
            ticks_run: 0,
            tick_overruns: 0,
            age_hist: ld_obs::Histogram::new(),
        }
    }

    /// Number of slots (occupied + parked).
    pub fn num_cams(&self) -> usize {
        self.mailboxes.len()
    }

    /// Global camera id served by local slot `local` (`None` = parked).
    pub fn global_of(&self, local: usize) -> Option<usize> {
        self.globals.get(local).copied().flatten()
    }

    /// Number of occupied (non-parked) slots.
    pub fn num_active(&self) -> usize {
        self.globals.iter().filter(|g| g.is_some()).count()
    }

    /// Detaches the camera on slot `local`: stops its producer, discards
    /// (and counts) frames still in flight, parks the slot, and returns
    /// the [`CamHandoff`] that resumes the camera on another front end
    /// (see the module docs on migration).
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range or already parked.
    pub fn detach_cam(&mut self, local: usize) -> CamHandoff {
        assert!(
            local < self.mailboxes.len(),
            "detach_cam: no slot {local} (front end has {})",
            self.mailboxes.len()
        );
        let global = self.globals[local]
            .take()
            .unwrap_or_else(|| panic!("detach_cam: slot {local} is already parked"));
        let producer = match &mut self.mode {
            DriveMode::Manual(producers) => {
                let pos = producers
                    .iter()
                    .position(|p| p.cam() == local)
                    .expect("detach_cam: occupied manual slot must have a producer");
                Some(producers.swap_remove(pos))
            }
            DriveMode::Realtime(tasks) => {
                let pos = tasks
                    .iter()
                    .position(|&(slot, _)| slot == local)
                    .expect("detach_cam: occupied realtime slot must have a producer task");
                // Dropping the handle stops and joins the producer thread,
                // so nothing pushes into the old mailbox after this.
                drop(tasks.swap_remove(pos));
                None
            }
        };
        let mut dropped_in_flight = 0;
        while self.mailboxes[local].pop().is_some() {
            dropped_in_flight += 1;
        }
        let last_seq = self.trackers[local].last_seq();
        self.reset_slot(local);
        CamHandoff {
            global,
            producer,
            last_seq,
            dropped_in_flight,
        }
    }

    /// Resumes a detached camera on this front end's lowest parked slot
    /// and returns that slot. A carried producer (manual mode) is rebound
    /// — schedule index, source cursor and sequence state intact, the gap
    /// tracker primed at the handoff's last drained sequence number. In
    /// real-time mode (or when no producer travels) the producer is
    /// rebuilt from `streams`, keyed by the camera's global id, and the
    /// camera restarts from frame 0 of its schedule on a fresh tracker.
    ///
    /// # Panics
    ///
    /// Panics if no slot is parked, or a rebuilt producer's global id is
    /// outside `streams`.
    pub fn attach_cam(&mut self, streams: &StreamSet, handoff: CamHandoff) -> usize {
        let slot = self
            .globals
            .iter()
            .position(|g| g.is_none())
            .expect("attach_cam: no parked slot free");
        let CamHandoff {
            global,
            producer,
            last_seq,
            ..
        } = handoff;
        self.reset_slot(slot);
        let mailbox = self.mailboxes[slot].clone();
        match &mut self.mode {
            DriveMode::Manual(producers) => {
                let carried = producer.is_some();
                let mut p = producer.unwrap_or_else(|| {
                    Self::producer_for(streams, &self.cfg, global, slot, mailbox.clone())
                });
                p.rebind(slot, mailbox);
                producers.push(p);
                if carried {
                    self.trackers[slot] = SeqTracker::resume_at(last_seq);
                }
            }
            DriveMode::Realtime(tasks) => {
                let p = Self::producer_for(streams, &self.cfg, global, slot, mailbox);
                let start = self
                    .start
                    .expect("realtime front end always has a start instant");
                tasks.push((slot, p.run_realtime(start)));
            }
        }
        self.globals[slot] = Some(global);
        slot
    }

    /// Resets one slot's mailbox and telemetry to the parked/fresh state.
    fn reset_slot(&mut self, local: usize) {
        self.mailboxes[local] = Arc::new(Mailbox::new(self.cfg.capacity, self.cfg.policy));
        self.trackers[local] = SeqTracker::new();
        self.delivered[local] = 0;
        self.max_depth[local] = 0;
        self.health[local] = CamHealthMachine::new(self.cfg.health);
        self.seen_delivered[local] = 0;
        self.seen_dropped[local] = 0;
        self.seen_pushed[local] = 0;
    }

    /// Whether this front end runs on the deterministic manual clock.
    pub fn is_manual(&self) -> bool {
        self.clock.is_manual()
    }

    /// Tick period, ns.
    pub fn tick_period_ns(&self) -> u64 {
        self.clock.period_ns()
    }

    /// Current time on the front end's clock, ns.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Advances to the next tick boundary (sleeping in real mode, jumping
    /// the manual clock otherwise) and, on the manual clock, pumps every
    /// producer up to that boundary. Returns the tick index just entered.
    pub fn next_tick(&mut self) -> u64 {
        let tick = self.tick;
        let boundary = self.clock.tick_boundary_ns(tick);
        self.clock.advance_to(boundary);
        if let DriveMode::Manual(producers) = &mut self.mode {
            let now = self.clock.now_ns();
            for p in producers {
                p.pump(now);
            }
        }
        self.tick += 1;
        tick
    }

    /// Drains every mailbox under its policy, in camera order. Frames come
    /// out stamped with their age at this instant; sequence gaps fold into
    /// the per-camera drop accounting.
    pub fn drain(&mut self) -> Vec<IngestFrame> {
        let now = self.clock.now_ns();
        let mut out = Vec::new();
        for cam in 0..self.mailboxes.len() {
            self.note_depth(cam);
            while let Some(f) = self.pop_cam(cam, now) {
                out.push(f);
                // LatestWins yields one (the newest) frame per drain by
                // construction; DropOldest drains FIFO to empty.
                if self.mailboxes[cam].policy() == OverflowPolicy::LatestWins {
                    break;
                }
            }
        }
        out
    }

    /// The serving loop's drain: pops **at most one** frame per camera —
    /// skipping cameras whose previous frame the caller still holds — so
    /// the caller never buffers more than one frame per camera. Under
    /// [`OverflowPolicy::LatestWins`] the popped frame is the newest
    /// queued (older ones fold into the drop accounting); under
    /// [`OverflowPolicy::DropOldest`] it is the FIFO head, and the surplus
    /// stays in the **bounded** ring, where producer-side eviction keeps
    /// memory bounded and every loss counted.
    ///
    /// # Panics
    ///
    /// Panics if `skip.len()` differs from the camera count.
    pub fn drain_ready(&mut self, skip: &[bool]) -> Vec<IngestFrame> {
        assert_eq!(
            skip.len(),
            self.mailboxes.len(),
            "drain_ready: mask length mismatch"
        );
        let now = self.clock.now_ns();
        let mut out = Vec::new();
        for (cam, &skipped) in skip.iter().enumerate() {
            self.note_depth(cam);
            if !skipped {
                if let Some(f) = self.pop_cam(cam, now) {
                    out.push(f);
                }
            }
        }
        out
    }

    /// Folds the camera's current queue depth into its peak telemetry.
    fn note_depth(&mut self, cam: usize) {
        let depth = self.mailboxes[cam].len();
        if depth > self.max_depth[cam] {
            self.max_depth[cam] = depth;
        }
    }

    /// Pops one frame from `cam`'s mailbox under its policy, recording
    /// delivery, sequence gaps, and the frame's age at `now`.
    fn pop_cam(&mut self, cam: usize, now: u64) -> Option<IngestFrame> {
        let (stamped, _skipped) = self.mailboxes[cam].pop_policy()?;
        self.trackers[cam].observe(stamped.seq);
        self.delivered[cam] += 1;
        let age_ns = now.saturating_sub(stamped.due_ns);
        self.age_hist.record(age_ns);
        Some(IngestFrame {
            cam: stamped.cam,
            seq: stamped.seq,
            due_ns: stamped.due_ns,
            age_ns,
            frame: stamped.frame,
        })
    }

    /// Accounts one completed tick: `busy_ns` of processing (measured in
    /// real mode, predicted in manual mode) advances the manual clock and
    /// counts a tick-deadline overrun when it exceeds the tick period.
    /// This is also the health-machine heartbeat: each camera's machine
    /// observes the tick's delivered/dropped/pushed deltas.
    pub fn record_busy(&mut self, busy_ns: u64) {
        self.ticks_run += 1;
        if busy_ns > self.clock.period_ns() {
            self.tick_overruns += 1;
        }
        self.clock.advance_by(busy_ns);
        for cam in 0..self.mailboxes.len() {
            // Parked slots have no producer: their health machines stay
            // frozen rather than decaying toward Dead on zero deliveries.
            if self.globals[cam].is_none() {
                continue;
            }
            let delivered = self.delivered[cam];
            let dropped = self.trackers[cam].dropped();
            let pushed = self.mailboxes[cam].pushed() as u64;
            self.health[cam].observe_tick(
                delivered - self.seen_delivered[cam],
                dropped - self.seen_dropped[cam],
                pushed - self.seen_pushed[cam],
            );
            self.seen_delivered[cam] = delivered;
            self.seen_dropped[cam] = dropped;
            self.seen_pushed[cam] = pushed;
        }
    }

    /// Health classification of one camera.
    pub fn health(&self, cam: usize) -> CamHealth {
        self.health[cam].state()
    }

    /// The camera's full health machine (events, backoff telemetry).
    pub fn health_machine(&self, cam: usize) -> &CamHealthMachine {
        &self.health[cam]
    }

    /// Per-camera mask of `Dead` cameras — OR this into the
    /// [`IngestFrontEnd::drain_ready`] skip mask and a dead camera costs
    /// zero tick budget (its liveness is then observed from mailbox pushes
    /// alone, which is exactly what re-opens probation).
    pub fn dead_mask(&self) -> Vec<bool> {
        self.health
            .iter()
            .map(|h| h.state() == CamHealth::Dead)
            .collect()
    }

    /// Stops real-time producers (blocking until each acknowledges).
    /// Manual producers have nothing to stop. Idempotent.
    pub fn shutdown(&mut self) {
        if let DriveMode::Realtime(tasks) = &mut self.mode {
            tasks.clear(); // BackgroundTask::drop stops and joins
        }
    }

    /// The backpressure report (see [`IngestReport`]).
    pub fn report(&self) -> IngestReport {
        let per_cam = (0..self.num_cams())
            .map(|cam| CamReport {
                produced: self.mailboxes[cam].pushed() as u64,
                delivered: self.delivered[cam],
                dropped: self.trackers[cam].dropped(),
                queued: self.mailboxes[cam].len(),
                max_queue_depth: self.max_depth[cam],
                health: self.health[cam].state(),
            })
            .collect();
        let (age_p50_ns, age_p99_ns) = (self.age_hist.percentile(50), self.age_hist.percentile(99));
        IngestReport {
            ticks: self.ticks_run,
            tick_overruns: self.tick_overruns,
            per_cam,
            age_p50_ns,
            age_p99_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_carlane::{Benchmark, FrameSpec};

    fn tiny_streams(n: usize) -> StreamSet {
        StreamSet::drifting(Benchmark::MoLane, FrameSpec::new(32, 16, 6, 4, 2), n, 12, 5)
    }

    #[test]
    fn nominal_manual_load_delivers_one_frame_per_cam_per_tick() {
        let streams = tiny_streams(3);
        let cfg = IngestConfig::new(1_000_000);
        let mut fe = IngestFrontEnd::manual(&streams, &cfg);
        assert!(fe.is_manual());
        for tick in 0..6 {
            assert_eq!(fe.next_tick(), tick);
            let frames = fe.drain();
            assert_eq!(frames.len(), 3, "tick {tick}");
            // Camera order, consecutive sequence numbers, ages under one
            // tick period.
            for (cam, f) in frames.iter().enumerate() {
                assert_eq!(f.cam, cam);
                assert_eq!(f.seq, tick);
                assert!(f.age_ns < 1_000_000, "age {} at tick {tick}", f.age_ns);
            }
            fe.record_busy(200_000);
        }
        let report = fe.report();
        assert_eq!(report.ticks, 6);
        assert_eq!(report.tick_overruns, 0);
        assert_eq!(report.produced(), 18);
        assert_eq!(report.delivered(), 18);
        assert_eq!(report.dropped(), 0);
        assert!(report.age_p50_ns > 0 && report.age_p99_ns >= report.age_p50_ns);
    }

    #[test]
    fn manual_runs_are_bitwise_reproducible() {
        let run = || {
            let streams = tiny_streams(2);
            let cfg = IngestConfig::new(500_000).with_load(1.7);
            let mut fe = IngestFrontEnd::manual(&streams, &cfg);
            let mut sig = Vec::new();
            for _ in 0..5 {
                fe.next_tick();
                for f in fe.drain() {
                    sig.push((
                        f.cam,
                        f.seq,
                        f.due_ns,
                        f.age_ns,
                        f.frame.image.as_slice()[0].to_bits(),
                    ));
                }
                fe.record_busy(100_000);
            }
            sig
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn overload_sheds_and_accounts_at_ingest() {
        let streams = tiny_streams(2);
        // Cam 1 offers 3 frames per tick into a latest-wins mailbox.
        let cfg = IngestConfig::new(1_000_000)
            .with_cam_load(1, 3.0)
            .with_capacity(2);
        let mut fe = IngestFrontEnd::manual(&streams, &cfg);
        let mut delivered1 = 0;
        for _ in 0..8 {
            fe.next_tick();
            for f in fe.drain() {
                if f.cam == 1 {
                    delivered1 += 1;
                }
            }
            fe.record_busy(0);
        }
        let report = fe.report();
        assert_eq!(report.per_cam[0].dropped, 0, "nominal cam sheds nothing");
        assert!(
            report.per_cam[1].dropped > 0,
            "overloaded cam must shed at ingest: {:?}",
            report.per_cam[1]
        );
        assert_eq!(delivered1 as u64, report.per_cam[1].delivered);
        assert!(
            report.per_cam[1].delivered <= 8,
            "latest-wins delivers at most one per tick"
        );
        // Conservation: everything produced is delivered, dropped, or
        // still queued.
        let c = report.per_cam[1];
        assert!(c.produced >= c.delivered + c.dropped);
        assert!(c.produced <= c.delivered + c.dropped + c.queued as u64 + 1);
    }

    #[test]
    fn busy_ticks_past_the_period_count_as_overruns() {
        let streams = tiny_streams(1);
        let cfg = IngestConfig::new(1_000_000);
        let mut fe = IngestFrontEnd::manual(&streams, &cfg);
        fe.next_tick();
        fe.drain();
        fe.record_busy(1_500_000); // 1.5 ticks of work
        fe.next_tick();
        fe.drain();
        fe.record_busy(100_000);
        let report = fe.report();
        assert_eq!(report.ticks, 2);
        assert_eq!(report.tick_overruns, 1);
    }

    #[test]
    fn health_walks_stall_death_probation_and_back_through_the_front_end() {
        use crate::producer::{FrameTap, TapVerdict};
        /// Camera goes dark for frames 2..=9, then resumes.
        struct DarkWindow;
        impl FrameTap for DarkWindow {
            fn tap(&mut self, k: u64, _f: &mut StampedFrame) -> TapVerdict {
                if (2..=9).contains(&k) {
                    TapVerdict::Suppress
                } else {
                    TapVerdict::Deliver
                }
            }
        }
        let streams = tiny_streams(2);
        let cfg = IngestConfig::new(1_000_000);
        let mut fe =
            IngestFrontEnd::manual_with_taps(&streams, &cfg, vec![(1, Box::new(DarkWindow))]);
        let mut trajectory = Vec::new();
        for _ in 0..16 {
            fe.next_tick();
            // The serving idiom: dead cameras are excluded from the drain,
            // so their recovery is observed from mailbox pushes alone.
            let skip = fe.dead_mask();
            let _ = fe.drain_ready(&skip);
            fe.record_busy(0);
            trajectory.push((fe.health(0), fe.health(1)));
        }
        assert!(
            trajectory.iter().all(|&(h0, _)| h0 == CamHealth::Healthy),
            "the untouched camera stays healthy: {trajectory:?}"
        );
        for want in [CamHealth::Stalled, CamHealth::Dead, CamHealth::Probation] {
            assert!(
                trajectory.iter().any(|&(_, h1)| h1 == want),
                "cam 1 must pass through {want:?}: {trajectory:?}"
            );
        }
        assert_eq!(
            trajectory.last().unwrap().1,
            CamHealth::Healthy,
            "cam 1 serves out probation and is re-promoted"
        );
        assert_eq!(fe.health_machine(1).death_events(), 1);
        assert_eq!(fe.health_machine(1).repromotions(), 1);
        assert_eq!(fe.report().per_cam[1].health, CamHealth::Healthy);
    }

    #[test]
    fn routed_slots_key_schedules_and_sources_by_global_id() {
        let streams = tiny_streams(4);
        let cfg = IngestConfig::new(1_000_000);
        let mut fe = IngestFrontEnd::manual_routed(&streams, &cfg, &[Some(3), None, Some(1)]);
        assert_eq!(fe.num_cams(), 3);
        assert_eq!(fe.num_active(), 2);
        assert_eq!(fe.global_of(0), Some(3));
        assert_eq!(fe.global_of(1), None);
        assert_eq!(fe.global_of(2), Some(1));
        fe.next_tick();
        let frames = fe.drain();
        assert_eq!(frames.len(), 2, "the parked slot delivers nothing");
        // Stamped with the LOCAL slot, pixels from the GLOBAL stream.
        assert_eq!((frames[0].cam, frames[1].cam), (0, 2));
        let mut reference = tiny_streams(4).isolate(3);
        assert_eq!(
            frames[0].frame.image.as_slice(),
            reference.next_frame(0).image.as_slice()
        );
        // The schedule follows the global camera: identical due times to
        // the identity (unrouted) front end's cams 3 and 1.
        let mut id_fe = IngestFrontEnd::manual(&tiny_streams(4), &cfg);
        id_fe.next_tick();
        let id_frames = id_fe.drain();
        assert_eq!(frames[0].due_ns, id_frames[3].due_ns);
        assert_eq!(frames[1].due_ns, id_frames[1].due_ns);
    }

    #[test]
    fn manual_handoff_migrates_a_camera_without_replay_or_loss() {
        let streams = tiny_streams(3);
        let cfg = IngestConfig::new(1_000_000);
        // Shard A serves globals {0, 1}; shard B serves {2} + one parked
        // slot of headroom.
        let mut a = IngestFrontEnd::manual_routed(&streams, &cfg, &[Some(0), Some(1)]);
        let mut b = IngestFrontEnd::manual_routed(&streams, &cfg, &[Some(2), None]);
        let mut migrated = Vec::new();
        for _ in 0..4 {
            a.next_tick();
            b.next_tick();
            migrated.extend(a.drain().into_iter().filter(|f| f.cam == 1));
            b.drain();
            a.record_busy(0);
            b.record_busy(0);
        }
        let handoff = a.detach_cam(1);
        assert_eq!(handoff.global(), 1);
        assert!(handoff.carries_producer(), "manual mode carries state");
        assert_eq!(
            handoff.dropped_in_flight(),
            0,
            "between-tick migration finds an empty mailbox"
        );
        assert_eq!(a.num_active(), 1);
        assert_eq!(a.global_of(1), None);

        let slot = b.attach_cam(&streams, handoff);
        assert_eq!(slot, 1, "lowest parked slot");
        assert_eq!(b.global_of(1), Some(1));
        for _ in 4..8 {
            a.next_tick();
            b.next_tick();
            a.drain();
            migrated.extend(b.drain().into_iter().filter(|f| f.cam == 1));
            a.record_busy(0);
            b.record_busy(0);
        }
        // The migrated camera's delivery is exactly what a never-migrated
        // run produces: same seqs, due times and pixels, no gap booked.
        let mut reference = IngestFrontEnd::manual_routed(&streams, &cfg, &[Some(1)]);
        let mut expect = Vec::new();
        for _ in 0..8 {
            reference.next_tick();
            expect.extend(reference.drain());
            reference.record_busy(0);
        }
        assert_eq!(migrated.len(), expect.len());
        for (got, want) in migrated.iter().zip(&expect) {
            assert_eq!((got.seq, got.due_ns), (want.seq, want.due_ns));
            assert_eq!(got.frame.image.as_slice(), want.frame.image.as_slice());
        }
        assert_eq!(
            b.report().per_cam[1].dropped,
            0,
            "resumed tracker books no startup gap"
        );
        // The detaching shard's slot telemetry is parked-fresh.
        assert_eq!(a.report().per_cam[1], CamReport::default());
    }

    #[test]
    fn detach_discards_and_counts_in_flight_frames() {
        let streams = tiny_streams(2);
        let cfg = IngestConfig::new(1_000_000);
        let mut fe = IngestFrontEnd::manual(&streams, &cfg);
        fe.next_tick(); // pumps one frame per camera; nothing drained yet
        let handoff = fe.detach_cam(0);
        assert_eq!(handoff.dropped_in_flight(), 1);
        assert_eq!(fe.global_of(0), None);
        assert_eq!(fe.drain().len(), 1, "only the surviving camera delivers");
        // Re-attach onto the (now lowest-parked) slot 0: the carried
        // producer resumes at frame 1 — frame 0 died in flight, and the
        // new tracker books exactly that gap.
        let slot = fe.attach_cam(&streams, handoff);
        assert_eq!(slot, 0);
        fe.next_tick();
        let frames = fe.drain();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].seq, 1, "no replay of the discarded frame");
        fe.record_busy(0);
        assert_eq!(fe.report().per_cam[0].dropped, 1);
    }

    #[test]
    #[should_panic(expected = "already parked")]
    fn detaching_a_parked_slot_is_rejected() {
        let streams = tiny_streams(2);
        let cfg = IngestConfig::new(1_000_000);
        let mut fe = IngestFrontEnd::manual_routed(&streams, &cfg, &[Some(0), None]);
        fe.detach_cam(1);
    }

    #[test]
    #[should_panic(expected = "no parked slot")]
    fn attaching_without_headroom_is_rejected() {
        let streams = tiny_streams(2);
        let cfg = IngestConfig::new(1_000_000);
        let mut a = IngestFrontEnd::manual_routed(&streams, &cfg, &[Some(0)]);
        let mut b = IngestFrontEnd::manual_routed(&streams, &cfg, &[Some(1)]);
        let handoff = a.detach_cam(0);
        b.attach_cam(&streams, handoff);
    }

    #[test]
    #[should_panic(expected = "routed to two slots")]
    fn duplicate_global_routes_are_rejected() {
        let streams = tiny_streams(2);
        let cfg = IngestConfig::new(1_000_000);
        IngestFrontEnd::manual_routed(&streams, &cfg, &[Some(0), Some(0)]);
    }

    #[test]
    fn realtime_front_end_delivers_and_shuts_down() {
        let streams = tiny_streams(2);
        // 3 ms ticks so the test finishes quickly.
        let cfg = IngestConfig::new(3_000_000).with_prerender(4);
        let mut fe = IngestFrontEnd::realtime(&streams, &cfg);
        let mut total = 0;
        for _ in 0..4 {
            fe.next_tick();
            let t0 = Instant::now();
            let frames = fe.drain();
            total += frames.len();
            fe.record_busy(t0.elapsed().as_nanos() as u64);
        }
        fe.shutdown();
        assert!(total >= 4, "4 real ticks must deliver frames, got {total}");
        let report = fe.report();
        assert!(report.produced() >= total as u64);
    }
}
