//! [`IngestFrontEnd`]: per-camera mailboxes + producers + tick scheduling,
//! bundled behind the drain/telemetry API the serving loop consumes.
//!
//! The lifecycle of one serving tick:
//!
//! 1. [`IngestFrontEnd::next_tick`] advances the [`TickClock`] to the next
//!    tick boundary. On the manual clock this also pumps every camera
//!    producer synchronously (deterministic); on the real clock the
//!    producers have been pushing from their background threads all along.
//! 2. [`IngestFrontEnd::drain`] empties the mailboxes under each camera's
//!    [`OverflowPolicy`], stamping every frame with its **age** (now minus
//!    due time) and folding sequence-number gaps into the per-camera drop
//!    accounting.
//! 3. The server batches/serves what survives its admission gate and calls
//!    [`IngestFrontEnd::record_busy`] with the tick's processing time
//!    (measured wall-clock in real mode; the cost model's prediction in
//!    manual mode) — which both advances the manual clock and counts
//!    tick-deadline overruns.
//!
//! [`IngestFrontEnd::report`] exposes the backpressure picture: per-camera
//! produced/delivered/dropped counts, peak queue depth, frame-age p50/p99
//! and tick overruns.

use crate::clock::TickClock;
use crate::health::{CamHealth, CamHealthMachine, HealthConfig};
use crate::mailbox::{Mailbox, OverflowPolicy, SeqTracker};
use crate::producer::{CameraProducer, CameraSchedule, FrameSource, FrameTap, StampedFrame};
use ld_carlane::{LabeledFrame, StreamSet};
use ld_tensor::parallel::BackgroundTask;
use ld_tensor::rng::mix_seed;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cap on retained frame-age samples (enough for every CI run; a real
/// deployment would downsample).
const MAX_AGE_SAMPLES: usize = 1 << 16;

/// Configuration of the ingest front end.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Serving tick period, ns.
    pub tick_period_ns: u64,
    /// Mailbox capacity per camera (rounded up to a power of two, min 2).
    pub capacity: usize,
    /// Overflow/drain policy of every mailbox.
    pub policy: OverflowPolicy,
    /// Per-frame delivery jitter cap, ns (clamped per camera so the
    /// [`CameraSchedule`] monotonicity invariant holds).
    pub jitter_ns: u64,
    /// Seed for the per-camera phases and jitter.
    pub seed: u64,
    /// When > 0, pre-render this many frames per camera and cycle them —
    /// real-time benches use this so render cost cannot distort the
    /// offered load. 0 renders live (the deterministic default).
    pub prerender: usize,
    /// Offered load per camera, as frames per tick (1.0 = nominal: one
    /// frame per camera per tick). Per-camera overrides via
    /// [`IngestConfig::with_cam_load`].
    pub load: f64,
    /// `(cam, frames-per-tick)` overrides of [`IngestConfig::load`].
    pub cam_loads: Vec<(usize, f64)>,
    /// Thresholds of the per-camera health state machine.
    pub health: HealthConfig,
}

impl IngestConfig {
    /// Nominal-load defaults: capacity 4, latest-wins, jitter an eighth of
    /// the tick, live rendering.
    pub fn new(tick_period_ns: u64) -> Self {
        IngestConfig {
            tick_period_ns,
            capacity: 4,
            policy: OverflowPolicy::LatestWins,
            jitter_ns: tick_period_ns / 8,
            seed: 0x1A6E57,
            prerender: 0,
            load: 1.0,
            cam_loads: Vec::new(),
            health: HealthConfig::default(),
        }
    }

    /// Overrides the health-machine thresholds (builder style).
    pub fn with_health(mut self, health: HealthConfig) -> Self {
        self.health = health;
        self
    }

    /// Sets the uniform offered load (builder style).
    pub fn with_load(mut self, frames_per_tick: f64) -> Self {
        self.load = frames_per_tick;
        self
    }

    /// Overrides one camera's offered load (builder style).
    pub fn with_cam_load(mut self, cam: usize, frames_per_tick: f64) -> Self {
        self.cam_loads.push((cam, frames_per_tick));
        self
    }

    /// Sets the overflow policy (builder style).
    pub fn with_policy(mut self, policy: OverflowPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the mailbox capacity (builder style).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Pre-renders `frames` per camera instead of rendering live (builder
    /// style).
    pub fn with_prerender(mut self, frames: usize) -> Self {
        self.prerender = frames;
        self
    }

    /// Disables delivery jitter (builder style) — with zero jitter and
    /// nominal load, camera `k`'s frame `t` is due strictly inside tick
    /// `t`, which the bitwise serve-parity tests rely on.
    pub fn without_jitter(mut self) -> Self {
        self.jitter_ns = 0;
        self
    }

    fn cam_load(&self, cam: usize) -> f64 {
        self.cam_loads
            .iter()
            .rev()
            .find(|&&(c, _)| c == cam)
            .map_or(self.load, |&(_, l)| l)
    }
}

/// A drained frame, ready for admission: the stamp plus its age at drain
/// time.
#[derive(Debug, Clone)]
pub struct IngestFrame {
    /// Producing camera id (== the server's stream id).
    pub cam: usize,
    /// Per-camera sequence number.
    pub seq: u64,
    /// Due (capture) time, ns on the front end's clock.
    pub due_ns: u64,
    /// Age when drained: `drain_now − due_ns`.
    pub age_ns: u64,
    /// The frame.
    pub frame: LabeledFrame,
}

/// Per-camera backpressure counters (a snapshot; see
/// [`IngestFrontEnd::report`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CamReport {
    /// Frames the camera pushed into its mailbox.
    pub produced: u64,
    /// Frames the serving loop drained.
    pub delivered: u64,
    /// Frames lost between production and drain (sequence-gap accounting:
    /// covers both full-ring evictions and latest-wins skips).
    pub dropped: u64,
    /// Frames still queued at snapshot time.
    pub queued: usize,
    /// Peak queue depth observed at drain boundaries.
    pub max_queue_depth: usize,
    /// Health classification at snapshot time.
    pub health: CamHealth,
}

/// Whole-front-end backpressure report.
#[derive(Debug, Clone, Default)]
pub struct IngestReport {
    /// Ticks accounted via [`IngestFrontEnd::record_busy`].
    pub ticks: usize,
    /// Ticks whose processing time exceeded the tick period.
    pub tick_overruns: usize,
    /// Per-camera counters.
    pub per_cam: Vec<CamReport>,
    /// Median drained-frame age, ns.
    pub age_p50_ns: u64,
    /// 99th-percentile drained-frame age, ns.
    pub age_p99_ns: u64,
}

impl IngestReport {
    /// Total frames produced across cameras.
    pub fn produced(&self) -> u64 {
        self.per_cam.iter().map(|c| c.produced).sum()
    }

    /// Total frames delivered across cameras.
    pub fn delivered(&self) -> u64 {
        self.per_cam.iter().map(|c| c.delivered).sum()
    }

    /// Total frames dropped at ingest across cameras.
    pub fn dropped(&self) -> u64 {
        self.per_cam.iter().map(|c| c.dropped).sum()
    }
}

enum DriveMode {
    /// Deterministic: producers pumped synchronously at tick boundaries.
    Manual(Vec<CameraProducer>),
    /// Producers on pooled background threads; the handles stop them on
    /// drop.
    Realtime(Vec<BackgroundTask>),
}

/// The ingest front end (see the module docs).
pub struct IngestFrontEnd {
    clock: TickClock,
    mailboxes: Vec<Arc<Mailbox<StampedFrame>>>,
    mode: DriveMode,
    trackers: Vec<SeqTracker>,
    delivered: Vec<u64>,
    max_depth: Vec<usize>,
    health: Vec<CamHealthMachine>,
    // Previous-tick counter snapshots, so the health machines see deltas.
    seen_delivered: Vec<u64>,
    seen_dropped: Vec<u64>,
    seen_pushed: Vec<u64>,
    tick: u64,
    ticks_run: usize,
    tick_overruns: usize,
    age_samples: Vec<u64>,
}

impl std::fmt::Debug for IngestFrontEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestFrontEnd")
            .field("cams", &self.mailboxes.len())
            .field("tick", &self.tick)
            .field("manual", &self.clock.is_manual())
            .finish_non_exhaustive()
    }
}

impl IngestFrontEnd {
    /// Deterministic front end over a manual clock: one camera per stream
    /// of `streams`, pumped synchronously at every tick boundary.
    pub fn manual(streams: &StreamSet, cfg: &IngestConfig) -> Self {
        Self::manual_with_taps(streams, cfg, Vec::new())
    }

    /// [`IngestFrontEnd::manual`] with per-camera fault-injection taps
    /// (`(cam, tap)` pairs; see [`FrameTap`]) installed between frame
    /// generation and mailbox delivery.
    ///
    /// # Panics
    ///
    /// Panics if a tap names a camera the stream set does not have.
    pub fn manual_with_taps(
        streams: &StreamSet,
        cfg: &IngestConfig,
        taps: Vec<(usize, Box<dyn FrameTap>)>,
    ) -> Self {
        let clock = TickClock::manual(cfg.tick_period_ns);
        let (mailboxes, producers) = Self::build_cams(streams, cfg, taps);
        Self::assemble(clock, mailboxes, DriveMode::Manual(producers), cfg.health)
    }

    /// Real-time front end: cameras run on pooled background threads
    /// ([`ld_tensor::parallel::spawn_background`]) pushing frames at their
    /// real due times; the serving loop sleeps to each tick boundary.
    pub fn realtime(streams: &StreamSet, cfg: &IngestConfig) -> Self {
        Self::realtime_with_taps(streams, cfg, Vec::new())
    }

    /// [`IngestFrontEnd::realtime`] with per-camera fault-injection taps.
    ///
    /// # Panics
    ///
    /// Panics if a tap names a camera the stream set does not have.
    pub fn realtime_with_taps(
        streams: &StreamSet,
        cfg: &IngestConfig,
        taps: Vec<(usize, Box<dyn FrameTap>)>,
    ) -> Self {
        let start = Instant::now();
        let clock = TickClock::real_at(start, Duration::from_nanos(cfg.tick_period_ns));
        let (mailboxes, producers) = Self::build_cams(streams, cfg, taps);
        let tasks = producers
            .into_iter()
            .map(|p| p.run_realtime(start))
            .collect();
        Self::assemble(clock, mailboxes, DriveMode::Realtime(tasks), cfg.health)
    }

    fn build_cams(
        streams: &StreamSet,
        cfg: &IngestConfig,
        mut taps: Vec<(usize, Box<dyn FrameTap>)>,
    ) -> (Vec<Arc<Mailbox<StampedFrame>>>, Vec<CameraProducer>) {
        let n = streams.num_streams();
        assert!(n > 0, "IngestFrontEnd: no cameras");
        let mut mailboxes = Vec::with_capacity(n);
        let mut producers = Vec::with_capacity(n);
        for cam in 0..n {
            let load = cfg.cam_load(cam);
            assert!(
                load.is_finite() && load > 0.0,
                "IngestFrontEnd: bad load {load} for cam {cam}"
            );
            let period = ((cfg.tick_period_ns as f64 / load) as u64).max(4);
            // Deterministic per-camera phase in (0, period/2]; jitter is
            // clamped so phase + jitter stays inside the frame period.
            let phase = (period / 8 * (1 + (cam as u64 % 4))).max(1);
            let jitter = cfg.jitter_ns.min(period.saturating_sub(phase) / 2);
            let schedule =
                CameraSchedule::new(phase, period, jitter, mix_seed(cfg.seed, cam as u64));
            let mailbox = Arc::new(Mailbox::new(cfg.capacity, cfg.policy));
            let source = if cfg.prerender > 0 {
                FrameSource::Prerendered(streams.prerender(cam, cfg.prerender))
            } else {
                FrameSource::Live(streams.isolate(cam))
            };
            let mut producer = CameraProducer::new(cam, source, schedule, mailbox.clone());
            if let Some(pos) = taps.iter().position(|&(c, _)| c == cam) {
                producer = producer.with_tap(taps.swap_remove(pos).1);
            }
            producers.push(producer);
            mailboxes.push(mailbox);
        }
        assert!(
            taps.is_empty(),
            "IngestFrontEnd: tap for unknown camera {}",
            taps[0].0
        );
        (mailboxes, producers)
    }

    fn assemble(
        clock: TickClock,
        mailboxes: Vec<Arc<Mailbox<StampedFrame>>>,
        mode: DriveMode,
        health: HealthConfig,
    ) -> Self {
        let n = mailboxes.len();
        IngestFrontEnd {
            clock,
            mailboxes,
            mode,
            trackers: vec![SeqTracker::new(); n],
            delivered: vec![0; n],
            max_depth: vec![0; n],
            health: vec![CamHealthMachine::new(health); n],
            seen_delivered: vec![0; n],
            seen_dropped: vec![0; n],
            seen_pushed: vec![0; n],
            tick: 0,
            ticks_run: 0,
            tick_overruns: 0,
            age_samples: Vec::new(),
        }
    }

    /// Number of cameras.
    pub fn num_cams(&self) -> usize {
        self.mailboxes.len()
    }

    /// Whether this front end runs on the deterministic manual clock.
    pub fn is_manual(&self) -> bool {
        self.clock.is_manual()
    }

    /// Tick period, ns.
    pub fn tick_period_ns(&self) -> u64 {
        self.clock.period_ns()
    }

    /// Current time on the front end's clock, ns.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Advances to the next tick boundary (sleeping in real mode, jumping
    /// the manual clock otherwise) and, on the manual clock, pumps every
    /// producer up to that boundary. Returns the tick index just entered.
    pub fn next_tick(&mut self) -> u64 {
        let tick = self.tick;
        let boundary = self.clock.tick_boundary_ns(tick);
        self.clock.advance_to(boundary);
        if let DriveMode::Manual(producers) = &mut self.mode {
            let now = self.clock.now_ns();
            for p in producers {
                p.pump(now);
            }
        }
        self.tick += 1;
        tick
    }

    /// Drains every mailbox under its policy, in camera order. Frames come
    /// out stamped with their age at this instant; sequence gaps fold into
    /// the per-camera drop accounting.
    pub fn drain(&mut self) -> Vec<IngestFrame> {
        let now = self.clock.now_ns();
        let mut out = Vec::new();
        for cam in 0..self.mailboxes.len() {
            self.note_depth(cam);
            while let Some(f) = self.pop_cam(cam, now) {
                out.push(f);
                // LatestWins yields one (the newest) frame per drain by
                // construction; DropOldest drains FIFO to empty.
                if self.mailboxes[cam].policy() == OverflowPolicy::LatestWins {
                    break;
                }
            }
        }
        out
    }

    /// The serving loop's drain: pops **at most one** frame per camera —
    /// skipping cameras whose previous frame the caller still holds — so
    /// the caller never buffers more than one frame per camera. Under
    /// [`OverflowPolicy::LatestWins`] the popped frame is the newest
    /// queued (older ones fold into the drop accounting); under
    /// [`OverflowPolicy::DropOldest`] it is the FIFO head, and the surplus
    /// stays in the **bounded** ring, where producer-side eviction keeps
    /// memory bounded and every loss counted.
    ///
    /// # Panics
    ///
    /// Panics if `skip.len()` differs from the camera count.
    pub fn drain_ready(&mut self, skip: &[bool]) -> Vec<IngestFrame> {
        assert_eq!(
            skip.len(),
            self.mailboxes.len(),
            "drain_ready: mask length mismatch"
        );
        let now = self.clock.now_ns();
        let mut out = Vec::new();
        for (cam, &skipped) in skip.iter().enumerate() {
            self.note_depth(cam);
            if !skipped {
                if let Some(f) = self.pop_cam(cam, now) {
                    out.push(f);
                }
            }
        }
        out
    }

    /// Folds the camera's current queue depth into its peak telemetry.
    fn note_depth(&mut self, cam: usize) {
        let depth = self.mailboxes[cam].len();
        if depth > self.max_depth[cam] {
            self.max_depth[cam] = depth;
        }
    }

    /// Pops one frame from `cam`'s mailbox under its policy, recording
    /// delivery, sequence gaps, and the frame's age at `now`.
    fn pop_cam(&mut self, cam: usize, now: u64) -> Option<IngestFrame> {
        let (stamped, _skipped) = self.mailboxes[cam].pop_policy()?;
        self.trackers[cam].observe(stamped.seq);
        self.delivered[cam] += 1;
        let age_ns = now.saturating_sub(stamped.due_ns);
        if self.age_samples.len() < MAX_AGE_SAMPLES {
            self.age_samples.push(age_ns);
        }
        Some(IngestFrame {
            cam: stamped.cam,
            seq: stamped.seq,
            due_ns: stamped.due_ns,
            age_ns,
            frame: stamped.frame,
        })
    }

    /// Accounts one completed tick: `busy_ns` of processing (measured in
    /// real mode, predicted in manual mode) advances the manual clock and
    /// counts a tick-deadline overrun when it exceeds the tick period.
    /// This is also the health-machine heartbeat: each camera's machine
    /// observes the tick's delivered/dropped/pushed deltas.
    pub fn record_busy(&mut self, busy_ns: u64) {
        self.ticks_run += 1;
        if busy_ns > self.clock.period_ns() {
            self.tick_overruns += 1;
        }
        self.clock.advance_by(busy_ns);
        for cam in 0..self.mailboxes.len() {
            let delivered = self.delivered[cam];
            let dropped = self.trackers[cam].dropped();
            let pushed = self.mailboxes[cam].pushed() as u64;
            self.health[cam].observe_tick(
                delivered - self.seen_delivered[cam],
                dropped - self.seen_dropped[cam],
                pushed - self.seen_pushed[cam],
            );
            self.seen_delivered[cam] = delivered;
            self.seen_dropped[cam] = dropped;
            self.seen_pushed[cam] = pushed;
        }
    }

    /// Health classification of one camera.
    pub fn health(&self, cam: usize) -> CamHealth {
        self.health[cam].state()
    }

    /// The camera's full health machine (events, backoff telemetry).
    pub fn health_machine(&self, cam: usize) -> &CamHealthMachine {
        &self.health[cam]
    }

    /// Per-camera mask of `Dead` cameras — OR this into the
    /// [`IngestFrontEnd::drain_ready`] skip mask and a dead camera costs
    /// zero tick budget (its liveness is then observed from mailbox pushes
    /// alone, which is exactly what re-opens probation).
    pub fn dead_mask(&self) -> Vec<bool> {
        self.health
            .iter()
            .map(|h| h.state() == CamHealth::Dead)
            .collect()
    }

    /// Stops real-time producers (blocking until each acknowledges).
    /// Manual producers have nothing to stop. Idempotent.
    pub fn shutdown(&mut self) {
        if let DriveMode::Realtime(tasks) = &mut self.mode {
            tasks.clear(); // BackgroundTask::drop stops and joins
        }
    }

    /// The backpressure report (see [`IngestReport`]).
    pub fn report(&self) -> IngestReport {
        let per_cam = (0..self.num_cams())
            .map(|cam| CamReport {
                produced: self.mailboxes[cam].pushed() as u64,
                delivered: self.delivered[cam],
                dropped: self.trackers[cam].dropped(),
                queued: self.mailboxes[cam].len(),
                max_queue_depth: self.max_depth[cam],
                health: self.health[cam].state(),
            })
            .collect();
        let (age_p50_ns, age_p99_ns) = percentiles(&self.age_samples);
        IngestReport {
            ticks: self.ticks_run,
            tick_overruns: self.tick_overruns,
            per_cam,
            age_p50_ns,
            age_p99_ns,
        }
    }
}

/// `(p50, p99)` of the samples (0 when empty).
fn percentiles(samples: &[u64]) -> (u64, u64) {
    if samples.is_empty() {
        return (0, 0);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let at = |p: usize| sorted[(sorted.len() * p / 100).min(sorted.len() - 1)];
    (at(50), at(99))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_carlane::{Benchmark, FrameSpec};

    fn tiny_streams(n: usize) -> StreamSet {
        StreamSet::drifting(Benchmark::MoLane, FrameSpec::new(32, 16, 6, 4, 2), n, 12, 5)
    }

    #[test]
    fn nominal_manual_load_delivers_one_frame_per_cam_per_tick() {
        let streams = tiny_streams(3);
        let cfg = IngestConfig::new(1_000_000);
        let mut fe = IngestFrontEnd::manual(&streams, &cfg);
        assert!(fe.is_manual());
        for tick in 0..6 {
            assert_eq!(fe.next_tick(), tick);
            let frames = fe.drain();
            assert_eq!(frames.len(), 3, "tick {tick}");
            // Camera order, consecutive sequence numbers, ages under one
            // tick period.
            for (cam, f) in frames.iter().enumerate() {
                assert_eq!(f.cam, cam);
                assert_eq!(f.seq, tick);
                assert!(f.age_ns < 1_000_000, "age {} at tick {tick}", f.age_ns);
            }
            fe.record_busy(200_000);
        }
        let report = fe.report();
        assert_eq!(report.ticks, 6);
        assert_eq!(report.tick_overruns, 0);
        assert_eq!(report.produced(), 18);
        assert_eq!(report.delivered(), 18);
        assert_eq!(report.dropped(), 0);
        assert!(report.age_p50_ns > 0 && report.age_p99_ns >= report.age_p50_ns);
    }

    #[test]
    fn manual_runs_are_bitwise_reproducible() {
        let run = || {
            let streams = tiny_streams(2);
            let cfg = IngestConfig::new(500_000).with_load(1.7);
            let mut fe = IngestFrontEnd::manual(&streams, &cfg);
            let mut sig = Vec::new();
            for _ in 0..5 {
                fe.next_tick();
                for f in fe.drain() {
                    sig.push((
                        f.cam,
                        f.seq,
                        f.due_ns,
                        f.age_ns,
                        f.frame.image.as_slice()[0].to_bits(),
                    ));
                }
                fe.record_busy(100_000);
            }
            sig
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn overload_sheds_and_accounts_at_ingest() {
        let streams = tiny_streams(2);
        // Cam 1 offers 3 frames per tick into a latest-wins mailbox.
        let cfg = IngestConfig::new(1_000_000)
            .with_cam_load(1, 3.0)
            .with_capacity(2);
        let mut fe = IngestFrontEnd::manual(&streams, &cfg);
        let mut delivered1 = 0;
        for _ in 0..8 {
            fe.next_tick();
            for f in fe.drain() {
                if f.cam == 1 {
                    delivered1 += 1;
                }
            }
            fe.record_busy(0);
        }
        let report = fe.report();
        assert_eq!(report.per_cam[0].dropped, 0, "nominal cam sheds nothing");
        assert!(
            report.per_cam[1].dropped > 0,
            "overloaded cam must shed at ingest: {:?}",
            report.per_cam[1]
        );
        assert_eq!(delivered1 as u64, report.per_cam[1].delivered);
        assert!(
            report.per_cam[1].delivered <= 8,
            "latest-wins delivers at most one per tick"
        );
        // Conservation: everything produced is delivered, dropped, or
        // still queued.
        let c = report.per_cam[1];
        assert!(c.produced >= c.delivered + c.dropped);
        assert!(c.produced <= c.delivered + c.dropped + c.queued as u64 + 1);
    }

    #[test]
    fn busy_ticks_past_the_period_count_as_overruns() {
        let streams = tiny_streams(1);
        let cfg = IngestConfig::new(1_000_000);
        let mut fe = IngestFrontEnd::manual(&streams, &cfg);
        fe.next_tick();
        fe.drain();
        fe.record_busy(1_500_000); // 1.5 ticks of work
        fe.next_tick();
        fe.drain();
        fe.record_busy(100_000);
        let report = fe.report();
        assert_eq!(report.ticks, 2);
        assert_eq!(report.tick_overruns, 1);
    }

    #[test]
    fn health_walks_stall_death_probation_and_back_through_the_front_end() {
        use crate::producer::{FrameTap, TapVerdict};
        /// Camera goes dark for frames 2..=9, then resumes.
        struct DarkWindow;
        impl FrameTap for DarkWindow {
            fn tap(&mut self, k: u64, _f: &mut StampedFrame) -> TapVerdict {
                if (2..=9).contains(&k) {
                    TapVerdict::Suppress
                } else {
                    TapVerdict::Deliver
                }
            }
        }
        let streams = tiny_streams(2);
        let cfg = IngestConfig::new(1_000_000);
        let mut fe =
            IngestFrontEnd::manual_with_taps(&streams, &cfg, vec![(1, Box::new(DarkWindow))]);
        let mut trajectory = Vec::new();
        for _ in 0..16 {
            fe.next_tick();
            // The serving idiom: dead cameras are excluded from the drain,
            // so their recovery is observed from mailbox pushes alone.
            let skip = fe.dead_mask();
            let _ = fe.drain_ready(&skip);
            fe.record_busy(0);
            trajectory.push((fe.health(0), fe.health(1)));
        }
        assert!(
            trajectory.iter().all(|&(h0, _)| h0 == CamHealth::Healthy),
            "the untouched camera stays healthy: {trajectory:?}"
        );
        for want in [CamHealth::Stalled, CamHealth::Dead, CamHealth::Probation] {
            assert!(
                trajectory.iter().any(|&(_, h1)| h1 == want),
                "cam 1 must pass through {want:?}: {trajectory:?}"
            );
        }
        assert_eq!(
            trajectory.last().unwrap().1,
            CamHealth::Healthy,
            "cam 1 serves out probation and is re-promoted"
        );
        assert_eq!(fe.health_machine(1).death_events(), 1);
        assert_eq!(fe.health_machine(1).repromotions(), 1);
        assert_eq!(fe.report().per_cam[1].health, CamHealth::Healthy);
    }

    #[test]
    fn realtime_front_end_delivers_and_shuts_down() {
        let streams = tiny_streams(2);
        // 3 ms ticks so the test finishes quickly.
        let cfg = IngestConfig::new(3_000_000).with_prerender(4);
        let mut fe = IngestFrontEnd::realtime(&streams, &cfg);
        let mut total = 0;
        for _ in 0..4 {
            fe.next_tick();
            let t0 = Instant::now();
            let frames = fe.drain();
            total += frames.len();
            fe.record_busy(t0.elapsed().as_nanos() as u64);
        }
        fe.shutdown();
        assert!(total >= 4, "4 real ticks must deliver frames, got {total}");
        let report = fe.report();
        assert!(report.produced() >= total as u64);
    }
}
