//! Camera producers: frame generators on their own jittered clocks.
//!
//! A real fleet's cameras do not tick in lockstep with the server — each
//! delivers on its own crystal, with per-frame jitter, and keeps delivering
//! whether or not the consumer is keeping up. A [`CameraProducer`] models
//! exactly that: an `ld_carlane` frame source driven by a
//! [`CameraSchedule`] (phase + period + bounded deterministic jitter), with
//! every produced frame stamped ([`StampedFrame`]) with its camera id, a
//! per-camera sequence number (so downstream drops are observable as
//! sequence gaps) and its due time (so downstream can compute frame *age*).
//!
//! Two drive modes:
//!
//! * [`CameraProducer::pump`] — synchronous: render and push everything due
//!   by a given manual-clock time. Deterministic; what the bitwise
//!   serve-parity tests run.
//! * [`CameraProducer::run_realtime`] — the producer moves onto a pooled
//!   background thread ([`ld_tensor::parallel::spawn_background`]) and
//!   pushes frames at their real due times until stopped.

use crate::mailbox::Mailbox;
use ld_carlane::{LabeledFrame, StreamSet};
use ld_tensor::parallel::{spawn_background, BackgroundTask};
use ld_tensor::rng::mix_seed;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A produced frame plus the metadata that makes ingest shedding
/// observable: which camera, which sequence number, and when it was due.
#[derive(Debug, Clone)]
pub struct StampedFrame {
    /// Producing camera id.
    pub cam: usize,
    /// Per-camera monotone sequence number (0-based).
    pub seq: u64,
    /// Due (capture) time on the shared clock, ns — frame age at any later
    /// instant is `now_ns - due_ns`.
    pub due_ns: u64,
    /// The labeled frame itself.
    pub frame: LabeledFrame,
}

/// What a [`FrameTap`] decides about one about-to-be-delivered frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapVerdict {
    /// Deliver the (possibly mutated) frame normally.
    Deliver,
    /// The frame is lost in transit: the sequence number advances but
    /// nothing is delivered — downstream observes a sequence *gap*.
    Lose,
    /// The camera goes silent: nothing is delivered and the sequence
    /// number does **not** advance — downstream observes a stall, and the
    /// stream resumes seamlessly (no gap) when delivery restarts.
    Suppress,
    /// The camera firmware reboots: the frame is delivered, but its
    /// sequence counter restarts at 0 — downstream observes a sequence
    /// *regression* (see [`crate::SeqTracker::regressions`]).
    Restart,
}

/// A hook between frame generation and mailbox delivery — the seam the
/// fault injector (`ld_fault`) plugs into. The tap sees every frame the
/// schedule makes due, may mutate its pixels in place (corruption faults),
/// and rules on its delivery ([`TapVerdict`]). `k` is the camera's frame
/// index on its own schedule (monotone even across sequence restarts), so
/// a seeded tap is bitwise reproducible run over run.
pub trait FrameTap: Send {
    /// Inspect/mutate frame `k` and rule on its delivery.
    fn tap(&mut self, k: u64, frame: &mut StampedFrame) -> TapVerdict;
}

/// When camera frames come due: `due(k) = phase + k·period + jitter(k)`,
/// with deterministic per-frame jitter in `[0, jitter_ns]`.
///
/// The constructor enforces `phase + jitter_ns < period`, which pins two
/// properties the front end relies on: due times are strictly monotone per
/// camera, and frame `k` falls inside its own frame interval
/// `(k·period, (k+1)·period)` — at nominal load (camera period == tick
/// period) every tick drains exactly one frame per camera.
#[derive(Debug, Clone, Copy)]
pub struct CameraSchedule {
    phase_ns: u64,
    period_ns: u64,
    jitter_ns: u64,
    seed: u64,
}

impl CameraSchedule {
    /// Builds a schedule.
    ///
    /// # Panics
    ///
    /// Panics if `period_ns == 0`, `phase_ns == 0`, or
    /// `phase_ns + jitter_ns >= period_ns`.
    pub fn new(phase_ns: u64, period_ns: u64, jitter_ns: u64, seed: u64) -> Self {
        assert!(period_ns > 0, "CameraSchedule: zero period");
        assert!(
            phase_ns > 0,
            "CameraSchedule: zero phase (frame 0 must come due after t=0)"
        );
        assert!(
            phase_ns + jitter_ns < period_ns,
            "CameraSchedule: phase {phase_ns} + jitter {jitter_ns} must stay under period {period_ns}"
        );
        CameraSchedule {
            phase_ns,
            period_ns,
            jitter_ns,
            seed,
        }
    }

    /// Frame period in nanoseconds.
    pub fn period_ns(&self) -> u64 {
        self.period_ns
    }

    /// Due time of frame `k` on the shared clock.
    pub fn due_ns(&self, k: u64) -> u64 {
        let jitter = if self.jitter_ns == 0 {
            0
        } else {
            mix_seed(self.seed, k) % (self.jitter_ns + 1)
        };
        self.phase_ns + k * self.period_ns + jitter
    }
}

/// Where a producer's pixels come from.
#[derive(Debug, Clone)]
pub enum FrameSource {
    /// Render live from a single-camera stream set (e.g.
    /// [`StreamSet::isolate`]); frames are generated in order, exactly as
    /// the synchronous serving path would pull them.
    Live(StreamSet),
    /// A pre-rendered timeline, cycled — for benches that must not let
    /// render cost distort the offered load.
    Prerendered(Vec<LabeledFrame>),
}

impl FrameSource {
    fn frame(&mut self, k: u64) -> LabeledFrame {
        match self {
            FrameSource::Live(set) => set.next_frame(0),
            FrameSource::Prerendered(frames) => {
                assert!(!frames.is_empty(), "FrameSource: empty timeline");
                frames[(k % frames.len() as u64) as usize].clone()
            }
        }
    }
}

/// One camera: a frame source, its delivery schedule, and the mailbox it
/// feeds (see the module docs). An optional [`FrameTap`] sits between
/// generation and delivery; it is what decouples the stamped sequence
/// number `seq` from the schedule index `next` (a tap can lose frames,
/// silence the camera, or restart its sequence counter).
pub struct CameraProducer {
    cam: usize,
    source: FrameSource,
    schedule: CameraSchedule,
    /// Schedule index of the next frame to generate (monotone, never
    /// resets — it drives due times).
    next: u64,
    /// Sequence number the next delivered frame will be stamped with.
    seq: u64,
    tap: Option<Box<dyn FrameTap>>,
    lost: u64,
    suppressed: u64,
    restarts: u64,
    mailbox: Arc<Mailbox<StampedFrame>>,
}

impl std::fmt::Debug for CameraProducer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CameraProducer")
            .field("cam", &self.cam)
            .field("next", &self.next)
            .field("seq", &self.seq)
            .field("tapped", &self.tap.is_some())
            .field("lost", &self.lost)
            .field("suppressed", &self.suppressed)
            .field("restarts", &self.restarts)
            .finish()
    }
}

impl CameraProducer {
    /// Builds a producer feeding `mailbox`.
    pub fn new(
        cam: usize,
        source: FrameSource,
        schedule: CameraSchedule,
        mailbox: Arc<Mailbox<StampedFrame>>,
    ) -> Self {
        CameraProducer {
            cam,
            source,
            schedule,
            next: 0,
            seq: 0,
            tap: None,
            lost: 0,
            suppressed: 0,
            restarts: 0,
            mailbox,
        }
    }

    /// Installs a fault-injection tap between generation and delivery.
    pub fn with_tap(mut self, tap: Box<dyn FrameTap>) -> Self {
        self.tap = Some(tap);
        self
    }

    /// The camera id frames are stamped with (the front end's local slot).
    pub fn cam(&self) -> usize {
        self.cam
    }

    /// Retargets the producer onto a new camera id and mailbox, keeping its
    /// schedule, frame-source cursor and sequence state intact. This is the
    /// migration seam: a manual-mode camera detached from one front end
    /// resumes on another with no frame replayed, skipped, or re-stamped
    /// out of order.
    pub fn rebind(&mut self, cam: usize, mailbox: Arc<Mailbox<StampedFrame>>) {
        self.cam = cam;
        self.mailbox = mailbox;
    }

    /// The delivery schedule.
    pub fn schedule(&self) -> &CameraSchedule {
        &self.schedule
    }

    /// Frames generated so far (the schedule index; without a tap this
    /// equals the next sequence number).
    pub fn produced(&self) -> u64 {
        self.next
    }

    /// Frames a tap ruled lost in transit (sequence gaps).
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Frames a tap silently swallowed (camera stall, no gap).
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Sequence-counter restarts a tap injected.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Synchronous pump: renders and pushes every frame due by `now_ns`.
    /// Returns how many frames were pushed. Deterministic — the manual-mode
    /// front end calls this once per tick boundary.
    pub fn pump(&mut self, now_ns: u64) -> usize {
        let mut pushed = 0;
        while self.schedule.due_ns(self.next) <= now_ns {
            self.push_next();
            pushed += 1;
        }
        pushed
    }

    fn push_next(&mut self) {
        let k = self.next;
        let due_ns = self.schedule.due_ns(k);
        let frame = self.source.frame(k);
        self.next += 1;
        let mut stamped = StampedFrame {
            cam: self.cam,
            seq: self.seq,
            due_ns,
            frame,
        };
        let verdict = match &mut self.tap {
            Some(tap) => tap.tap(k, &mut stamped),
            None => TapVerdict::Deliver,
        };
        match verdict {
            TapVerdict::Deliver => {
                self.mailbox.push(stamped);
                self.seq += 1;
            }
            TapVerdict::Lose => {
                self.lost += 1;
                self.seq += 1;
            }
            TapVerdict::Suppress => {
                self.suppressed += 1;
            }
            TapVerdict::Restart => {
                self.restarts += 1;
                stamped.seq = 0;
                self.mailbox.push(stamped);
                self.seq = 1;
            }
        }
    }

    /// Moves the producer onto a pooled background thread that pushes each
    /// frame at its real due time (relative to `start`, the same instant
    /// the front end's [`crate::TickClock`] runs on) until stopped.
    ///
    /// Sleeps are chunked (≤ 2 ms) so a stop request is honoured promptly.
    pub fn run_realtime(mut self, start: Instant) -> BackgroundTask {
        spawn_background(move |stop| loop {
            if stop.is_stopped() {
                return;
            }
            let due = self.schedule.due_ns(self.next);
            loop {
                let now = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                if now >= due {
                    break;
                }
                if stop.is_stopped() {
                    return;
                }
                std::thread::sleep(Duration::from_nanos((due - now).min(2_000_000)));
            }
            self.push_next();
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mailbox::OverflowPolicy;
    use ld_carlane::{Benchmark, FrameSpec};

    fn tiny_set() -> StreamSet {
        StreamSet::drifting(Benchmark::MoLane, FrameSpec::new(32, 16, 6, 4, 2), 2, 8, 7)
    }

    #[test]
    fn schedule_is_monotone_and_stays_in_its_frame_interval() {
        let s = CameraSchedule::new(250, 1_000, 500, 42);
        let mut prev = 0;
        for k in 0..64 {
            let due = s.due_ns(k);
            assert!(due > prev, "due times must be strictly monotone");
            assert!(
                due > k * 1_000 && due < (k + 1) * 1_000,
                "frame {k} at {due}"
            );
            prev = due;
        }
        // Deterministic: the same schedule re-derives the same times.
        let again = CameraSchedule::new(250, 1_000, 500, 42);
        assert_eq!(
            (0..64).map(|k| s.due_ns(k)).collect::<Vec<_>>(),
            (0..64).map(|k| again.due_ns(k)).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "stay under period")]
    fn schedule_rejects_jitter_spilling_past_the_period() {
        CameraSchedule::new(600, 1_000, 400, 1);
    }

    #[test]
    fn pump_pushes_exactly_the_due_frames() {
        let mb = Arc::new(Mailbox::new(8, OverflowPolicy::DropOldest));
        let set = tiny_set().isolate(0);
        let sched = CameraSchedule::new(300, 1_000, 0, 9);
        let mut prod = CameraProducer::new(0, FrameSource::Live(set), sched, mb.clone());

        assert_eq!(prod.pump(200), 0, "nothing due before the phase");
        assert_eq!(prod.pump(1_000), 1, "frame 0 due at 300");
        assert_eq!(prod.pump(1_000), 0, "idempotent at the same time");
        assert_eq!(prod.pump(3_500), 3, "frames 1..=3 due by 3500");
        let f = mb.pop().expect("frame 0");
        assert_eq!((f.cam, f.seq, f.due_ns), (0, 0, 300));
        // Live rendering matches the synchronous stream pull bit for bit.
        let mut reference = tiny_set().isolate(0);
        assert_eq!(
            f.frame.image.as_slice(),
            reference.next_frame(0).image.as_slice()
        );
    }

    #[test]
    fn prerendered_source_cycles() {
        let mut set = tiny_set().isolate(0);
        let timeline: Vec<LabeledFrame> = (0..3).map(|_| set.next_frame(0)).collect();
        let mut src = FrameSource::Prerendered(timeline.clone());
        assert_eq!(
            src.frame(4).image.as_slice(),
            timeline[1].image.as_slice(),
            "frame 4 of a 3-frame timeline wraps to 1"
        );
    }

    #[test]
    fn tap_verdicts_drive_seq_stamping_and_delivery() {
        struct ScriptTap(Vec<TapVerdict>);
        impl FrameTap for ScriptTap {
            fn tap(&mut self, k: u64, frame: &mut StampedFrame) -> TapVerdict {
                if k == 2 {
                    frame.frame.image.as_mut_slice()[0] = f32::NAN;
                }
                self.0
                    .get(k as usize)
                    .copied()
                    .unwrap_or(TapVerdict::Deliver)
            }
        }
        let mb = Arc::new(Mailbox::new(16, OverflowPolicy::DropOldest));
        let sched = CameraSchedule::new(300, 1_000, 0, 9);
        let mut prod = CameraProducer::new(
            0,
            FrameSource::Live(tiny_set().isolate(0)),
            sched,
            mb.clone(),
        )
        .with_tap(Box::new(ScriptTap(vec![
            TapVerdict::Deliver,
            TapVerdict::Lose,
            TapVerdict::Deliver,
            TapVerdict::Suppress,
            TapVerdict::Restart,
            TapVerdict::Deliver,
        ])));
        prod.pump(5_500); // frames 0..=5 due (due(5) = 5300)
        assert_eq!(
            (
                prod.produced(),
                prod.lost(),
                prod.suppressed(),
                prod.restarts()
            ),
            (6, 1, 1, 1)
        );

        let delivered: Vec<StampedFrame> = std::iter::from_fn(|| mb.pop()).collect();
        // k=0 → seq 0; k=1 lost (seq 1 burned: a gap); k=2 → seq 2 with the
        // corrupted pixel; k=3 suppressed (seq untouched: no gap); k=4
        // restarts at seq 0; k=5 → seq 1 of the new epoch.
        assert_eq!(
            delivered.iter().map(|f| f.seq).collect::<Vec<_>>(),
            [0, 2, 0, 1]
        );
        assert!(
            delivered[1].frame.image.as_slice()[0].is_nan(),
            "tap mutation delivered"
        );
        // Due times keep flowing from the schedule index across the restart.
        assert_eq!(
            delivered.iter().map(|f| f.due_ns).collect::<Vec<_>>(),
            [300, 2_300, 4_300, 5_300]
        );
    }

    #[test]
    fn realtime_producer_delivers_on_schedule_and_stops() {
        let mb = Arc::new(Mailbox::new(64, OverflowPolicy::DropOldest));
        let set = tiny_set().isolate(1);
        // 2 ms frames: a short real-time run delivers several.
        let sched = CameraSchedule::new(500_000, 2_000_000, 100_000, 3);
        let prod = CameraProducer::new(1, FrameSource::Live(set), sched, mb.clone());
        let start = Instant::now();
        let task = prod.run_realtime(start);
        while mb.len() < 3 {
            std::thread::yield_now();
        }
        task.stop();
        let after = mb.pushed();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(mb.pushed(), after, "a stopped producer pushes nothing");
        let f = mb.pop().expect("first frame");
        assert_eq!((f.cam, f.seq), (1, 0));
    }
}
