//! Per-layer roofline latency estimation.
//!
//! Each operator's time is `max(compute time, memory time)` plus a fixed
//! kernel-launch overhead, where compute time uses a per-operator-kind
//! efficiency (achievable fraction of peak) and memory time divides the
//! operator's touched bytes by DRAM bandwidth. This level of modelling
//! reproduces the *shape* of Figure 3 — which (model, power-mode) pairs
//! meet which deadline — not cycle-exact numbers; EXPERIMENTS.md records
//! estimates as estimates.

use crate::bench_data::GemmMeasurement;
use crate::spec::{OrinSpec, PowerMode};
use ld_ufld::cost::{CostKind, LayerCost};

/// Achievable fraction of peak per operator kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Efficiency {
    /// Convolutions (im2col/implicit GEMM kernels).
    pub conv: f64,
    /// Dense layers (GEMV at batch 1 — bandwidth bound; roofline handles it).
    pub fc: f64,
    /// Bandwidth-bound elementwise/normalisation ops.
    pub elementwise: f64,
}

impl Default for Efficiency {
    fn default() -> Self {
        // Calibrated to eager-mode PyTorch 1.11 FP32 on Orin (the paper's
        // software stack — no TensorRT, since the model is re-trained in
        // place): dense conv kernels reach under a third of FP32 peak;
        // elementwise kernels reach ~¾ of DRAM bandwidth.
        Efficiency {
            conv: 0.29,
            fc: 0.50,
            elementwise: 0.75,
        }
    }
}

impl Efficiency {
    /// Fits the compute efficiencies from measured `BENCH_gemm.json` rows
    /// instead of the hand-estimated seed constants.
    ///
    /// An [`Efficiency`] is a *fraction of achievable peak*, so it transfers
    /// between hosts even though the measurements come from the development
    /// machine rather than an Orin: the best blocked-kernel rate across all
    /// shapes stands in for peak, and each operator class gets the geometric
    /// mean of its shapes' rates relative to that peak — conv-shaped
    /// products (im2col, `m ≥ 16`) drive `conv`, small-`m` products (the
    /// batched FC head) drive `fc`. `elementwise` has no GEMM measurement
    /// and keeps its calibrated default.
    ///
    /// Classes without a measured shape fall back to the default constants,
    /// so a truncated bench file degrades gracefully.
    pub fn from_gemm_bench(measurements: &[GemmMeasurement]) -> Efficiency {
        let hand = Efficiency::default();
        let blocked: Vec<&GemmMeasurement> =
            measurements.iter().filter(|m| m.is_blocked()).collect();
        let Some(peak) = blocked
            .iter()
            .map(|m| m.gflops)
            .max_by(|a, b| a.partial_cmp(b).expect("finite"))
        else {
            return hand;
        };
        let geomean_ratio = |rows: &[&GemmMeasurement]| -> Option<f64> {
            if rows.is_empty() {
                return None;
            }
            let log_sum: f64 = rows.iter().map(|m| (m.gflops / peak).ln()).sum();
            Some((log_sum / rows.len() as f64).exp())
        };
        let conv_rows: Vec<&GemmMeasurement> = blocked
            .iter()
            .copied()
            .filter(|m| !m.is_fc_shaped())
            .collect();
        let fc_rows: Vec<&GemmMeasurement> = blocked
            .iter()
            .copied()
            .filter(|m| m.is_fc_shaped())
            .collect();
        Efficiency {
            conv: geomean_ratio(&conv_rows).unwrap_or(hand.conv),
            fc: geomean_ratio(&fc_rows).unwrap_or(hand.fc),
            elementwise: hand.elementwise,
        }
    }
}

/// Measured batch-parallel backward speedups, as `(batch, speedup)` points
/// fitted from the full-model rows of `BENCH_backward.json`.
///
/// Since the backward pass fans images over the worker pool, its wall-clock
/// no longer scales like `batch × single-image backward` on a multi-core
/// host — the admission gate would overprice adapting ticks and shed
/// adaptation it could afford. This table records the measured
/// `sequential ÷ parallel` ratio per batch size; [`BackwardCal::speedup_at`]
/// interpolates between measured batches (clamping at the ends), and
/// [`BackwardCal::NONE`] is the identity calibration (factor 1.0
/// everywhere) used when no bench trajectory is available — which keeps the
/// hand-calibrated Figure-3 feasible set pinned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackwardCal {
    points: [(f64, f64); Self::MAX],
    len: usize,
}

impl BackwardCal {
    /// Maximum number of `(batch, speedup)` points retained.
    pub const MAX: usize = 8;

    /// The identity calibration: speedup 1.0 at every batch.
    pub const NONE: BackwardCal = BackwardCal {
        points: [(0.0, 1.0); Self::MAX],
        len: 0,
    };

    /// Builds the table from `(batch, speedup)` pairs. Non-finite or
    /// non-positive entries are dropped; points are sorted by batch and at
    /// most [`BackwardCal::MAX`] smallest batches are kept (duplicates:
    /// last one wins is not guaranteed — feed one point per batch).
    pub fn from_points(pairs: &[(usize, f64)]) -> BackwardCal {
        let mut sane: Vec<(f64, f64)> = pairs
            .iter()
            .filter(|&&(b, s)| b > 0 && s.is_finite() && s > 0.0)
            .map(|&(b, s)| (b as f64, s))
            .collect();
        sane.sort_by(|a, b| a.0.total_cmp(&b.0));
        sane.truncate(Self::MAX);
        let mut cal = BackwardCal::NONE;
        for (i, &p) in sane.iter().enumerate() {
            cal.points[i] = p;
        }
        cal.len = sane.len();
        cal
    }

    /// Fits the table from measured bench rows: full-model parallel rows
    /// carrying a `speedup_vs_sequential` become the calibration points.
    pub fn from_backward_bench(rows: &[crate::bench_data::BackwardMeasurement]) -> BackwardCal {
        let pairs: Vec<(usize, f64)> = rows
            .iter()
            .filter(|r| r.is_model_scope() && r.is_parallel())
            .filter_map(|r| r.speedup_vs_sequential.map(|s| (r.batch, s)))
            .collect();
        BackwardCal::from_points(&pairs)
    }

    /// `true` when no measured point is present (identity calibration).
    pub fn is_none(&self) -> bool {
        self.len == 0
    }

    /// The speedup factor to credit a backward over `batch` images:
    /// piecewise-linear between measured batches, clamped to the first/last
    /// point outside the measured range, `1.0` when empty.
    pub fn speedup_at(&self, batch: usize) -> f64 {
        if self.len == 0 {
            return 1.0;
        }
        let pts = &self.points[..self.len];
        let b = batch as f64;
        if b <= pts[0].0 {
            return pts[0].1;
        }
        if b >= pts[self.len - 1].0 {
            return pts[self.len - 1].1;
        }
        for w in pts.windows(2) {
            let ((b0, s0), (b1, s1)) = (w[0], w[1]);
            if b <= b1 {
                let t = (b - b0) / (b1 - b0);
                return s0 + t * (s1 - s0);
            }
        }
        pts[self.len - 1].1
    }
}

/// Measured int8 inference speedup: the wall-clock ratio of the deployed
/// `ld_quant` u8×i8 `vpdpbusd` kernel to the blocked f32 kernel, pooled
/// (geometric mean) over the conv shapes measured in `BENCH_gemm.json`.
///
/// `Precision::Int8`'s modelled 8× is the Orin tensor-core TOPS ratio; the
/// kernel actually deployed realises some host-dependent fraction of it.
/// Feeding this calibration into
/// [`crate::AdaptCostModel::with_int8_cal`] makes batch admission credit
/// quantized ticks with the *measured* ratio instead of the spec-sheet one
/// — without it ([`Int8Cal::NONE`]) the modelled constant stays in force
/// and the hand-calibrated feasible set is unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Int8Cal {
    speedup: Option<f64>,
}

impl Int8Cal {
    /// No measurement: `Precision::Int8` keeps its modelled multiplier.
    pub const NONE: Int8Cal = Int8Cal { speedup: None };

    /// Wraps an already-computed speedup ratio; non-finite or non-positive
    /// values degrade to [`Int8Cal::NONE`].
    pub fn from_speedup(speedup: f64) -> Int8Cal {
        if speedup.is_finite() && speedup > 0.0 {
            Int8Cal {
                speedup: Some(speedup),
            }
        } else {
            Int8Cal::NONE
        }
    }

    /// Fits the calibration from measured bench rows: every conv-shaped
    /// `int8_u8` row is matched with the `blocked` f32 row at the same
    /// shape, and the speedup is the geometric mean of the per-shape
    /// `gflops` ratios (both kernels count 2·m·k·n ops, so the ratio is
    /// pure wall-clock). FC-shaped products are excluded — at batch-scale
    /// `m` they are bandwidth bound and would drag the compute multiplier
    /// below what conv layers (the dominant cost) actually achieve.
    /// No matched pair → [`Int8Cal::NONE`].
    pub fn from_gemm_bench(rows: &[GemmMeasurement]) -> Int8Cal {
        let ratios: Vec<f64> = rows
            .iter()
            .filter(|u| u.is_int8_u8() && !u.is_fc_shaped())
            .filter_map(|u| {
                rows.iter()
                    .find(|f| f.is_blocked() && f.shape == u.shape)
                    .map(|f| u.gflops / f.gflops)
            })
            .filter(|r| r.is_finite() && *r > 0.0)
            .collect();
        if ratios.is_empty() {
            return Int8Cal::NONE;
        }
        let log_mean = ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64;
        Int8Cal::from_speedup(log_mean.exp())
    }

    /// `true` when no measurement is present.
    pub fn is_none(&self) -> bool {
        self.speedup.is_none()
    }

    /// The measured speedup, or `modelled` when uncalibrated.
    pub fn speedup_or(&self, modelled: f64) -> f64 {
        self.speedup.unwrap_or(modelled)
    }
}

/// The roofline model: hardware spec + efficiencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Board description.
    pub spec: OrinSpec,
    /// Per-kind efficiencies.
    pub eff: Efficiency,
}

impl Roofline {
    /// Model with default AGX Orin spec and calibrated efficiencies.
    pub fn agx_orin() -> Self {
        Roofline {
            spec: OrinSpec::agx_orin(),
            eff: Efficiency::default(),
        }
    }

    /// AGX Orin spec with efficiencies refitted from measured GEMM numbers
    /// (see [`Efficiency::from_gemm_bench`]). This is what the batch
    /// admission logic consumes when a `BENCH_gemm.json` trajectory is
    /// available; the Figure-3 reproduction keeps the hand-calibrated
    /// default so the paper's feasible set stays pinned.
    pub fn agx_orin_calibrated(measurements: &[GemmMeasurement]) -> Self {
        Roofline {
            spec: OrinSpec::agx_orin(),
            eff: Efficiency::from_gemm_bench(measurements),
        }
    }

    /// Seconds to execute one operator at `mode` with `batch` images.
    pub fn layer_seconds(&self, cost: &LayerCost, mode: PowerMode, batch: usize) -> f64 {
        let b = batch as f64;
        let (flop_eff, is_compute) = match cost.kind {
            CostKind::Conv => (self.eff.conv, true),
            CostKind::Fc => (self.eff.fc, true),
            CostKind::Bn | CostKind::Act | CostKind::Add | CostKind::Pool => {
                (self.eff.elementwise, false)
            }
        };
        let compute_s = if is_compute {
            cost.flops * b / (self.spec.peak_flops(mode) * flop_eff)
        } else {
            // Elementwise kernels are bandwidth bound; compute is negligible.
            0.0
        };
        // Activations scale with batch; parameters are read once per kernel.
        let bytes = (cost.bytes_in + cost.bytes_out) * b + cost.bytes_param;
        let mem_s = bytes / (self.spec.peak_bytes_per_s(mode) * self.eff.elementwise);
        compute_s.max(mem_s) + self.spec.kernel_overhead_us * 1e-6
    }

    /// Seconds for a full forward pass over `costs` at `mode`/`batch`.
    pub fn forward_seconds(&self, costs: &[LayerCost], mode: PowerMode, batch: usize) -> f64 {
        costs
            .iter()
            .map(|c| self.layer_seconds(c, mode, batch))
            .sum()
    }

    /// Seconds for a backward pass.
    ///
    /// `train_all = false` models LD-BN-ADAPT's BN-only adaptation: every
    /// layer still propagates its input gradient (≈ 1× its forward cost for
    /// GEMM ops) and BN layers compute their cheap γ/β gradients, but conv
    /// and FC *weight* gradients (the second GEMM, another ≈ 1× forward)
    /// are skipped. `train_all = true` models full fine-tuning (the SOTA
    /// baseline): both GEMMs run.
    pub fn backward_seconds(
        &self,
        costs: &[LayerCost],
        mode: PowerMode,
        batch: usize,
        train_all: bool,
    ) -> f64 {
        let mut total = 0.0;
        for c in costs {
            let fwd = self.layer_seconds(c, mode, batch);
            let factor = match c.kind {
                // dX GEMM ≈ forward; dW GEMM ≈ another forward.
                CostKind::Conv | CostKind::Fc => {
                    if train_all {
                        2.0
                    } else {
                        1.0
                    }
                }
                // BN backward reduces twice over the activations.
                CostKind::Bn => 2.0,
                // Mask application / gradient routing ≈ forward.
                CostKind::Act | CostKind::Add | CostKind::Pool => 1.0,
            };
            total += fwd * factor;
        }
        total
    }

    /// Seconds for the optimizer update of `n_params` scalars
    /// (read grad + read/write value ⇒ 12 bytes each).
    pub fn update_seconds(&self, n_params: usize, mode: PowerMode) -> f64 {
        let bytes = 12.0 * n_params as f64;
        bytes / (self.spec.peak_bytes_per_s(mode) * self.eff.elementwise)
            + self.spec.kernel_overhead_us * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_ufld::cost::model_costs;
    use ld_ufld::{Backbone, UfldConfig};

    fn costs_r18() -> Vec<LayerCost> {
        model_costs(&UfldConfig::paper(Backbone::ResNet18, 4))
    }

    #[test]
    fn latency_decreases_with_power() {
        let rl = Roofline::agx_orin();
        let costs = costs_r18();
        let times: Vec<f64> = PowerMode::ALL
            .iter()
            .map(|&m| rl.forward_seconds(&costs, m, 1))
            .collect();
        for w in times.windows(2) {
            assert!(w[1] < w[0], "latency must drop with power: {times:?}");
        }
    }

    #[test]
    fn paper_scale_inference_is_single_digit_ms_at_maxn() {
        let rl = Roofline::agx_orin();
        let t = rl.forward_seconds(&costs_r18(), PowerMode::MaxN60, 1);
        assert!(t > 2e-3 && t < 20e-3, "forward {t}s");
    }

    #[test]
    fn bn_only_backward_is_cheaper_than_full() {
        let rl = Roofline::agx_orin();
        let costs = costs_r18();
        let bn_only = rl.backward_seconds(&costs, PowerMode::MaxN60, 1, false);
        let full = rl.backward_seconds(&costs, PowerMode::MaxN60, 1, true);
        assert!(bn_only < full, "{bn_only} !< {full}");
        // Full fine-tuning roughly doubles the GEMM work.
        assert!(full / bn_only > 1.3 && full / bn_only < 2.5);
    }

    #[test]
    fn batch_scales_compute_sublinearly_to_linearly() {
        let rl = Roofline::agx_orin();
        let costs = costs_r18();
        let t1 = rl.forward_seconds(&costs, PowerMode::MaxN60, 1);
        let t4 = rl.forward_seconds(&costs, PowerMode::MaxN60, 4);
        assert!(t4 > 2.0 * t1 && t4 < 4.5 * t1, "t1 {t1} t4 {t4}");
    }

    #[test]
    fn fitted_efficiencies_come_from_measured_ratios() {
        use crate::bench_data::GemmMeasurement;
        let rows = vec![
            GemmMeasurement {
                shape: [64, 576, 3136],
                kernel: "blocked".into(),
                gflops: 40.0,
            },
            GemmMeasurement {
                shape: [256, 1152, 3136],
                kernel: "blocked".into(),
                gflops: 50.0,
            },
            GemmMeasurement {
                shape: [4, 1568, 2048],
                kernel: "blocked".into(),
                gflops: 30.0,
            },
            // Baseline rows must not participate in the fit.
            GemmMeasurement {
                shape: [64, 576, 3136],
                kernel: "seed_naive".into(),
                gflops: 10.0,
            },
        ];
        let eff = Efficiency::from_gemm_bench(&rows);
        // conv = geomean(40/50, 50/50) = sqrt(0.8); fc = 30/50.
        assert!(
            (eff.conv - (0.8f64).sqrt()).abs() < 1e-9,
            "conv {}",
            eff.conv
        );
        assert!((eff.fc - 0.6).abs() < 1e-9, "fc {}", eff.fc);
        assert_eq!(eff.elementwise, Efficiency::default().elementwise);
        assert!(eff.conv > 0.0 && eff.conv <= 1.0);
        assert!(eff.fc > 0.0 && eff.fc <= 1.0);
    }

    #[test]
    fn fit_degrades_to_hand_constants_without_measurements() {
        assert_eq!(Efficiency::from_gemm_bench(&[]), Efficiency::default());
    }

    /// Structural only: the committed trajectory must always produce a
    /// usable calibration, but no inequality against the hand constants is
    /// asserted — the file is regenerated by `cargo bench gemm_blocked` on
    /// whatever host runs it, and host-dependent ratios must not break
    /// `cargo test`. (Exact fitting maths is pinned by the fixture test
    /// above.)
    #[test]
    fn committed_trajectory_yields_usable_calibration() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gemm.json");
        let rows = crate::bench_data::load_bench_gemm(path).expect("trajectory");
        let rl = Roofline::agx_orin_calibrated(&rows);
        assert!(
            rl.eff.conv > 0.0 && rl.eff.conv <= 1.0,
            "conv {}",
            rl.eff.conv
        );
        assert!(rl.eff.fc > 0.0 && rl.eff.fc <= 1.0, "fc {}", rl.eff.fc);
        assert_eq!(rl.eff.elementwise, Efficiency::default().elementwise);
    }

    #[test]
    fn update_cost_is_microseconds_for_bn_params() {
        let rl = Roofline::agx_orin();
        // ~10k BN scalars update in well under a millisecond.
        let t = rl.update_seconds(10_000, PowerMode::W15);
        assert!(t < 1e-3, "update {t}s");
    }

    #[test]
    fn backward_cal_none_is_identity() {
        let cal = BackwardCal::NONE;
        assert!(cal.is_none());
        for b in [1, 4, 8, 64] {
            assert_eq!(cal.speedup_at(b), 1.0);
        }
        assert!(BackwardCal::from_points(&[]).is_none());
        // Insane points are dropped, possibly down to the identity.
        assert!(BackwardCal::from_points(&[(0, 2.0), (4, f64::NAN), (4, -1.0)]).is_none());
    }

    #[test]
    fn backward_cal_interpolates_and_clamps() {
        // Deliberately unsorted input; table must sort by batch.
        let cal = BackwardCal::from_points(&[(8, 3.0), (1, 1.0), (4, 2.0)]);
        assert!(!cal.is_none());
        assert_eq!(cal.speedup_at(1), 1.0);
        assert_eq!(cal.speedup_at(4), 2.0);
        assert_eq!(cal.speedup_at(8), 3.0);
        // Midpoints interpolate linearly.
        assert!((cal.speedup_at(2) - (1.0 + 1.0 / 3.0)).abs() < 1e-12);
        assert!((cal.speedup_at(6) - 2.5).abs() < 1e-12);
        // Outside the measured range the end values clamp.
        assert_eq!(cal.speedup_at(64), 3.0);
        let no_b1 = BackwardCal::from_points(&[(4, 2.0), (8, 3.0)]);
        assert_eq!(no_b1.speedup_at(1), 2.0);
    }

    #[test]
    fn int8_cal_pools_matched_conv_shapes_only() {
        use crate::bench_data::GemmMeasurement;
        let row = |shape: [usize; 3], kernel: &str, gflops: f64| GemmMeasurement {
            shape,
            kernel: kernel.into(),
            gflops,
        };
        let rows = vec![
            row([64, 576, 3136], "blocked", 40.0),
            row([64, 576, 3136], "int8_u8", 80.0), // 2.0×
            row([512, 4608, 49], "blocked", 30.0),
            row([512, 4608, 49], "int8_u8", 135.0), // 4.5×
            // Must all be ignored: fc-shaped, unmatched shape, i16 row.
            row([4, 1568, 2048], "blocked", 60.0),
            row([4, 1568, 2048], "int8_u8", 600.0),
            row([128, 1152, 784], "int8_u8", 999.0),
            row([64, 576, 3136], "int8", 50.0),
        ];
        let cal = Int8Cal::from_gemm_bench(&rows);
        assert!(!cal.is_none());
        // geomean(2.0, 4.5) = 3.0
        assert!((cal.speedup_or(8.0) - 3.0).abs() < 1e-9, "{cal:?}");
    }

    #[test]
    fn int8_cal_degrades_to_modelled_constant() {
        assert!(Int8Cal::NONE.is_none());
        assert_eq!(Int8Cal::NONE.speedup_or(8.0), 8.0);
        assert!(Int8Cal::from_gemm_bench(&[]).is_none());
        assert!(Int8Cal::from_speedup(f64::NAN).is_none());
        assert!(Int8Cal::from_speedup(-2.0).is_none());
        assert_eq!(Int8Cal::from_speedup(3.5).speedup_or(8.0), 3.5);
    }

    /// Structural: once the committed trajectory carries `int8_u8` rows the
    /// fit must produce a usable positive speedup (no inequality against
    /// the modelled 8× — the ratio is host-dependent).
    #[test]
    fn committed_trajectory_yields_int8_calibration() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gemm.json");
        let rows = crate::bench_data::load_bench_gemm(path).expect("trajectory");
        let cal = Int8Cal::from_gemm_bench(&rows);
        assert!(!cal.is_none(), "BENCH_gemm.json lost its int8_u8 rows");
        assert!(cal.speedup_or(0.0) > 0.0);
    }

    #[test]
    fn backward_cal_fits_from_model_scope_parallel_rows_only() {
        use crate::bench_data::BackwardMeasurement;
        let row =
            |scope: &str, batch: usize, schedule: &str, speedup: Option<f64>| BackwardMeasurement {
                scope: scope.into(),
                batch,
                schedule: schedule.into(),
                ns_per_iter: 1000.0,
                speedup_vs_sequential: speedup,
            };
        let rows = vec![
            row("model", 1, "parallel", Some(1.1)),
            row("model", 8, "parallel", Some(2.5)),
            // Must all be ignored: wrong scope, wrong schedule, no speedup.
            row("conv_stage1", 8, "parallel", Some(9.0)),
            row("model", 8, "sequential", None),
            row("model", 4, "parallel", None),
        ];
        let cal = BackwardCal::from_backward_bench(&rows);
        assert_eq!(cal.speedup_at(1), 1.1);
        assert_eq!(cal.speedup_at(8), 2.5);
        assert!((cal.speedup_at(4) - (1.1 + 3.0 / 7.0 * 1.4)).abs() < 1e-12);
        assert!(BackwardCal::from_backward_bench(&[]).is_none());
    }
}
