//! Shard backpressure scoring for the fleet rebalancer.
//!
//! A sharded control plane (`ld_fleet`) must decide *when* one shard is
//! shedding while a neighbour idles, from telemetry alone. This module
//! reduces a shard's ingest/serving counters to a single dimensionless
//! **pressure score** built from the three signals the deadline analysis
//! already exposes:
//!
//! * **shed ratio** — the fraction of offered frames that never reached a
//!   batch (mailbox evictions, staleness sheds, admission cuts). 0 when
//!   everything offered is served, →1 under hopeless overload.
//! * **staleness excess** — how far the drained-frame age p99 extends past
//!   one tick period, capped so one pathological sample cannot dominate. A
//!   shard serving fresh frames scores 0 here even if it sheds.
//! * **overrun ratio** — the fraction of ticks whose processing time blew
//!   the tick deadline (the roofline's feasibility signal, observed rather
//!   than predicted).
//!
//! The score is deliberately *not* a latency prediction — the admission
//! gate already owns that. It is a rank statistic: monotone in each
//! overload symptom, comparable across shards serving different camera
//! counts, and 0 for an idle shard, so a rebalancer can act on
//! `hottest − coolest` gaps without modelling the workload.

/// One shard's backpressure inputs over some telemetry window (cumulative
/// counters are fine — the score only uses ratios).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardPressure {
    /// Frames offered at ingest (produced into the mailboxes).
    pub offered: u64,
    /// Frames that made it into a served batch.
    pub served: u64,
    /// Drained-frame age p99, ns.
    pub age_p99_ns: u64,
    /// Serving tick period, ns.
    pub tick_period_ns: u64,
    /// Ticks accounted in the window.
    pub ticks: usize,
    /// Ticks whose busy time exceeded the tick period.
    pub tick_overruns: usize,
}

/// Cap on the staleness-excess term: beyond 4 tick periods of age, a shard
/// is maximally stale and more age must not outvote the shed ratio.
const AGE_EXCESS_CAP: f64 = 4.0;

impl ShardPressure {
    /// The pressure score (see the module docs). 0 for an idle or
    /// perfectly-keeping-up shard; grows monotonically with shedding,
    /// staleness and deadline overruns. An empty window (nothing offered,
    /// no ticks) scores 0.
    pub fn score(&self) -> f64 {
        let shed = if self.offered == 0 {
            0.0
        } else {
            1.0 - (self.served.min(self.offered) as f64 / self.offered as f64)
        };
        let age_excess = if self.tick_period_ns == 0 {
            0.0
        } else {
            (self.age_p99_ns as f64 / self.tick_period_ns as f64 - 1.0).clamp(0.0, AGE_EXCESS_CAP)
        };
        let overruns = if self.ticks == 0 {
            0.0
        } else {
            self.tick_overruns.min(self.ticks) as f64 / self.ticks as f64
        };
        shed + age_excess + overruns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal() -> ShardPressure {
        ShardPressure {
            offered: 100,
            served: 100,
            age_p99_ns: 500_000,
            tick_period_ns: 1_000_000,
            ticks: 100,
            tick_overruns: 0,
        }
    }

    #[test]
    fn idle_and_nominal_shards_score_zero() {
        assert_eq!(ShardPressure::default().score(), 0.0);
        assert_eq!(nominal().score(), 0.0);
    }

    #[test]
    fn score_is_monotone_in_each_overload_symptom() {
        let base = nominal().score();
        let shed = ShardPressure {
            served: 60,
            ..nominal()
        };
        let stale = ShardPressure {
            age_p99_ns: 2_500_000,
            ..nominal()
        };
        let overrun = ShardPressure {
            tick_overruns: 25,
            ..nominal()
        };
        for (name, p) in [("shed", shed), ("stale", stale), ("overrun", overrun)] {
            assert!(p.score() > base, "{name} must raise the score");
        }
        // A 3×-overloaded shard dominates a nominal one by a wide margin.
        let hot = ShardPressure {
            offered: 300,
            served: 100,
            age_p99_ns: 1_800_000,
            ..nominal()
        };
        assert!(hot.score() > 0.5, "hot shard score {}", hot.score());
    }

    #[test]
    fn pathological_inputs_stay_bounded() {
        let p = ShardPressure {
            offered: 10,
            served: 50, // served > offered (window skew) must not go negative
            age_p99_ns: u64::MAX,
            tick_period_ns: 1,
            ticks: 1,
            tick_overruns: 9,
        };
        let s = p.score();
        assert!((0.0..=1.0 + AGE_EXCESS_CAP + 1.0).contains(&s), "score {s}");
    }
}
