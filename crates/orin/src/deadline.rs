//! Real-time deadlines and the §IV design-space exploration.

use crate::adapt_cost::AdaptCostModel;
use crate::spec::PowerMode;
use ld_ufld::{Backbone, UfldConfig};

/// A real-time constraint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deadline {
    /// Human label.
    pub name: &'static str,
    /// Frame budget in milliseconds.
    pub budget_ms: f64,
}

impl Deadline {
    /// The paper's strict constraint: a 30 FPS camera (33.3 ms).
    pub const FPS30: Deadline = Deadline {
        name: "30 FPS",
        budget_ms: 33.3,
    };
    /// The paper's relaxed constraint: 18 FPS / 55.5 ms (Audi A8 L3 system).
    pub const FPS18: Deadline = Deadline {
        name: "18 FPS",
        budget_ms: 55.5,
    };

    /// Whether a frame latency meets this deadline.
    pub fn met_by(&self, total_ms: f64) -> bool {
        total_ms <= self.budget_ms
    }
}

/// One point of the (backbone × power-mode) design space.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Backbone evaluated.
    pub backbone: Backbone,
    /// Power mode evaluated.
    pub mode: PowerMode,
    /// Worst-case frame latency (inference + adaptation, bs = 1) in ms.
    pub latency_ms: f64,
    /// Energy per frame in mJ.
    pub energy_mj: f64,
    /// Whether the 30 FPS deadline is met.
    pub meets_30fps: bool,
    /// Whether the 18 FPS deadline is met.
    pub meets_18fps: bool,
}

/// Evaluates the full design space of Figure 3 (both backbones × all
/// power modes) at adaptation batch size 1.
pub fn feasibility(num_lanes: usize) -> Vec<DesignPoint> {
    let mut points = Vec::new();
    for backbone in [Backbone::ResNet18, Backbone::ResNet34] {
        let cfg = UfldConfig::paper(backbone, num_lanes);
        let model = AdaptCostModel::paper_scale(&cfg);
        for mode in PowerMode::ALL {
            let frame = model.ld_bn_adapt_frame(mode, 1);
            let total = frame.total_ms();
            points.push(DesignPoint {
                backbone,
                mode,
                latency_ms: total,
                energy_mj: model.energy_mj(mode, 1),
                meets_30fps: Deadline::FPS30.met_by(total),
                meets_18fps: Deadline::FPS18.met_by(total),
            });
        }
    }
    points
}

/// The §IV selection rule: among design points meeting `deadline` and a
/// power cap, prefer the more robust (deeper) backbone, then lower energy.
///
/// Returns `None` when nothing is feasible.
pub fn best_configuration(
    points: &[DesignPoint],
    deadline: Deadline,
    power_cap_w: f64,
    prefer_robust: bool,
) -> Option<&DesignPoint> {
    points
        .iter()
        .filter(|p| deadline.met_by(p.latency_ms) && p.mode.watts() <= power_cap_w)
        .min_by(|a, b| {
            let depth = |p: &DesignPoint| match p.backbone {
                Backbone::ResNet34 => 0usize,
                Backbone::ResNet18 => 1usize,
            };
            if prefer_robust {
                depth(a)
                    .cmp(&depth(b))
                    .then(a.energy_mj.partial_cmp(&b.energy_mj).expect("finite"))
            } else {
                a.energy_mj
                    .partial_cmp(&b.energy_mj)
                    .expect("finite")
                    .then(depth(a).cmp(&depth(b)))
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_feasible_set_is_exactly_reproduced() {
        // §IV: 30 FPS → only R-18 @ 60 W. 18 FPS → R-18@60W, R-18@50W,
        // R-34@60W.
        let points = feasibility(4);
        let meets30: Vec<String> = points
            .iter()
            .filter(|p| p.meets_30fps)
            .map(|p| format!("{}@{}", p.backbone, p.mode))
            .collect();
        assert_eq!(meets30, vec!["R-18@60W (MAXN)"]);

        let meets18: Vec<String> = points
            .iter()
            .filter(|p| p.meets_18fps)
            .map(|p| format!("{}@{}", p.backbone, p.mode))
            .collect();
        assert_eq!(
            meets18,
            vec!["R-18@50W", "R-18@60W (MAXN)", "R-34@60W (MAXN)"]
        );
    }

    #[test]
    fn strict_power_cap_selects_r18_at_50w() {
        // §IV: "if there is a strict power constraint of 50W then R-18
        // should be used" (at the 18 FPS deadline).
        let points = feasibility(4);
        let best = best_configuration(&points, Deadline::FPS18, 50.0, false).expect("feasible");
        assert_eq!(best.backbone, Backbone::ResNet18);
        assert_eq!(best.mode, PowerMode::W50);
    }

    #[test]
    fn robustness_preference_selects_r34_at_60w() {
        // §IV: "if a more robust model is required … then R-34 should be
        // selected" (multi-target scenarios, 18 FPS, no power cap).
        let points = feasibility(4);
        let best = best_configuration(&points, Deadline::FPS18, 60.0, true).expect("feasible");
        assert_eq!(best.backbone, Backbone::ResNet34);
        assert_eq!(best.mode, PowerMode::MaxN60);
    }

    #[test]
    fn nothing_feasible_under_impossible_cap() {
        let points = feasibility(4);
        assert!(best_configuration(&points, Deadline::FPS30, 10.0, false).is_none());
    }

    #[test]
    fn deadline_met_by_boundary() {
        assert!(Deadline::FPS30.met_by(33.3));
        assert!(!Deadline::FPS30.met_by(33.31));
    }
}
