//! Nvidia Jetson AGX Orin hardware description.
//!
//! Figure 3 of the paper measures per-frame latency on a Jetson AGX Orin
//! across its `nvpmodel` power modes. Without the physical board, this
//! module captures the published characteristics that drive a roofline
//! estimate: CUDA core count, per-mode GPU clock and DRAM bandwidth, and
//! the mode's power budget (for energy estimates).
//!
//! Numbers follow Nvidia's Jetson AGX Orin (64 GB) module data sheet and
//! `nvpmodel` tables: 2048 CUDA cores; GPU clocks ≈ 420 / 624 / 828 /
//! 1301 MHz and EMC bandwidth ≈ 136.5 / 204.8 / 204.8 / 204.8 GB/s for the
//! 15 W / 30 W / 50 W / MAXN (~60 W) modes respectively.

/// A Jetson AGX Orin `nvpmodel` power mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerMode {
    /// 15 W budget.
    W15,
    /// 30 W budget.
    W30,
    /// 50 W budget.
    W50,
    /// MAXN — unlocked, ≈ 60 W (the paper's "60W" mode).
    MaxN60,
}

impl PowerMode {
    /// All modes in ascending power order (Figure 3's x-axis).
    pub const ALL: [PowerMode; 4] = [
        PowerMode::W15,
        PowerMode::W30,
        PowerMode::W50,
        PowerMode::MaxN60,
    ];

    /// Power budget in watts.
    pub fn watts(self) -> f64 {
        match self {
            PowerMode::W15 => 15.0,
            PowerMode::W30 => 30.0,
            PowerMode::W50 => 50.0,
            PowerMode::MaxN60 => 60.0,
        }
    }

    /// GPU clock in MHz under this mode.
    pub fn gpu_clock_mhz(self) -> f64 {
        match self {
            PowerMode::W15 => 420.0,
            PowerMode::W30 => 624.0,
            PowerMode::W50 => 828.0,
            PowerMode::MaxN60 => 1301.0,
        }
    }

    /// DRAM bandwidth in GB/s under this mode (EMC clock scales with the
    /// power budget: ≈1600 / 2133 / 3200 / 3200 MHz).
    pub fn mem_bandwidth_gbps(self) -> f64 {
        match self {
            PowerMode::W15 => 102.4,
            PowerMode::W30 => 136.5,
            PowerMode::W50 => 204.8,
            PowerMode::MaxN60 => 204.8,
        }
    }

    /// Display label matching the paper's figure.
    pub fn label(self) -> &'static str {
        match self {
            PowerMode::W15 => "15W",
            PowerMode::W30 => "30W",
            PowerMode::W50 => "50W",
            PowerMode::MaxN60 => "60W (MAXN)",
        }
    }
}

impl std::fmt::Display for PowerMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Static hardware description of the board.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrinSpec {
    /// CUDA cores (Ampere SMs × 128).
    pub cuda_cores: usize,
    /// Fixed per-kernel launch overhead in microseconds.
    pub kernel_overhead_us: f64,
    /// Host-side per-frame preprocessing cost in ms (1280×720 decode,
    /// resize to 288×800, normalise) — charged once per camera frame.
    pub host_preprocess_ms: f64,
}

impl OrinSpec {
    /// The Jetson AGX Orin 64 GB developer kit.
    pub fn agx_orin() -> Self {
        OrinSpec {
            cuda_cores: 2048,
            kernel_overhead_us: 6.0,
            host_preprocess_ms: 1.2,
        }
    }

    /// Peak FP32 throughput in FLOP/s at a power mode
    /// (2 FLOPs per core per cycle, fused multiply–add).
    pub fn peak_flops(&self, mode: PowerMode) -> f64 {
        2.0 * self.cuda_cores as f64 * mode.gpu_clock_mhz() * 1e6
    }

    /// DRAM bandwidth in bytes/s at a power mode.
    pub fn peak_bytes_per_s(&self, mode: PowerMode) -> f64 {
        mode.mem_bandwidth_gbps() * 1e9
    }
}

impl Default for OrinSpec {
    fn default() -> Self {
        OrinSpec::agx_orin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clocks_and_bandwidth_rise_with_power() {
        let modes = PowerMode::ALL;
        for w in modes.windows(2) {
            assert!(w[1].watts() > w[0].watts());
            assert!(w[1].gpu_clock_mhz() >= w[0].gpu_clock_mhz());
            assert!(w[1].mem_bandwidth_gbps() >= w[0].mem_bandwidth_gbps());
        }
    }

    #[test]
    fn maxn_peak_is_about_5_tflops_fp32() {
        let spec = OrinSpec::agx_orin();
        let p = spec.peak_flops(PowerMode::MaxN60);
        assert!(p > 4.5e12 && p < 6.0e12, "peak {p}");
    }

    #[test]
    fn labels_match_paper_axis() {
        assert_eq!(PowerMode::W15.label(), "15W");
        assert_eq!(PowerMode::MaxN60.to_string(), "60W (MAXN)");
    }
}
