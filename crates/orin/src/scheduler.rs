//! Deadline-aware adaptation scheduling and precision what-if analysis.
//!
//! §IV closes with: "real-time model adaptation … is possible but requires
//! a careful study of the multi-objective design space and the various
//! application constraints." This module operationalises that study:
//!
//! * [`AdaptBudget`] — given a (backbone, power mode, deadline), how much
//!   adaptation fits in each frame? (none / statistics only / the full
//!   BN backward / multiple steps);
//! * [`Precision`] — a what-if for FP16/INT8 execution (the paper's stack
//!   is FP32 PyTorch; Tensor-core precisions are the natural follow-up).

use crate::adapt_cost::AdaptCostModel;
use crate::roofline::Roofline;
use crate::spec::PowerMode;
use ld_ufld::UfldConfig;

/// How much adaptation fits in a frame budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptBudget {
    /// Even pure inference misses the deadline.
    Infeasible,
    /// Only inference fits; adaptation must be skipped (or offloaded to
    /// idle frames).
    InferenceOnly,
    /// Inference plus `steps` entropy-descent step(s) fit.
    Steps {
        /// Number of whole backward+update passes that fit.
        steps: usize,
    },
}

/// Plans the adaptation duty per frame for a model/mode/deadline triple.
///
/// # Example
///
/// ```
/// use ld_orin::{plan_adaptation, AdaptBudget, PowerMode};
/// use ld_ufld::{Backbone, UfldConfig};
///
/// let cfg = UfldConfig::paper(Backbone::ResNet18, 4);
/// let plan = plan_adaptation(&cfg, PowerMode::MaxN60, 33.3);
/// assert_eq!(plan, AdaptBudget::Steps { steps: 1 }); // the paper's setting
/// ```
pub fn plan_adaptation(cfg: &UfldConfig, mode: PowerMode, budget_ms: f64) -> AdaptBudget {
    let model = AdaptCostModel::paper_scale(cfg);
    let infer = model.inference_ms(mode);
    if infer > budget_ms {
        return AdaptBudget::Infeasible;
    }
    let one_frame = model.ld_bn_adapt_frame(mode, 1);
    let step_cost = one_frame.backward_ms + one_frame.update_ms;
    if infer + step_cost > budget_ms {
        return AdaptBudget::InferenceOnly;
    }
    let extra = ((budget_ms - infer) / step_cost).floor() as usize;
    AdaptBudget::Steps {
        steps: extra.max(1),
    }
}

/// Verdict of the batch-aware deadline query: how many of the offered
/// frames one server tick may take, and whether the adaptation step fits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchAdmission {
    /// Admitted batch size (≥ 1 — a camera frame is never dropped outright;
    /// surplus frames defer to the next tick).
    pub batch: usize,
    /// Whether the batched adaptation step fits alongside inference. When
    /// `false` the tick runs inference-only and the adapt step is shed.
    pub adapt: bool,
    /// Predicted tick latency at the admitted configuration, in ms.
    pub latency_ms: f64,
    /// Whether even the admitted configuration meets the deadline (`false`
    /// only when a single inference-only frame already overruns — the
    /// Infeasible region of [`AdaptBudget`]).
    pub fits_deadline: bool,
}

/// The batch-aware deadline query of the multi-stream server: picks the
/// largest admitted batch with `cost(batch) ≤ deadline`, preferring to shed
/// the adaptation step before shedding frames (frames are hard real-time;
/// adaptation is a quality refinement that can wait a tick).
///
/// # Panics
///
/// Panics if `offered == 0` or `budget_ms` is not positive and finite.
///
/// # Example
///
/// ```
/// use ld_orin::{admit_batch, AdaptCostModel, PowerMode};
/// use ld_ufld::{Backbone, UfldConfig};
///
/// let cost = AdaptCostModel::paper_scale(&UfldConfig::paper(Backbone::ResNet18, 4));
/// let adm = admit_batch(&cost, PowerMode::MaxN60, 33.3, 4);
/// assert!(adm.batch >= 1 && adm.batch <= 4);
/// ```
pub fn admit_batch(
    cost: &AdaptCostModel,
    mode: PowerMode,
    budget_ms: f64,
    offered: usize,
) -> BatchAdmission {
    admit_batch_with(cost, mode, budget_ms, offered, Precision::Fp32, 1.0)
}

/// [`admit_batch`] with the two correction knobs the production server
/// turns:
///
/// * `infer` — the precision of the inference forward. With the `ld_quant`
///   int8 fast path the inference-only tick is roughly 4× arithmetically
///   denser, so the gate credits it and admits a larger inference-only
///   batch at the same deadline (adapting ticks still pay the f32 forward
///   and backward, see [`AdaptCostModel::batched_tick_at`]).
/// * `cost_scale` — a measured-latency correction factor multiplying every
///   predicted tick latency. The server maintains an EWMA of
///   `actual / predicted` tick wall-clock and feeds it back here, closing
///   the loop on roofline model error and host jitter (`> 1` shrinks
///   admissions, `< 1` grows them). `1.0` trusts the roofline outright.
///
/// # Panics
///
/// Panics if `offered == 0`, `budget_ms` is not positive and finite, or
/// `cost_scale` is not positive and finite.
pub fn admit_batch_with(
    cost: &AdaptCostModel,
    mode: PowerMode,
    budget_ms: f64,
    offered: usize,
    infer: Precision,
    cost_scale: f64,
) -> BatchAdmission {
    assert!(offered > 0, "admit_batch: zero frames offered");
    assert!(
        budget_ms.is_finite() && budget_ms > 0.0,
        "admit_batch: bad budget {budget_ms}"
    );
    assert!(
        cost_scale.is_finite() && cost_scale > 0.0,
        "admit_batch: bad cost scale {cost_scale}"
    );
    // Tick latency is monotonic in the batch size, so scan downward and the
    // first inference-only fit is the largest admissible batch.
    let infer_ms = |b: usize| cost_scale * cost.batched_tick_at(mode, b, false, infer).total_ms();
    let mut batch = 1;
    let mut fits = false;
    for b in (1..=offered).rev() {
        if infer_ms(b) <= budget_ms {
            batch = b;
            fits = true;
            break;
        }
    }
    let with_adapt = cost_scale * cost.batched_tick_at(mode, batch, true, infer).total_ms();
    if fits && with_adapt <= budget_ms {
        return BatchAdmission {
            batch,
            adapt: true,
            latency_ms: with_adapt,
            fits_deadline: true,
        };
    }
    BatchAdmission {
        batch,
        adapt: false,
        latency_ms: infer_ms(batch),
        fits_deadline: fits,
    }
}

/// Verdict of the **age-aware** admission query ([`admit_batch_aged`]): the
/// ingest front end's staleness shedding plus the batch admission over the
/// surviving frames.
#[derive(Debug, Clone, PartialEq)]
pub struct AgedAdmission {
    /// Per-offered-frame staleness verdict, in offer order: `true` means
    /// the frame is shed *at ingest* — its queue age plus the predicted
    /// serving latency would exceed the staleness bound, so serving it
    /// would deliver an already-expired result while burning budget the
    /// fresh frames need.
    pub stale: Vec<bool>,
    /// The [`admit_batch_with`] verdict over the fresh frames (`None` when
    /// every offered frame was stale).
    pub admission: Option<BatchAdmission>,
}

impl AgedAdmission {
    /// Number of frames shed as stale.
    pub fn shed(&self) -> usize {
        self.stale.iter().filter(|&&s| s).count()
    }

    /// Number of frames that survived the staleness check.
    pub fn fresh(&self) -> usize {
        self.stale.len() - self.shed()
    }
}

/// The age-aware admission term of the ingest front end: frames arrive with
/// a queue **age** (time since capture), and a frame is only worth serving
/// if `age + predicted tick latency ≤ max_staleness_ms` — otherwise the
/// result it produces is already expired on delivery. This query sheds such
/// frames *before* batching and admits the rest through
/// [`admit_batch_with`].
///
/// Shedding and latency are coupled (a smaller batch is faster, so
/// shedding a stale frame can bring a borderline frame back inside the
/// bound), so the query sheds *minimally*: predict the latency of serving
/// the currently-fresh frames; if any fresh frame misses the bound at that
/// latency, shed only the **oldest** violator and re-predict. Predicted
/// latency is monotone in batch size, so each round either terminates or
/// strictly shrinks the batch — at most `offered` rounds, and no frame is
/// shed that a smaller batch could have served fresh. When even a
/// single-frame tick exceeds the bound every frame is shed (`admission:
/// None`) — the staleness analogue of `fits_deadline: false`.
///
/// `max_staleness_ms = f64::INFINITY` disables shedding (every frame is
/// fresh; the verdict degenerates to [`admit_batch_with`]).
///
/// # Panics
///
/// Panics if `ages_ms` is empty or contains a negative/non-finite age, if
/// `max_staleness_ms` is NaN or ≤ 0, or on the [`admit_batch_with`]
/// preconditions (`budget_ms`, `cost_scale`).
pub fn admit_batch_aged(
    cost: &AdaptCostModel,
    mode: PowerMode,
    budget_ms: f64,
    ages_ms: &[f64],
    infer: Precision,
    cost_scale: f64,
    max_staleness_ms: f64,
) -> AgedAdmission {
    assert!(!ages_ms.is_empty(), "admit_batch_aged: zero frames offered");
    assert!(
        ages_ms.iter().all(|a| a.is_finite() && *a >= 0.0),
        "admit_batch_aged: bad ages {ages_ms:?}"
    );
    assert!(
        max_staleness_ms > 0.0 && !max_staleness_ms.is_nan(),
        "admit_batch_aged: bad staleness bound {max_staleness_ms}"
    );
    let mut stale = vec![false; ages_ms.len()];
    loop {
        let fresh = stale.iter().filter(|&&s| !s).count();
        if fresh == 0 {
            return AgedAdmission {
                stale,
                admission: None,
            };
        }
        let admission = admit_batch_with(cost, mode, budget_ms, fresh, infer, cost_scale);
        // A frame's end-to-end latency if served this tick: its age now
        // plus the tick it rides in. Shed only the oldest violator per
        // round — the smaller batch may serve the rest fresh.
        let worst = ages_ms
            .iter()
            .enumerate()
            .filter(|&(i, &age)| !stale[i] && age + admission.latency_ms > max_staleness_ms)
            .max_by(|a, b| a.1.total_cmp(b.1));
        match worst {
            Some((i, _)) => stale[i] = true,
            None => {
                return AgedAdmission {
                    stale,
                    admission: Some(admission),
                }
            }
        }
    }
}

/// Arithmetic precision of the deployed network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// FP32 CUDA cores (the paper's PyTorch 1.11 deployment).
    Fp32,
    /// FP16 on tensor cores (≈4× FP32 GEMM throughput on Ampere, half the
    /// activation traffic).
    Fp16,
    /// INT8 on tensor cores (Ampere int8 TOPS are ≈2× the FP16 rate — 8×
    /// FP32 CUDA — at a quarter of the activation traffic). This is the
    /// dtype of the `ld_quant` inference fast path; the kernel actually
    /// deployed (u8 `vpdpbusd` interior layers, i16 stem) realises a
    /// host-dependent fraction of the spec-sheet ratio, so admission can
    /// swap the modelled 8× for the measured `BENCH_gemm.json` ratio via
    /// [`crate::roofline::Int8Cal`] and
    /// [`crate::AdaptCostModel::with_int8_cal`].
    Int8,
}

impl Precision {
    /// GEMM-throughput multiplier relative to FP32.
    pub fn compute_speedup(self) -> f64 {
        match self {
            Precision::Fp32 => 1.0,
            Precision::Fp16 => 4.0,
            Precision::Int8 => 8.0,
        }
    }

    /// The tick-trace stage label of an inference forward pass at this
    /// precision (`Int8` deploys as the u8 `vpdpbusd` kernel, hence
    /// `forward.u8`).
    pub fn trace_stage(self) -> &'static str {
        match self {
            Precision::Fp32 => "forward.f32",
            Precision::Fp16 => "forward.f16",
            Precision::Int8 => "forward.u8",
        }
    }

    /// Bytes-per-element ratio relative to FP32.
    pub fn byte_ratio(self) -> f64 {
        match self {
            Precision::Fp32 => 1.0,
            Precision::Fp16 => 0.5,
            Precision::Int8 => 0.25,
        }
    }

    /// Scales a roofline [`Efficiency`] for execution at this precision:
    /// GEMM kinds gain the compute-throughput multiplier, bandwidth-bound
    /// kinds gain the inverse byte ratio (fewer bytes = more effective
    /// bandwidth). The single source of the precision what-if maths, shared
    /// by [`precision_what_if`] and the admission cost model.
    pub fn scale_efficiency(self, eff: crate::roofline::Efficiency) -> crate::roofline::Efficiency {
        self.scale_efficiency_cal(eff, &crate::roofline::Int8Cal::NONE)
    }

    /// [`Precision::scale_efficiency`] with the `Int8` compute multiplier
    /// replaced by a measured kernel ratio when one is present
    /// ([`crate::roofline::Int8Cal`]); the byte ratio stays modelled (the
    /// quantized path really does move a quarter of the activation bytes),
    /// and other precisions are unaffected.
    pub fn scale_efficiency_cal(
        self,
        mut eff: crate::roofline::Efficiency,
        int8: &crate::roofline::Int8Cal,
    ) -> crate::roofline::Efficiency {
        let compute = match self {
            Precision::Int8 => int8.speedup_or(self.compute_speedup()),
            _ => self.compute_speedup(),
        };
        eff.conv *= compute;
        eff.fc *= compute;
        eff.elementwise /= self.byte_ratio();
        eff
    }
}

/// Frame latency under a precision what-if: scales the roofline's compute
/// and memory terms. Returns `(total_ms, meets_30fps)`.
pub fn precision_what_if(cfg: &UfldConfig, mode: PowerMode, precision: Precision) -> (f64, bool) {
    let base = Roofline::agx_orin();
    let model = AdaptCostModel::new(
        cfg,
        Roofline {
            spec: base.spec,
            eff: precision.scale_efficiency(base.eff),
        },
    );
    let total = model.ld_bn_adapt_frame(mode, 1).total_ms();
    (total, total <= 33.3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_ufld::Backbone;

    #[test]
    fn paper_setting_fits_exactly_one_step() {
        let cfg = UfldConfig::paper(Backbone::ResNet18, 4);
        assert_eq!(
            plan_adaptation(&cfg, PowerMode::MaxN60, 33.3),
            AdaptBudget::Steps { steps: 1 }
        );
    }

    #[test]
    fn relaxed_deadline_affords_more_steps() {
        let cfg = UfldConfig::paper(Backbone::ResNet18, 4);
        match plan_adaptation(&cfg, PowerMode::MaxN60, 55.5) {
            AdaptBudget::Steps { steps } => assert!(steps >= 2, "steps {steps}"),
            other => panic!("expected steps, got {other:?}"),
        }
    }

    #[test]
    fn tight_budget_degrades_to_inference_only_then_infeasible() {
        let cfg = UfldConfig::paper(Backbone::ResNet34, 4);
        // R-34 at 15 W: inference ≈ 77 ms.
        assert_eq!(
            plan_adaptation(&cfg, PowerMode::W15, 90.0),
            AdaptBudget::InferenceOnly
        );
        assert_eq!(
            plan_adaptation(&cfg, PowerMode::W15, 33.3),
            AdaptBudget::Infeasible
        );
    }

    #[test]
    fn admission_prefers_frames_over_adaptation() {
        let cost = AdaptCostModel::paper_scale(&UfldConfig::paper(Backbone::ResNet18, 4));
        // At MAXN a single frame fits with adaptation (the paper's setting)…
        let one = admit_batch(&cost, PowerMode::MaxN60, 33.3, 1);
        assert_eq!((one.batch, one.adapt), (1, true));
        assert!(one.fits_deadline && one.latency_ms <= 33.3);
        // …and offering more streams grows the admitted batch, shedding the
        // adapt step before shedding frames.
        let four = admit_batch(&cost, PowerMode::MaxN60, 33.3, 4);
        assert!(four.batch >= one.batch);
        if four.batch == 4 {
            assert!(
                !four.adapt || four.latency_ms <= 33.3,
                "adapt admitted only when it fits"
            );
        }
        assert!(four.latency_ms <= 33.3, "admitted tick must fit: {four:?}");
    }

    #[test]
    fn admission_monotone_in_budget() {
        let cost = AdaptCostModel::paper_scale(&UfldConfig::paper(Backbone::ResNet18, 4));
        let mut last_batch = 0;
        let mut last_adapt = false;
        for budget in [20.0, 33.3, 55.5, 120.0, 400.0] {
            let adm = admit_batch(&cost, PowerMode::W50, budget, 6);
            assert!(
                adm.batch >= last_batch,
                "batch must not shrink with budget: {adm:?}"
            );
            if adm.batch == last_batch {
                assert!(adm.adapt >= last_adapt, "adapt must not regress: {adm:?}");
            }
            last_batch = adm.batch;
            last_adapt = adm.adapt;
        }
        assert_eq!(last_batch, 6, "a generous budget admits everything");
        assert!(last_adapt);
    }

    #[test]
    fn overrun_is_reported_not_dropped() {
        // R-34 at 15 W cannot meet 30 FPS even for one inference-only frame:
        // the frame is still admitted (never dropped) but flagged.
        let cost = AdaptCostModel::paper_scale(&UfldConfig::paper(Backbone::ResNet34, 4));
        let adm = admit_batch(&cost, PowerMode::W15, 33.3, 3);
        assert_eq!(adm.batch, 1);
        assert!(!adm.adapt);
        assert!(!adm.fits_deadline);
        assert!(adm.latency_ms > 33.3);
    }

    #[test]
    fn calibrated_cost_model_feeds_admission() {
        // The refreshed (measured) efficiencies plug straight into the
        // admission query — the satellite wiring this PR adds. Only
        // structural properties are asserted: the committed trajectory is
        // regenerated per host, so its ratios (and hence the admitted
        // batch) are data, not contract.
        use crate::bench_data::load_bench_gemm;
        use crate::roofline::Roofline;
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gemm.json");
        let rows = load_bench_gemm(path).expect("trajectory");
        let cfg = UfldConfig::paper(Backbone::ResNet18, 4);
        let calibrated = AdaptCostModel::new(&cfg, Roofline::agx_orin_calibrated(&rows));
        let adm = admit_batch(&calibrated, PowerMode::MaxN60, 33.3, 4);
        assert!(adm.batch >= 1 && adm.batch <= 4);
        assert!(adm.latency_ms.is_finite() && adm.latency_ms > 0.0);
    }

    /// The tentpole acceptance property: at the same deadline and power
    /// mode, costing the inference forward at int8 admits a strictly larger
    /// inference-only batch than f32 whenever the f32 gate is saturated.
    #[test]
    fn int8_inference_admits_a_larger_batch() {
        let cost = AdaptCostModel::paper_scale(&UfldConfig::paper(Backbone::ResNet18, 4));
        let offered = 16;
        let f32_adm = admit_batch(&cost, PowerMode::W30, 33.3, offered);
        let int8_adm = admit_batch_with(&cost, PowerMode::W30, 33.3, offered, Precision::Int8, 1.0);
        assert!(
            f32_adm.batch < offered,
            "pick a scenario where f32 admission saturates: {f32_adm:?}"
        );
        assert!(
            int8_adm.batch > f32_adm.batch,
            "int8 must admit more inference-only frames: {int8_adm:?} vs {f32_adm:?}"
        );
        assert!(int8_adm.latency_ms <= 33.3);
    }

    #[test]
    fn int8_adapt_tick_still_pays_the_f32_forward_and_backward() {
        let cost = AdaptCostModel::paper_scale(&UfldConfig::paper(Backbone::ResNet18, 4));
        let f32_tick = cost.batched_tick_at(PowerMode::MaxN60, 4, true, Precision::Fp32);
        let int8_tick = cost.batched_tick_at(PowerMode::MaxN60, 4, true, Precision::Int8);
        assert_eq!(f32_tick.adapt_forward_ms, 0.0, "f32 reuses activations");
        assert!(
            int8_tick.adapt_forward_ms > 0.0,
            "quantized serving needs a fresh f32 forward to adapt"
        );
        assert_eq!(int8_tick.backward_ms, f32_tick.backward_ms);
        assert_eq!(int8_tick.update_ms, f32_tick.update_ms);
        assert!(int8_tick.inference_ms < f32_tick.inference_ms);
        // Inference-only ticks are where int8 pays off.
        let f32_infer = cost.batched_tick_at(PowerMode::MaxN60, 4, false, Precision::Fp32);
        let int8_infer = cost.batched_tick_at(PowerMode::MaxN60, 4, false, Precision::Int8);
        assert!(int8_infer.total_ms() < f32_infer.total_ms());
    }

    /// The mixed-tick query the latency feedback compares served ticks
    /// against: a quantized tick's adaptation terms scale with the
    /// triggered sub-batch, an f32 tick's backward always spans the whole
    /// batch (masked gradient over the batched activations).
    #[test]
    fn mixed_tick_prices_the_triggered_sub_batch() {
        let cost = AdaptCostModel::paper_scale(&UfldConfig::paper(Backbone::ResNet18, 4));
        let mode = PowerMode::MaxN60;
        // adapted == 0 is exactly the inference-only tick.
        for p in [Precision::Fp32, Precision::Int8] {
            assert_eq!(
                cost.mixed_tick_at(mode, 6, 0, p),
                cost.batched_tick_at(mode, 6, false, p)
            );
        }
        // adapted == batch is exactly the all-triggered adapt tick.
        for p in [Precision::Fp32, Precision::Int8] {
            assert_eq!(
                cost.mixed_tick_at(mode, 6, 6, p),
                cost.batched_tick_at(mode, 6, true, p)
            );
        }
        // int8: a 1-of-6 trigger pays a 1-frame f32 forward + backward,
        // strictly cheaper than the all-triggered worst case.
        let partial = cost.mixed_tick_at(mode, 6, 1, Precision::Int8);
        let full = cost.mixed_tick_at(mode, 6, 6, Precision::Int8);
        assert!(partial.adapt_forward_ms > 0.0);
        assert!(partial.adapt_forward_ms < full.adapt_forward_ms);
        assert!(partial.backward_ms < full.backward_ms);
        assert_eq!(partial.inference_ms, full.inference_ms);
        // f32: the backward is batch-wide regardless of the trigger count.
        let f32_partial = cost.mixed_tick_at(mode, 6, 1, Precision::Fp32);
        let f32_full = cost.mixed_tick_at(mode, 6, 6, Precision::Fp32);
        assert_eq!(f32_partial, f32_full);
    }

    #[test]
    #[should_panic(expected = "adapted")]
    fn mixed_tick_rejects_more_adapted_than_batch() {
        let cost = AdaptCostModel::paper_scale(&UfldConfig::paper(Backbone::ResNet18, 4));
        cost.mixed_tick_at(PowerMode::MaxN60, 2, 3, Precision::Int8);
    }

    /// Opt-in contract of the measured int8 calibration: `Int8Cal::NONE`
    /// is bit-identical to the uncalibrated model (the hand-calibrated
    /// feasible set stays pinned), a measured ratio below the modelled 8×
    /// makes int8 ticks dearer (and can shrink the admitted batch), and
    /// f32 costing never moves.
    #[test]
    fn int8_cal_is_opt_in_and_only_reprices_int8() {
        use crate::roofline::Int8Cal;
        let cfg = UfldConfig::paper(Backbone::ResNet18, 4);
        let base = AdaptCostModel::paper_scale(&cfg);
        let none = AdaptCostModel::paper_scale(&cfg).with_int8_cal(Int8Cal::NONE);
        let slow = AdaptCostModel::paper_scale(&cfg).with_int8_cal(Int8Cal::from_speedup(2.0));
        let mode = PowerMode::W30;
        for p in [Precision::Fp32, Precision::Fp16, Precision::Int8] {
            assert_eq!(
                base.batched_tick_at(mode, 4, false, p),
                none.batched_tick_at(mode, 4, false, p)
            );
        }
        for p in [Precision::Fp32, Precision::Fp16] {
            assert_eq!(
                base.batched_tick_at(mode, 4, false, p),
                slow.batched_tick_at(mode, 4, false, p)
            );
        }
        let modelled = base.batched_tick_at(mode, 4, false, Precision::Int8);
        let measured = slow.batched_tick_at(mode, 4, false, Precision::Int8);
        assert!(
            measured.inference_ms > modelled.inference_ms,
            "a 2× measured kernel must cost more than the modelled 8×"
        );
        // Still cheaper than f32 — the calibration reprices, not disables.
        let f32_tick = slow.batched_tick_at(mode, 4, false, Precision::Fp32);
        assert!(measured.inference_ms < f32_tick.inference_ms);
        let adm_modelled = admit_batch_with(&base, mode, 33.3, 16, Precision::Int8, 1.0);
        let adm_measured = admit_batch_with(&slow, mode, 33.3, 16, Precision::Int8, 1.0);
        assert!(adm_measured.batch <= adm_modelled.batch);
    }

    #[test]
    fn fp32_precision_tick_matches_plain_batched_tick() {
        let cost = AdaptCostModel::paper_scale(&UfldConfig::paper(Backbone::ResNet18, 4));
        for adapt in [false, true] {
            let plain = cost.batched_tick(PowerMode::W50, 3, adapt);
            let at = cost.batched_tick_at(PowerMode::W50, 3, adapt, Precision::Fp32);
            assert_eq!(plain, at);
        }
    }

    /// The measured-latency feedback knob: a host running slower than the
    /// roofline predicts (`cost_scale > 1`) shrinks admissions; a faster
    /// host grows them; `1.0` reproduces the uncorrected gate bit-for-bit.
    #[test]
    fn cost_scale_corrects_admissions_monotonically() {
        let cost = AdaptCostModel::paper_scale(&UfldConfig::paper(Backbone::ResNet18, 4));
        let base = admit_batch(&cost, PowerMode::MaxN60, 55.5, 8);
        let same = admit_batch_with(&cost, PowerMode::MaxN60, 55.5, 8, Precision::Fp32, 1.0);
        assert_eq!(base, same);
        let slow = admit_batch_with(&cost, PowerMode::MaxN60, 55.5, 8, Precision::Fp32, 3.0);
        let fast = admit_batch_with(&cost, PowerMode::MaxN60, 55.5, 8, Precision::Fp32, 0.33);
        assert!(slow.batch <= base.batch);
        assert!(fast.batch >= base.batch);
        assert!(
            slow.batch < fast.batch,
            "a 9× measured spread must move the verdict: {slow:?} vs {fast:?}"
        );
    }

    #[test]
    #[should_panic(expected = "bad cost scale")]
    fn rejects_nonpositive_cost_scale() {
        let cost = AdaptCostModel::paper_scale(&UfldConfig::paper(Backbone::ResNet18, 4));
        admit_batch_with(&cost, PowerMode::MaxN60, 33.3, 1, Precision::Fp32, 0.0);
    }

    /// Fresh frames pass through the age-aware query untouched: with zero
    /// ages and an infinite bound the verdict is exactly
    /// [`admit_batch_with`]'s.
    #[test]
    fn aged_admission_degenerates_to_the_batch_query_when_fresh() {
        let cost = AdaptCostModel::paper_scale(&UfldConfig::paper(Backbone::ResNet18, 4));
        let base = admit_batch(&cost, PowerMode::MaxN60, 33.3, 4);
        for bound in [f64::INFINITY, 1e6] {
            let aged = admit_batch_aged(
                &cost,
                PowerMode::MaxN60,
                33.3,
                &[0.0; 4],
                Precision::Fp32,
                1.0,
                bound,
            );
            assert_eq!(aged.shed(), 0);
            assert_eq!(aged.fresh(), 4);
            assert_eq!(aged.admission, Some(base));
        }
    }

    /// An aged frame is shed at ingest while fresh frames keep serving:
    /// the paper's deadline analysis only holds if staleness is handled
    /// before batching.
    #[test]
    fn aged_admission_sheds_only_the_stale_frames() {
        let cost = AdaptCostModel::paper_scale(&UfldConfig::paper(Backbone::ResNet18, 4));
        // R-18 @ MAXN serves ~17 ms ticks; a 100 ms-old frame misses a
        // 60 ms staleness bound, fresh neighbours do not.
        let aged = admit_batch_aged(
            &cost,
            PowerMode::MaxN60,
            33.3,
            &[1.0, 100.0, 2.0],
            Precision::Fp32,
            1.0,
            60.0,
        );
        assert_eq!(aged.stale, vec![false, true, false]);
        assert_eq!(aged.shed(), 1);
        let adm = aged.admission.expect("fresh frames remain");
        assert!(adm.batch >= 1 && adm.batch <= 2);
        assert!(adm.latency_ms + 2.0 <= 60.0, "survivors serve fresh");
    }

    #[test]
    fn aged_admission_sheds_everything_when_all_frames_expired() {
        let cost = AdaptCostModel::paper_scale(&UfldConfig::paper(Backbone::ResNet18, 4));
        let aged = admit_batch_aged(
            &cost,
            PowerMode::MaxN60,
            33.3,
            &[500.0, 900.0],
            Precision::Fp32,
            1.0,
            40.0,
        );
        assert_eq!(aged.stale, vec![true, true]);
        assert_eq!(aged.fresh(), 0);
        assert_eq!(aged.admission, None);
    }

    /// The fixed point matters: shedding a stale frame shrinks the batch,
    /// whose lower latency can keep a borderline frame fresh — the verdict
    /// must settle there instead of cascading every frame out.
    #[test]
    fn aged_admission_reaches_a_fixed_point_on_borderline_ages() {
        let cost = AdaptCostModel::paper_scale(&UfldConfig::paper(Backbone::ResNet18, 4));
        let mode = PowerMode::MaxN60;
        let budget = 200.0;
        // Latency grows with batch size; find a bound between the 3-frame
        // and 4-frame tick latencies so one old frame's shed rescues the
        // borderline frame.
        let l3 = admit_batch(&cost, mode, budget, 3).latency_ms;
        let l4 = admit_batch(&cost, mode, budget, 4).latency_ms;
        assert!(l4 > l3, "latency must grow with batch: {l3} vs {l4}");
        let eps = (l4 - l3) / 4.0;
        let bound = l4 - eps; // borderline frame: age 0 fails at l4, fits at l3
        let old_age = bound + 1.0; // always stale
        let aged = admit_batch_aged(
            &cost,
            mode,
            budget,
            &[0.0, old_age, 0.0, 0.0],
            Precision::Fp32,
            1.0,
            bound,
        );
        assert_eq!(
            aged.stale,
            vec![false, true, false, false],
            "only the genuinely old frame is shed"
        );
        let adm = aged.admission.expect("three fresh frames");
        assert!(adm.latency_ms <= bound);
    }

    #[test]
    #[should_panic(expected = "bad staleness bound")]
    fn aged_admission_rejects_nonpositive_bound() {
        let cost = AdaptCostModel::paper_scale(&UfldConfig::paper(Backbone::ResNet18, 4));
        admit_batch_aged(
            &cost,
            PowerMode::MaxN60,
            33.3,
            &[0.0],
            Precision::Fp32,
            1.0,
            0.0,
        );
    }

    #[test]
    #[should_panic(expected = "bad ages")]
    fn aged_admission_rejects_negative_ages() {
        let cost = AdaptCostModel::paper_scale(&UfldConfig::paper(Backbone::ResNet18, 4));
        admit_batch_aged(
            &cost,
            PowerMode::MaxN60,
            33.3,
            &[-1.0],
            Precision::Fp32,
            1.0,
            50.0,
        );
    }

    #[test]
    fn fp16_extends_the_feasible_set() {
        // The natural follow-up: with tensor cores, R-34 (and lower power
        // modes) come within the 30 FPS budget.
        let r34 = UfldConfig::paper(Backbone::ResNet34, 4);
        let (t_fp32, ok32) = precision_what_if(&r34, PowerMode::MaxN60, Precision::Fp32);
        let (t_fp16, ok16) = precision_what_if(&r34, PowerMode::MaxN60, Precision::Fp16);
        assert!(!ok32, "fp32 R-34 must miss 30 FPS ({t_fp32:.1} ms)");
        assert!(ok16, "fp16 R-34 should meet 30 FPS ({t_fp16:.1} ms)");
        assert!(t_fp16 < t_fp32 / 1.8);
    }

    #[test]
    fn fp32_what_if_matches_base_model() {
        let cfg = UfldConfig::paper(Backbone::ResNet18, 4);
        let (t, _) = precision_what_if(&cfg, PowerMode::W50, Precision::Fp32);
        let base = AdaptCostModel::paper_scale(&cfg)
            .ld_bn_adapt_frame(PowerMode::W50, 1)
            .total_ms();
        assert!((t - base).abs() < 1e-9);
    }

    /// The backward-calibration satellite, before/after: R-18 at 30 W,
    /// eight streams each one 30 FPS frame period (33.3 ms) deep in queue,
    /// staleness bounded at eight periods (266.4 ms), an adaptation-heavy
    /// tick with a relaxed tick budget (the gate prices the all-triggered
    /// worst case).
    ///
    /// The uncalibrated gate prices the backward as `batch ×` the
    /// single-image pass, predicts an overlong adapting tick, and sheds
    /// down to **4** admitted streams. Fed the measured batch-parallel
    /// speedups (1×/2×/3× at batch 1/4/8 — the shape of the pooled
    /// backward on a multi-core host), the same tick is predicted fast
    /// enough for **6** streams to serve fresh. Both verdicts keep the
    /// adaptation step; the calibration converts pure model error into two
    /// extra adapted streams.
    #[test]
    fn backward_calibration_admits_more_aged_streams() {
        use crate::roofline::BackwardCal;
        let cfg = UfldConfig::paper(Backbone::ResNet18, 4);
        let base = AdaptCostModel::paper_scale(&cfg);
        let cal = BackwardCal::from_points(&[(1, 1.0), (4, 2.0), (8, 3.0)]);
        let calibrated = AdaptCostModel::paper_scale(&cfg).with_backward_cal(cal);
        assert!(base.backward_cal().is_none());
        assert!(!calibrated.backward_cal().is_none());

        let mode = PowerMode::W30;
        let period_ms = 33.3; // 30 FPS arrival
        let ages = [period_ms; 8];
        let bound = 8.0 * period_ms;
        let budget = 450.0;
        let before = admit_batch_aged(&base, mode, budget, &ages, Precision::Fp32, 1.0, bound);
        let after = admit_batch_aged(
            &calibrated,
            mode,
            budget,
            &ages,
            Precision::Fp32,
            1.0,
            bound,
        );

        let before_adm = before.admission.expect("some streams serve");
        let after_adm = after.admission.expect("some streams serve");
        assert!(before_adm.adapt && after_adm.adapt, "both ticks adapt");
        assert_eq!(before.fresh(), 4, "uncalibrated sheds to 4: {before_adm:?}");
        assert_eq!(after.fresh(), 6, "calibrated serves 6: {after_adm:?}");
        assert!(after_adm.latency_ms + period_ms <= bound);
        // The win is purely the cheaper backward: inference-side predictions
        // are untouched by the calibration.
        let b_inf = base.batched_tick_at(mode, 6, false, Precision::Fp32);
        let c_inf = calibrated.batched_tick_at(mode, 6, false, Precision::Fp32);
        assert_eq!(b_inf, c_inf);
    }

    /// The identity calibration must reproduce the uncalibrated gate
    /// bit-for-bit — `BackwardCal::NONE` is what every existing caller
    /// (and the pinned Figure-3 suite) implicitly runs with.
    #[test]
    fn none_calibration_is_bitwise_neutral_for_admission() {
        use crate::roofline::BackwardCal;
        let cfg = UfldConfig::paper(Backbone::ResNet18, 4);
        let base = AdaptCostModel::paper_scale(&cfg);
        let with_none = AdaptCostModel::paper_scale(&cfg).with_backward_cal(BackwardCal::NONE);
        for mode in [PowerMode::MaxN60, PowerMode::W30] {
            for offered in [1, 4, 8] {
                assert_eq!(
                    admit_batch(&base, mode, 33.3, offered),
                    admit_batch(&with_none, mode, 33.3, offered)
                );
            }
            assert_eq!(
                base.ld_bn_adapt_frame(mode, 4),
                with_none.ld_bn_adapt_frame(mode, 4)
            );
            assert_eq!(
                base.mixed_tick_at(mode, 6, 3, Precision::Int8),
                with_none.mixed_tick_at(mode, 6, 3, Precision::Int8)
            );
        }
    }
}
