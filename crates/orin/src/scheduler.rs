//! Deadline-aware adaptation scheduling and precision what-if analysis.
//!
//! §IV closes with: "real-time model adaptation … is possible but requires
//! a careful study of the multi-objective design space and the various
//! application constraints." This module operationalises that study:
//!
//! * [`AdaptBudget`] — given a (backbone, power mode, deadline), how much
//!   adaptation fits in each frame? (none / statistics only / the full
//!   BN backward / multiple steps);
//! * [`Precision`] — a what-if for FP16/INT8 execution (the paper's stack
//!   is FP32 PyTorch; Tensor-core precisions are the natural follow-up).

use crate::adapt_cost::AdaptCostModel;
use crate::roofline::Roofline;
use crate::spec::PowerMode;
use ld_ufld::UfldConfig;

/// How much adaptation fits in a frame budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptBudget {
    /// Even pure inference misses the deadline.
    Infeasible,
    /// Only inference fits; adaptation must be skipped (or offloaded to
    /// idle frames).
    InferenceOnly,
    /// Inference plus `steps` entropy-descent step(s) fit.
    Steps {
        /// Number of whole backward+update passes that fit.
        steps: usize,
    },
}

/// Plans the adaptation duty per frame for a model/mode/deadline triple.
///
/// # Example
///
/// ```
/// use ld_orin::{plan_adaptation, AdaptBudget, PowerMode};
/// use ld_ufld::{Backbone, UfldConfig};
///
/// let cfg = UfldConfig::paper(Backbone::ResNet18, 4);
/// let plan = plan_adaptation(&cfg, PowerMode::MaxN60, 33.3);
/// assert_eq!(plan, AdaptBudget::Steps { steps: 1 }); // the paper's setting
/// ```
pub fn plan_adaptation(cfg: &UfldConfig, mode: PowerMode, budget_ms: f64) -> AdaptBudget {
    let model = AdaptCostModel::paper_scale(cfg);
    let infer = model.inference_ms(mode);
    if infer > budget_ms {
        return AdaptBudget::Infeasible;
    }
    let one_frame = model.ld_bn_adapt_frame(mode, 1);
    let step_cost = one_frame.backward_ms + one_frame.update_ms;
    if infer + step_cost > budget_ms {
        return AdaptBudget::InferenceOnly;
    }
    let extra = ((budget_ms - infer) / step_cost).floor() as usize;
    AdaptBudget::Steps {
        steps: extra.max(1),
    }
}

/// Arithmetic precision of the deployed network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// FP32 CUDA cores (the paper's PyTorch 1.11 deployment).
    Fp32,
    /// FP16 on tensor cores (≈4× FP32 GEMM throughput on Ampere, half the
    /// activation traffic).
    Fp16,
}

impl Precision {
    /// GEMM-throughput multiplier relative to FP32.
    pub fn compute_speedup(self) -> f64 {
        match self {
            Precision::Fp32 => 1.0,
            Precision::Fp16 => 4.0,
        }
    }

    /// Bytes-per-element ratio relative to FP32.
    pub fn byte_ratio(self) -> f64 {
        match self {
            Precision::Fp32 => 1.0,
            Precision::Fp16 => 0.5,
        }
    }
}

/// Frame latency under a precision what-if: scales the roofline's compute
/// and memory terms. Returns `(total_ms, meets_30fps)`.
pub fn precision_what_if(cfg: &UfldConfig, mode: PowerMode, precision: Precision) -> (f64, bool) {
    let base = Roofline::agx_orin();
    let mut eff = base.eff;
    eff.conv *= precision.compute_speedup();
    eff.fc *= precision.compute_speedup();
    eff.elementwise /= precision.byte_ratio(); // half the bytes = 2× effective BW
    let model = AdaptCostModel::new(
        cfg,
        Roofline {
            spec: base.spec,
            eff,
        },
    );
    let total = model.ld_bn_adapt_frame(mode, 1).total_ms();
    (total, total <= 33.3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_ufld::Backbone;

    #[test]
    fn paper_setting_fits_exactly_one_step() {
        let cfg = UfldConfig::paper(Backbone::ResNet18, 4);
        assert_eq!(
            plan_adaptation(&cfg, PowerMode::MaxN60, 33.3),
            AdaptBudget::Steps { steps: 1 }
        );
    }

    #[test]
    fn relaxed_deadline_affords_more_steps() {
        let cfg = UfldConfig::paper(Backbone::ResNet18, 4);
        match plan_adaptation(&cfg, PowerMode::MaxN60, 55.5) {
            AdaptBudget::Steps { steps } => assert!(steps >= 2, "steps {steps}"),
            other => panic!("expected steps, got {other:?}"),
        }
    }

    #[test]
    fn tight_budget_degrades_to_inference_only_then_infeasible() {
        let cfg = UfldConfig::paper(Backbone::ResNet34, 4);
        // R-34 at 15 W: inference ≈ 77 ms.
        assert_eq!(
            plan_adaptation(&cfg, PowerMode::W15, 90.0),
            AdaptBudget::InferenceOnly
        );
        assert_eq!(
            plan_adaptation(&cfg, PowerMode::W15, 33.3),
            AdaptBudget::Infeasible
        );
    }

    #[test]
    fn fp16_extends_the_feasible_set() {
        // The natural follow-up: with tensor cores, R-34 (and lower power
        // modes) come within the 30 FPS budget.
        let r34 = UfldConfig::paper(Backbone::ResNet34, 4);
        let (t_fp32, ok32) = precision_what_if(&r34, PowerMode::MaxN60, Precision::Fp32);
        let (t_fp16, ok16) = precision_what_if(&r34, PowerMode::MaxN60, Precision::Fp16);
        assert!(!ok32, "fp32 R-34 must miss 30 FPS ({t_fp32:.1} ms)");
        assert!(ok16, "fp16 R-34 should meet 30 FPS ({t_fp16:.1} ms)");
        assert!(t_fp16 < t_fp32 / 1.8);
    }

    #[test]
    fn fp32_what_if_matches_base_model() {
        let cfg = UfldConfig::paper(Backbone::ResNet18, 4);
        let (t, _) = precision_what_if(&cfg, PowerMode::W50, Precision::Fp32);
        let base = AdaptCostModel::paper_scale(&cfg)
            .ld_bn_adapt_frame(PowerMode::W50, 1)
            .total_ms();
        assert!((t - base).abs() < 1e-9);
    }
}
