//! Measured-GEMM ingestion for the cost-model refresh.
//!
//! The seed's roofline efficiencies were hand-estimated. Since PR 1 the
//! workspace emits `BENCH_gemm.json` — real measured throughput of the
//! blocked GEMM over the backbone's im2col shapes — so the efficiencies can
//! be *fitted* instead: how far below the best-achieved rate do typical
//! layer shapes land? That fraction is exactly what [`crate::Efficiency`]
//! encodes, and it transfers between hosts better than absolute GFLOP/s.
//!
//! The build environment has no serde, so this module carries a tiny
//! hand-rolled parser for the flat, machine-generated schema
//! (`[{"shape": [m, k, n], "kernel": "...", "ns_per_iter": …, "gflops": …},
//! …]`). It is deliberately strict about the fields it needs and silent
//! about the ones it does not.

/// One measured GEMM data point from `BENCH_gemm.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct GemmMeasurement {
    /// Product shape `(m, k, n)`.
    pub shape: [usize; 3],
    /// Kernel label (`"blocked"` rows are the tuned engine; `"seed_naive"`
    /// rows are the regression baseline).
    pub kernel: String,
    /// Measured achieved throughput in GFLOP/s.
    pub gflops: f64,
}

impl GemmMeasurement {
    /// `true` for rows measuring the tuned blocked kernel.
    pub fn is_blocked(&self) -> bool {
        self.kernel == "blocked"
    }

    /// `true` for small-`m` products (the batched FC head and other dense
    /// layers); everything wider is treated as conv-shaped (im2col).
    pub fn is_fc_shaped(&self) -> bool {
        self.shape[0] < 16
    }

    /// `true` for rows measuring the `ld_quant` u8×i8 `vpdpbusd` kernel
    /// (the interior-layer fast path). Their `gflops` count an int8 MAC
    /// like an FMA's two FLOPs, so at a matched shape the ratio against a
    /// `"blocked"` row is a direct wall-clock ratio — what
    /// [`crate::roofline::Int8Cal`] fits the measured int8 speedup from.
    pub fn is_int8_u8(&self) -> bool {
        self.kernel == "int8_u8"
    }
}

/// Extracts the value of `"key": …` inside one JSON object body, up to the
/// next comma or closing brace.
fn field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = obj.find(&pat)? + pat.len();
    let rest = obj[start..].trim_start();
    // Arrays keep their brackets; scalars/strings end at `,` or end-of-body.
    if let Some(arr) = rest.strip_prefix('[') {
        let end = arr.find(']')?;
        return Some(&arr[..end]);
    }
    let end = rest.find(',').unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Parses the `BENCH_gemm.json` schema.
///
/// # Errors
///
/// Returns a description of the first malformed object.
pub fn parse_bench_gemm(json: &str) -> Result<Vec<GemmMeasurement>, String> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(open) = rest.find('{') {
        let body_start = open + 1;
        let close = rest[body_start..]
            .find('}')
            .ok_or_else(|| "unterminated object".to_string())?;
        let obj = &rest[body_start..body_start + close];
        rest = &rest[body_start + close + 1..];

        let shape_body = field(obj, "shape").ok_or_else(|| format!("no shape in `{obj}`"))?;
        let mut dims = shape_body.split(',').map(|v| v.trim().parse::<usize>());
        let mut next_dim = |name: &str| {
            dims.next()
                .and_then(Result::ok)
                .ok_or_else(|| format!("bad shape dim {name} in `{shape_body}`"))
        };
        let shape = [next_dim("m")?, next_dim("k")?, next_dim("n")?];
        let kernel = field(obj, "kernel")
            .ok_or_else(|| format!("no kernel in `{obj}`"))?
            .trim_matches('"')
            .to_owned();
        let gflops: f64 = field(obj, "gflops")
            .ok_or_else(|| format!("no gflops in `{obj}`"))?
            .parse()
            .map_err(|e| format!("bad gflops: {e}"))?;
        if !gflops.is_finite() || gflops <= 0.0 {
            return Err(format!("non-positive gflops {gflops}"));
        }
        out.push(GemmMeasurement {
            shape,
            kernel,
            gflops,
        });
    }
    if out.is_empty() {
        return Err("no measurements found".into());
    }
    Ok(out)
}

/// Loads and parses a `BENCH_gemm.json` file.
///
/// # Errors
///
/// Returns a description on I/O or parse failure.
pub fn load_bench_gemm(path: &str) -> Result<Vec<GemmMeasurement>, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    parse_bench_gemm(&json)
}

/// One measured backward-pass data point from `BENCH_backward.json`
/// (emitted by the `backward_step` bench: per-layer and full-model rows,
/// each batch size timed under the pooled schedule and the sequential
/// width-1 reference).
#[derive(Debug, Clone, PartialEq)]
pub struct BackwardMeasurement {
    /// What was timed: a per-layer row (`"conv_stage1"`, `"bn_stage1"`,
    /// `"linear_head"`) or the full UFLD backward (`"model"`).
    pub scope: String,
    /// Images per backward.
    pub batch: usize,
    /// `"parallel"` (production pooled schedule) or `"sequential"`
    /// (width-1 reference via `run_sequential`).
    pub schedule: String,
    /// Measured wall-clock per backward, nanoseconds.
    pub ns_per_iter: f64,
    /// For `"parallel"` rows: sequential time ÷ parallel time at the same
    /// scope and batch. Absent on `"sequential"` rows.
    pub speedup_vs_sequential: Option<f64>,
}

impl BackwardMeasurement {
    /// `true` for full-model rows — the ones the admission cost model
    /// calibrates from (per-layer rows are diagnostic).
    pub fn is_model_scope(&self) -> bool {
        self.scope == "model"
    }

    /// `true` for rows timing the production pooled schedule.
    pub fn is_parallel(&self) -> bool {
        self.schedule == "parallel"
    }
}

/// Parses the `BENCH_backward.json` schema.
///
/// # Errors
///
/// Returns a description of the first malformed object.
pub fn parse_bench_backward(json: &str) -> Result<Vec<BackwardMeasurement>, String> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(open) = rest.find('{') {
        let body_start = open + 1;
        let close = rest[body_start..]
            .find('}')
            .ok_or_else(|| "unterminated object".to_string())?;
        let obj = &rest[body_start..body_start + close];
        rest = &rest[body_start + close + 1..];

        let scope = field(obj, "scope")
            .ok_or_else(|| format!("no scope in `{obj}`"))?
            .trim_matches('"')
            .to_owned();
        let batch: usize = field(obj, "batch")
            .ok_or_else(|| format!("no batch in `{obj}`"))?
            .parse()
            .map_err(|e| format!("bad batch: {e}"))?;
        if batch == 0 {
            return Err("zero batch".into());
        }
        let schedule = field(obj, "schedule")
            .ok_or_else(|| format!("no schedule in `{obj}`"))?
            .trim_matches('"')
            .to_owned();
        let ns_per_iter: f64 = field(obj, "ns_per_iter")
            .ok_or_else(|| format!("no ns_per_iter in `{obj}`"))?
            .parse()
            .map_err(|e| format!("bad ns_per_iter: {e}"))?;
        if !ns_per_iter.is_finite() || ns_per_iter <= 0.0 {
            return Err(format!("non-positive ns_per_iter {ns_per_iter}"));
        }
        let speedup_vs_sequential = match field(obj, "speedup_vs_sequential") {
            Some(v) => {
                let s: f64 = v.parse().map_err(|e| format!("bad speedup: {e}"))?;
                if !s.is_finite() || s <= 0.0 {
                    return Err(format!("non-positive speedup {s}"));
                }
                Some(s)
            }
            None => None,
        };
        out.push(BackwardMeasurement {
            scope,
            batch,
            schedule,
            ns_per_iter,
            speedup_vs_sequential,
        });
    }
    if out.is_empty() {
        return Err("no measurements found".into());
    }
    Ok(out)
}

/// Loads and parses a `BENCH_backward.json` file.
///
/// # Errors
///
/// Returns a description on I/O or parse failure.
pub fn load_bench_backward(path: &str) -> Result<Vec<BackwardMeasurement>, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    parse_bench_backward(&json)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"[
  {"shape": [64, 576, 3136], "kernel": "blocked", "ns_per_iter": 5239997.2, "gflops": 44.124, "speedup_vs_seed": 3.93},
  {"shape": [64, 576, 3136], "kernel": "seed_naive", "ns_per_iter": 20594822.1, "gflops": 11.227},
  {"shape": [4, 1568, 2048], "kernel": "blocked", "ns_per_iter": 204243.6, "gflops": 62.891}
]"#;

    #[test]
    fn parses_the_emitted_schema() {
        let rows = parse_bench_gemm(SAMPLE).expect("parse");
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].shape, [64, 576, 3136]);
        assert!(rows[0].is_blocked());
        assert!((rows[0].gflops - 44.124).abs() < 1e-9);
        assert!(!rows[1].is_blocked());
        assert!(rows[2].is_fc_shaped());
        assert!(!rows[0].is_fc_shaped());
    }

    #[test]
    fn committed_trajectory_parses() {
        // The workspace-root file this module exists to consume.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gemm.json");
        let rows = load_bench_gemm(path).expect("BENCH_gemm.json must stay parseable");
        assert!(rows.iter().any(|r| r.is_blocked()));
        assert!(rows.iter().any(|r| !r.is_blocked()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_bench_gemm("[]").is_err());
        assert!(parse_bench_gemm("{\"kernel\": \"blocked\"}").is_err());
        assert!(
            parse_bench_gemm("{\"shape\": [1, 2, 3], \"kernel\": \"b\", \"gflops\": -1.0}")
                .is_err()
        );
    }

    const BACKWARD_SAMPLE: &str = r#"[
  {"scope": "model", "batch": 8, "schedule": "parallel", "ns_per_iter": 1000.0, "speedup_vs_sequential": 2.5},
  {"scope": "model", "batch": 8, "schedule": "sequential", "ns_per_iter": 2500.0},
  {"scope": "conv_stage1", "batch": 4, "schedule": "parallel", "ns_per_iter": 400.0, "speedup_vs_sequential": 1.9}
]"#;

    #[test]
    fn parses_the_backward_schema() {
        let rows = parse_bench_backward(BACKWARD_SAMPLE).expect("parse");
        assert_eq!(rows.len(), 3);
        assert!(rows[0].is_model_scope() && rows[0].is_parallel());
        assert_eq!(rows[0].batch, 8);
        assert_eq!(rows[0].speedup_vs_sequential, Some(2.5));
        assert!(rows[1].is_model_scope() && !rows[1].is_parallel());
        assert_eq!(rows[1].speedup_vs_sequential, None);
        assert!(!rows[2].is_model_scope());
    }

    #[test]
    fn backward_parser_rejects_garbage() {
        assert!(parse_bench_backward("[]").is_err());
        assert!(parse_bench_backward("{\"scope\": \"model\"}").is_err());
        assert!(parse_bench_backward(
            "{\"scope\": \"model\", \"batch\": 0, \"schedule\": \"parallel\", \"ns_per_iter\": 1.0}"
        )
        .is_err());
        assert!(parse_bench_backward(
            "{\"scope\": \"model\", \"batch\": 1, \"schedule\": \"parallel\", \"ns_per_iter\": 1.0, \"speedup_vs_sequential\": -2.0}"
        )
        .is_err());
    }

    #[test]
    fn committed_backward_trajectory_parses() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_backward.json");
        let rows = load_bench_backward(path).expect("BENCH_backward.json must stay parseable");
        assert!(rows.iter().any(|r| r.is_model_scope() && r.is_parallel()));
        assert!(rows.iter().any(|r| !r.is_parallel()));
    }
}
