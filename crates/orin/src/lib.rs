//! Analytical Nvidia Jetson AGX Orin performance & energy model.
//!
//! Substitutes for the physical board the paper measures in Figure 3: a
//! roofline model over the analytic per-layer costs of the *paper-scale*
//! UFLD models (288×800 input, ResNet-18/34), across the Orin's power
//! modes, for
//!
//! * pure inference,
//! * the LD-BN-ADAPT frame loop (inference + BN-only backward + update),
//! * the SOTA baseline's per-epoch cost (the ">1 hour per epoch" claim),
//! * real-time deadline feasibility (30 FPS / 18 FPS) and the
//!   multi-objective model/power-mode selection discussed in §IV.
//!
//! # Example
//!
//! ```
//! use ld_orin::{AdaptCostModel, PowerMode};
//! use ld_ufld::{Backbone, UfldConfig};
//!
//! let model = AdaptCostModel::paper_scale(&UfldConfig::paper(Backbone::ResNet18, 4));
//! let frame = model.ld_bn_adapt_frame(PowerMode::MaxN60, 1);
//! assert!(frame.total_ms() <= 33.3); // R-18 @ MAXN meets 30 FPS
//! ```

pub mod adapt_cost;
pub mod bench_data;
pub mod deadline;
pub mod pressure;
pub mod roofline;
pub mod scheduler;
pub mod spec;

pub use adapt_cost::{AdaptCostModel, FrameLatency};
pub use bench_data::{
    load_bench_backward, load_bench_gemm, parse_bench_backward, parse_bench_gemm,
    BackwardMeasurement, GemmMeasurement,
};
pub use deadline::{best_configuration, feasibility, Deadline, DesignPoint};
pub use pressure::ShardPressure;
pub use roofline::{BackwardCal, Efficiency, Int8Cal, Roofline};
pub use scheduler::{
    admit_batch, admit_batch_aged, admit_batch_with, plan_adaptation, precision_what_if,
    AdaptBudget, AgedAdmission, BatchAdmission, Precision,
};
pub use spec::{OrinSpec, PowerMode};
