//! End-to-end per-frame latency of inference + adaptation (Figure 3), and
//! the SOTA baseline's epoch cost (the ">1 hour per epoch" claim).

use crate::roofline::{BackwardCal, Int8Cal, Roofline};
use crate::scheduler::Precision;
use crate::spec::PowerMode;
use ld_ufld::cost::{model_costs, totals, LayerCost};
use ld_ufld::UfldConfig;

/// Breakdown of one frame's latency under LD-BN-ADAPT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameLatency {
    /// Host-side preprocessing (decode/resize/normalise) in ms.
    pub preprocess_ms: f64,
    /// Inference forward pass in ms.
    pub inference_ms: f64,
    /// Adaptation forward pass in ms (0 when the inference activations are
    /// reused, i.e. batch size 1).
    pub adapt_forward_ms: f64,
    /// Adaptation backward pass in ms.
    pub backward_ms: f64,
    /// Parameter update in ms.
    pub update_ms: f64,
}

impl FrameLatency {
    /// Total worst-case frame latency in ms (what must meet the deadline).
    pub fn total_ms(&self) -> f64 {
        self.preprocess_ms
            + self.inference_ms
            + self.adapt_forward_ms
            + self.backward_ms
            + self.update_ms
    }

    /// Achievable frames per second.
    pub fn fps(&self) -> f64 {
        1000.0 / self.total_ms()
    }

    /// The latency broken into named components, in pipeline order — the
    /// stage weights tick tracing apportions a tick's busy time over.
    pub fn components(&self) -> [(&'static str, f64); 5] {
        [
            ("preprocess", self.preprocess_ms),
            ("inference", self.inference_ms),
            ("adapt_forward", self.adapt_forward_ms),
            ("backward", self.backward_ms),
            ("update", self.update_ms),
        ]
    }
}

/// Latency model for a UFLD model on Orin.
#[derive(Debug, Clone)]
pub struct AdaptCostModel {
    roofline: Roofline,
    costs: Vec<LayerCost>,
    bn_params: usize,
    all_params: usize,
    /// Measured batch-parallel backward speedups (identity when no bench
    /// trajectory has been fed in).
    bwd_cal: BackwardCal,
    /// Measured int8 kernel speedup over f32 (modelled 8× when none).
    int8_cal: Int8Cal,
}

impl AdaptCostModel {
    /// Builds the model for a UFLD configuration (use the paper-scale
    /// config to reproduce Figure 3).
    pub fn new(cfg: &UfldConfig, roofline: Roofline) -> Self {
        let costs = model_costs(cfg);
        let t = totals(&costs);
        AdaptCostModel {
            roofline,
            costs,
            bn_params: t.bn_params,
            all_params: t.params,
            bwd_cal: BackwardCal::NONE,
            int8_cal: Int8Cal::NONE,
        }
    }

    /// Convenience: paper-scale model on a default AGX Orin.
    pub fn paper_scale(cfg: &UfldConfig) -> Self {
        AdaptCostModel::new(cfg, Roofline::agx_orin())
    }

    /// Applies a measured backward-speedup calibration (fitted from
    /// `BENCH_backward.json` full-model rows, see
    /// [`BackwardCal::from_backward_bench`]): every backward term is divided
    /// by the measured `sequential ÷ parallel` ratio at its batch size, so
    /// batch admission credits the batch-parallel backward instead of
    /// pricing it as `batch ×` the single-image pass.
    pub fn with_backward_cal(mut self, cal: BackwardCal) -> Self {
        self.bwd_cal = cal;
        self
    }

    /// The active backward calibration.
    pub fn backward_cal(&self) -> &BackwardCal {
        &self.bwd_cal
    }

    /// Applies a measured int8 inference-speedup calibration (fitted from
    /// `BENCH_gemm.json`'s matched `int8_u8`-vs-`blocked` conv rows, see
    /// [`Int8Cal::from_gemm_bench`]): every [`Precision::Int8`] cost query
    /// credits the quantized forward with the *measured* kernel ratio
    /// instead of the modelled tensor-core 8×, so batch admission tracks
    /// what the deployed u8 `vpdpbusd` path actually delivers.
    pub fn with_int8_cal(mut self, cal: Int8Cal) -> Self {
        self.int8_cal = cal;
        self
    }

    /// The active int8 calibration.
    pub fn int8_cal(&self) -> &Int8Cal {
        &self.int8_cal
    }

    /// The roofline's backward estimate with the measured parallel-backward
    /// speedup credited.
    fn backward_seconds_cal(&self, mode: PowerMode, batch: usize, train_all: bool) -> f64 {
        self.roofline
            .backward_seconds(&self.costs, mode, batch, train_all)
            / self.bwd_cal.speedup_at(batch)
    }

    /// The underlying roofline.
    pub fn roofline(&self) -> &Roofline {
        &self.roofline
    }

    /// Pure inference latency (no adaptation) in ms.
    pub fn inference_ms(&self, mode: PowerMode) -> f64 {
        self.roofline.spec.host_preprocess_ms
            + 1e3 * self.roofline.forward_seconds(&self.costs, mode, 1)
    }

    /// One batched f32 forward in ms, with no host-preprocess term — the
    /// cost of an *extra* pass over already-ingested frames (e.g. the
    /// server's post-step entropy telemetry re-measure).
    pub fn forward_only_ms(&self, mode: PowerMode, batch: usize) -> f64 {
        1e3 * self.roofline.forward_seconds(&self.costs, mode, batch)
    }

    /// Worst-case frame latency of **LD-BN-ADAPT** (inference followed by
    /// adaptation) at the given adaptation batch size.
    ///
    /// With `batch_size == 1` the backward pass reuses the inference
    /// forward's activations (no extra forward) — the deployment the paper
    /// times in Figure 3. With larger batches, the adaptation step runs a
    /// fresh forward over the collected batch; that cost lands on the
    /// batch-completing frame (worst case).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn ld_bn_adapt_frame(&self, mode: PowerMode, batch_size: usize) -> FrameLatency {
        assert!(batch_size > 0, "ld_bn_adapt_frame: zero batch size");
        let fwd1 = 1e3 * self.roofline.forward_seconds(&self.costs, mode, 1);
        let (adapt_fwd, bwd) = if batch_size == 1 {
            (0.0, 1e3 * self.backward_seconds_cal(mode, 1, false))
        } else {
            (
                1e3 * self.roofline.forward_seconds(&self.costs, mode, batch_size),
                1e3 * self.backward_seconds_cal(mode, batch_size, false),
            )
        };
        FrameLatency {
            preprocess_ms: self.roofline.spec.host_preprocess_ms,
            inference_ms: fwd1,
            adapt_forward_ms: adapt_fwd,
            backward_ms: bwd,
            update_ms: 1e3 * self.roofline.update_seconds(self.bn_params, mode),
        }
    }

    /// Latency of one **multi-stream server tick**: `batch` camera frames
    /// (one per admitted stream) are host-preprocessed, packed, and pushed
    /// through a single batched forward; when `adapt` is set, one batched
    /// BN-only backward and the shared parameter update follow. This is the
    /// cost query the batch-admission logic minimises against the deadline —
    /// unlike [`AdaptCostModel::ld_bn_adapt_frame`], which models the
    /// single-camera loop where a batch accumulates *across* frames.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn batched_tick(&self, mode: PowerMode, batch: usize, adapt: bool) -> FrameLatency {
        self.batched_tick_at(mode, batch, adapt, Precision::Fp32)
    }

    /// The roofline with efficiencies scaled for `precision` execution
    /// ([`Precision::scale_efficiency_cal`] — the same maths as
    /// [`crate::precision_what_if`], with the measured int8 calibration
    /// applied when one has been fed in).
    fn roofline_at(&self, precision: Precision) -> Roofline {
        let mut rl = self.roofline;
        rl.eff = precision.scale_efficiency_cal(rl.eff, &self.int8_cal);
        rl
    }

    /// [`AdaptCostModel::batched_tick`] with the **inference forward run at
    /// `infer` precision** — the cost query for a server with the
    /// `ld_quant` fast path enabled.
    ///
    /// Adaptation stays f32: on an adapting tick the quantized server pays
    /// the cheap quantized forward for serving *plus* a full-precision
    /// forward to populate the backward's activation caches, so for
    /// `infer != Fp32` an f32 `adapt_forward_ms` term appears alongside the
    /// backward and update (at `Fp32` the inference activations are reused
    /// and the term stays zero, matching [`AdaptCostModel::batched_tick`]
    /// exactly).
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn batched_tick_at(
        &self,
        mode: PowerMode,
        batch: usize,
        adapt: bool,
        infer: Precision,
    ) -> FrameLatency {
        self.mixed_tick_at(mode, batch, if adapt { batch } else { 0 }, infer)
    }

    /// The general mixed-tick cost: `batch` frames served at `infer`
    /// precision, of which `adapted` triggered the f32 adaptation step.
    ///
    /// This is the post-hoc query the measured-latency feedback compares
    /// ticks against — admission itself uses the all-triggered worst case
    /// ([`AdaptCostModel::batched_tick_at`]), but a served tick's *actual*
    /// work depends on how many streams triggered:
    ///
    /// * at `Fp32`, the backward always spans the whole batch (the masked
    ///   entropy gradient reuses the batched inference activations), so
    ///   only `adapted == 0` changes the cost;
    /// * at a quantized precision, the f32 forward + backward run over the
    ///   triggered sub-batch only.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or `adapted > batch`.
    pub fn mixed_tick_at(
        &self,
        mode: PowerMode,
        batch: usize,
        adapted: usize,
        infer: Precision,
    ) -> FrameLatency {
        assert!(batch > 0, "mixed_tick: zero batch");
        assert!(adapted <= batch, "mixed_tick: {adapted} adapted of {batch}");
        let infer_rl = self.roofline_at(infer);
        let (adapt_forward_ms, backward_ms, update_ms) = if adapted == 0 {
            (0.0, 0.0, 0.0)
        } else {
            let (adapt_fwd, bwd_batch) = if infer == Precision::Fp32 {
                (0.0, batch)
            } else {
                (
                    1e3 * self.roofline.forward_seconds(&self.costs, mode, adapted),
                    adapted,
                )
            };
            (
                adapt_fwd,
                1e3 * self.backward_seconds_cal(mode, bwd_batch, false),
                1e3 * self.roofline.update_seconds(self.bn_params, mode),
            )
        };
        FrameLatency {
            preprocess_ms: self.roofline.spec.host_preprocess_ms * batch as f64,
            inference_ms: 1e3 * infer_rl.forward_seconds(&self.costs, mode, batch),
            adapt_forward_ms,
            backward_ms,
            update_ms,
        }
    }

    /// Energy per frame in millijoules at a power mode (power budget ×
    /// frame time).
    pub fn energy_mj(&self, mode: PowerMode, batch_size: usize) -> f64 {
        self.ld_bn_adapt_frame(mode, batch_size).total_ms() * mode.watts()
    }

    /// One **SOTA-baseline epoch** on Orin, in seconds (§II: ">1 hour").
    ///
    /// Per sample the baseline pays: host preprocessing of a full-resolution
    /// frame, an embedding forward, a training forward and a full backward,
    /// and the optimizer update of *all* parameters; plus a k-means pass
    /// over all target embeddings per epoch. `samples` should be the
    /// benchmark's source+target training-set size (tens of thousands for
    /// CARLANE).
    pub fn sota_epoch_seconds(
        &self,
        mode: PowerMode,
        samples: usize,
        embed_dim: usize,
        k: usize,
    ) -> f64 {
        let fwd = self.roofline.forward_seconds(&self.costs, mode, 1);
        let bwd = self.roofline.backward_seconds(&self.costs, mode, 1, true);
        let upd = self.roofline.update_seconds(self.all_params, mode);
        // Full-resolution (1280×720) host pipeline per sample: decode,
        // resize, augment — dominates small-batch training on Jetson-class
        // hosts. Calibrated to ~35 ms/sample.
        let host = 0.035;
        let per_sample = host + /*embedding*/ fwd + /*train fwd*/ fwd + bwd + upd;
        // k-means: iters × k × n × dim multiply-adds on GPU.
        let kmeans_flops = 2.0 * 20.0 * (k * samples * embed_dim) as f64;
        let kmeans = kmeans_flops / (self.roofline.spec.peak_flops(mode) * 0.3);
        samples as f64 * per_sample + kmeans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_ufld::Backbone;

    fn model(backbone: Backbone) -> AdaptCostModel {
        AdaptCostModel::paper_scale(&UfldConfig::paper(backbone, 4))
    }

    #[test]
    fn fig3_shape_r18_meets_30fps_only_at_maxn() {
        let m = model(Backbone::ResNet18);
        let t60 = m.ld_bn_adapt_frame(PowerMode::MaxN60, 1).total_ms();
        let t50 = m.ld_bn_adapt_frame(PowerMode::W50, 1).total_ms();
        assert!(t60 <= 33.3, "R-18@60W must meet 30 FPS, got {t60:.1} ms");
        assert!(t50 > 33.3, "R-18@50W must miss 30 FPS, got {t50:.1} ms");
        assert!(t50 <= 55.5, "R-18@50W must meet 18 FPS, got {t50:.1} ms");
    }

    #[test]
    fn fig3_shape_r34_meets_18fps_only_at_maxn() {
        let m = model(Backbone::ResNet34);
        let t60 = m.ld_bn_adapt_frame(PowerMode::MaxN60, 1).total_ms();
        let t50 = m.ld_bn_adapt_frame(PowerMode::W50, 1).total_ms();
        assert!(
            t60 > 33.3,
            "R-34 must miss 30 FPS even at MAXN, got {t60:.1} ms"
        );
        assert!(t60 <= 55.5, "R-34@60W must meet 18 FPS, got {t60:.1} ms");
        assert!(t50 > 55.5, "R-34@50W must miss 18 FPS, got {t50:.1} ms");
    }

    #[test]
    fn low_power_modes_miss_both_deadlines() {
        for b in [Backbone::ResNet18, Backbone::ResNet34] {
            let m = model(b);
            for mode in [PowerMode::W15, PowerMode::W30] {
                let t = m.ld_bn_adapt_frame(mode, 1).total_ms();
                assert!(t > 55.5, "{b:?}@{mode} should miss 18 FPS, got {t:.1} ms");
            }
        }
    }

    #[test]
    fn adaptation_overhead_is_comparable_to_inference() {
        // The paper's point: adaptation fits in the same frame budget.
        let m = model(Backbone::ResNet18);
        let f = m.ld_bn_adapt_frame(PowerMode::MaxN60, 1);
        assert!(f.backward_ms > 0.3 * f.inference_ms);
        assert!(f.backward_ms < 3.0 * f.inference_ms);
        assert!(f.update_ms < 0.1 * f.inference_ms, "BN update must be tiny");
    }

    #[test]
    fn batch4_worst_case_frame_is_slower_than_batch1() {
        let m = model(Backbone::ResNet18);
        let f1 = m.ld_bn_adapt_frame(PowerMode::MaxN60, 1).total_ms();
        let f4 = m.ld_bn_adapt_frame(PowerMode::MaxN60, 4).total_ms();
        assert!(
            f4 > f1,
            "batch-completing frame must pay more: {f4} vs {f1}"
        );
    }

    #[test]
    fn batched_tick_amortises_but_stays_monotonic() {
        let m = model(Backbone::ResNet18);
        let t1 = m.batched_tick(PowerMode::MaxN60, 1, true).total_ms();
        let t4 = m.batched_tick(PowerMode::MaxN60, 4, true).total_ms();
        // A 4-stream tick costs more than one frame but less than four
        // single-frame loops (parameters/weights are read once per kernel).
        assert!(t4 > t1, "batch must cost more: {t4} vs {t1}");
        assert!(t4 < 4.0 * t1, "batch must amortise: {t4} vs 4×{t1}");
        // Shedding adaptation removes the backward + update entirely.
        let infer4 = m.batched_tick(PowerMode::MaxN60, 4, false);
        assert_eq!(infer4.backward_ms, 0.0);
        assert_eq!(infer4.update_ms, 0.0);
        assert!(infer4.total_ms() < t4);
    }

    #[test]
    fn batched_tick_single_frame_matches_frame_loop_compute() {
        // At batch 1 with adaptation, the tick is exactly the bs=1 frame
        // loop (inference + reused-activations backward + update).
        let m = model(Backbone::ResNet18);
        let tick = m.batched_tick(PowerMode::W50, 1, true);
        let frame = m.ld_bn_adapt_frame(PowerMode::W50, 1);
        assert!((tick.total_ms() - frame.total_ms()).abs() < 1e-9);
    }

    #[test]
    fn energy_rises_with_power_mode_for_fixed_work() {
        // Higher modes are faster but the power increase dominates for
        // this workload (energy = W × t).
        let m = model(Backbone::ResNet18);
        let e15 = m.energy_mj(PowerMode::W15, 1);
        let e60 = m.energy_mj(PowerMode::MaxN60, 1);
        assert!(e15 > 0.0 && e60 > 0.0);
    }

    #[test]
    fn sota_epoch_exceeds_one_hour_at_carlane_scale() {
        // MoLane: 80k source + 43.8k target ≈ 124k samples per epoch.
        let m = model(Backbone::ResNet18);
        let t = m.sota_epoch_seconds(PowerMode::MaxN60, 123_843, 2048, 30);
        assert!(t > 3600.0, "SOTA epoch should exceed 1 h, got {t:.0} s");
    }

    #[test]
    fn fps_helper_inverts_total() {
        let m = model(Backbone::ResNet18);
        let f = m.ld_bn_adapt_frame(PowerMode::MaxN60, 1);
        assert!((f.fps() - 1000.0 / f.total_ms()).abs() < 1e-9);
    }
}
