//! **`ld_fault`** — deterministic, seeded fault injection for the serving
//! stack.
//!
//! The paper's pitch is *safety-critical* on-vehicle adaptation; a fleet
//! server that falls over on one stuck camera or one NaN gradient is not
//! deployable. This crate makes every failure mode a **reproducible test
//! input**, in the spirit of `ld_carlane`'s deterministic
//! `DriftSchedule`s: a [`FaultScript`] is a seeded
//! [`FrameTap`](ld_ingest::FrameTap) that plugs into a
//! [`CameraProducer`](ld_ingest::CameraProducer) (via
//! [`IngestFrontEnd::manual_with_taps`](ld_ingest::IngestFrontEnd::manual_with_taps))
//! and replays the exact same fault trajectory run over run — which is
//! what lets the chaos suite assert *bitwise* isolation of healthy
//! streams.
//!
//! # Fault taxonomy
//!
//! Scheduling faults rule on frame **delivery** (see
//! [`TapVerdict`](ld_ingest::TapVerdict)):
//!
//! * [`Fault::Stall`] — the camera goes silent for a window; sequence
//!   numbers do not advance, so the stream resumes seamlessly. Drives the
//!   ingest health machine through `Stalled`/`Dead`.
//! * [`Fault::Death`] — a stall that never ends.
//! * [`Fault::Lossy`] — frames are lost in transit; sequence numbers *do*
//!   advance, so downstream observes gaps (drop accounting, `Degraded`).
//! * [`Fault::Restart`] — camera firmware reboot: the sequence counter
//!   restarts at 0, exercising
//!   [`SeqTracker::regressions`](ld_ingest::SeqTracker::regressions).
//!
//! Corruption faults mutate **pixels** in place (the frame still
//! delivers; the server's integrity guard must catch it):
//!
//! * [`Fault::NanPixels`] / [`Fault::InfPixels`] — non-finite values at a
//!   seeded per-frame rate, the classic DMA/ISP failure.
//! * [`Fault::BitFlips`] — random single-bit flips in the pixel words.
//! * [`Fault::Freeze`] — the frame at the window start repeats verbatim
//!   (a wedged capture pipeline serving its last DMA buffer).
//! * [`Fault::DriftStorm`] — violent gain/bias oscillation, the
//!   appearance-level stressor for the adaptation governor (also
//!   available as a schedule via [`storm_schedule`] for
//!   `StreamSet`-level composition).
//!
//! # The health state machine downstream
//!
//! The ingest front end classifies each camera
//! `Healthy → Degraded → Stalled → Dead` with exponential-backoff
//! probation before re-promotion (see [`ld_ingest::CamHealthMachine`]);
//! `Dead` cameras are excluded from the drain via
//! [`dead_mask`](ld_ingest::IngestFrontEnd::dead_mask) so they cost zero
//! tick budget. Server-side, `ld_adapt::AdaptServer`'s self-healing layer
//! rejects non-finite/frozen frames before the batched forward and
//! quarantines diverging streams (rollback + adaptation cooldown with
//! backoff) — per-stream fault telemetry lands in its `StreamReport`.
//!
//! # How to write a chaos test
//!
//! 1. Build the workload twice from the same seeds: once fault-free, once
//!    with a [`FaultScript`] tap on the faulted camera(s). Use the manual
//!    clock (`IngestFrontEnd::manual_with_taps`) — wall-clock timing must
//!    never enter the comparison.
//! 2. Run both to completion, then compare the **healthy** streams across
//!    runs: bank bytes (`stream_bank(i).to_bytes()`), reference entropy
//!    (`f32::to_bits`), per-stream stats and reports. In banked mode each
//!    lane normalises with per-image statistics, so healthy lanes must be
//!    **bitwise identical** — any drift means fault state leaked across
//!    stream isolation.
//! 3. Assert the *faulted* stream's telemetry shows the injected faults
//!    (rejected frames, quarantine ticks, health trajectory) and that
//!    recovery happens after the fault window closes.
//!
//! ```
//! use ld_carlane::{Benchmark, FrameSpec, StreamSet};
//! use ld_fault::{Fault, FaultScript};
//! use ld_ingest::{IngestConfig, IngestFrontEnd};
//!
//! let streams = StreamSet::drifting(Benchmark::MoLane, FrameSpec::new(32, 16, 6, 4, 2), 2, 8, 7);
//! let script = FaultScript::new(0xFA17).with(Fault::NanPixels { from: 2, frames: 3, rate: 0.05 });
//! let mut fe = IngestFrontEnd::manual_with_taps(
//!     &streams,
//!     &IngestConfig::new(1_000_000),
//!     vec![(1, Box::new(script))],
//! );
//! fe.next_tick();
//! let frames = fe.drain();
//! assert_eq!(frames.len(), 2); // tick 0 is clean on both cameras
//! ```

use ld_carlane::{AppearanceRanges, DriftPhase, DriftSchedule, LabeledFrame};
use ld_ingest::{FrameTap, StampedFrame, TapVerdict};
use ld_tensor::rng::{mix_seed, SeededRng};

/// One injected failure mode, windowed on the camera's own frame index
/// (monotone even across sequence restarts, so scripts stay reproducible).
/// See the module doc for the taxonomy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Silence for `frames` frames starting at `from`: nothing delivered,
    /// sequence numbers pause (seamless resume).
    Stall {
        /// First silent frame index.
        from: u64,
        /// Window length in frames.
        frames: u64,
    },
    /// The camera dies at `from` and never delivers again.
    Death {
        /// First dead frame index.
        from: u64,
    },
    /// Frames lost in transit for the window: sequence numbers advance,
    /// downstream sees gaps.
    Lossy {
        /// First lost frame index.
        from: u64,
        /// Window length in frames.
        frames: u64,
    },
    /// Firmware reboot at exactly frame `at`: delivery continues but the
    /// sequence counter restarts at 0.
    Restart {
        /// Frame index of the reboot.
        at: u64,
    },
    /// A seeded fraction of pixels become NaN for the window.
    NanPixels {
        /// First corrupted frame index.
        from: u64,
        /// Window length in frames.
        frames: u64,
        /// Fraction of pixels corrupted per frame, in `(0, 1]` (at least
        /// one pixel per frame).
        rate: f32,
    },
    /// A seeded fraction of pixels become +∞ for the window.
    InfPixels {
        /// First corrupted frame index.
        from: u64,
        /// Window length in frames.
        frames: u64,
        /// Fraction of pixels corrupted per frame, in `(0, 1]`.
        rate: f32,
    },
    /// Seeded single-bit flips in the raw f32 pixel words (may or may not
    /// produce non-finite values — exactly like real memory corruption).
    BitFlips {
        /// First corrupted frame index.
        from: u64,
        /// Window length in frames.
        frames: u64,
        /// Bit flips per frame.
        flips: u32,
    },
    /// The frame at `from` repeats verbatim for the whole window (wedged
    /// capture pipeline).
    Freeze {
        /// First frozen frame index.
        from: u64,
        /// Window length in frames.
        frames: u64,
    },
    /// Violent deterministic gain/bias oscillation of the pixels — an
    /// appearance storm that stresses the adaptation governor without
    /// breaking frame integrity.
    DriftStorm {
        /// First stormy frame index.
        from: u64,
        /// Window length in frames.
        frames: u64,
        /// Peak multiplicative swing (0.5 ⇒ gain oscillates in [0.5, 1.5]).
        gain: f32,
    },
}

fn in_window(k: u64, from: u64, frames: u64) -> bool {
    k >= from && k - from < frames
}

/// A seeded, scripted fault injector: a list of [`Fault`]s applied to one
/// camera's frame stream through the [`FrameTap`] seam. Corruption faults
/// compose (every matching window mutates the pixels, in script order);
/// scheduling faults resolve by severity — silence (`Stall`/`Death`)
/// beats `Restart` beats `Lossy`.
#[derive(Debug)]
pub struct FaultScript {
    seed: u64,
    faults: Vec<Fault>,
    frozen: Option<LabeledFrame>,
}

impl FaultScript {
    /// An empty script (injects nothing) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultScript {
            seed,
            faults: Vec::new(),
            frozen: None,
        }
    }

    /// Adds a fault (builder style).
    pub fn with(mut self, fault: Fault) -> Self {
        if let Fault::NanPixels { rate, .. } | Fault::InfPixels { rate, .. } = fault {
            assert!(
                rate > 0.0 && rate <= 1.0,
                "FaultScript: pixel-corruption rate {rate} outside (0, 1]"
            );
        }
        self.faults.push(fault);
        self
    }

    /// The script's faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Convenience: a camera that dies at frame `at` (the chaos demo's
    /// dead camera).
    pub fn dead_camera(seed: u64, at: u64) -> Self {
        Self::new(seed).with(Fault::Death { from: at })
    }

    /// Convenience: a camera streaming heavily NaN-corrupted frames from
    /// `from` for `frames` frames (the chaos demo's poisoned camera).
    pub fn nan_camera(seed: u64, from: u64, frames: u64) -> Self {
        Self::new(seed).with(Fault::NanPixels {
            from,
            frames,
            rate: 0.05,
        })
    }

    fn corrupt(&mut self, k: u64, frame: &mut StampedFrame) {
        for fi in 0..self.faults.len() {
            match self.faults[fi] {
                Fault::NanPixels { from, frames, rate } if in_window(k, from, frames) => {
                    splatter(self.seed, fi as u64, k, &mut frame.frame, rate, f32::NAN);
                }
                Fault::InfPixels { from, frames, rate } if in_window(k, from, frames) => {
                    splatter(
                        self.seed,
                        fi as u64,
                        k,
                        &mut frame.frame,
                        rate,
                        f32::INFINITY,
                    );
                }
                Fault::BitFlips {
                    from,
                    frames,
                    flips,
                } if in_window(k, from, frames) => {
                    let mut rng = SeededRng::new(mix_seed(mix_seed(self.seed, fi as u64), k));
                    let px = frame.frame.image.as_mut_slice();
                    for _ in 0..flips {
                        let i = rng.index(px.len());
                        let bit = rng.index(32) as u32;
                        px[i] = f32::from_bits(px[i].to_bits() ^ (1 << bit));
                    }
                }
                Fault::Freeze { from, frames } if in_window(k, from, frames) => {
                    if k == from {
                        self.frozen = Some(frame.frame.clone());
                    }
                    if let Some(frozen) = &self.frozen {
                        frame.frame = frozen.clone();
                    }
                }
                Fault::DriftStorm { from, frames, gain } if in_window(k, from, frames) => {
                    let t = (k - from) as f32;
                    let g = 1.0 + gain * (t * 0.9).sin();
                    let b = 0.25 * gain * (t * 0.45 + 1.0).sin();
                    for px in frame.frame.image.as_mut_slice() {
                        *px = (*px * g + b).clamp(0.0, 1.0);
                    }
                }
                _ => {}
            }
        }
    }

    fn verdict(&self, k: u64) -> TapVerdict {
        let mut verdict = TapVerdict::Deliver;
        for fault in &self.faults {
            let v = match *fault {
                Fault::Death { from } if k >= from => TapVerdict::Suppress,
                Fault::Stall { from, frames } if in_window(k, from, frames) => TapVerdict::Suppress,
                Fault::Restart { at } if k == at => TapVerdict::Restart,
                Fault::Lossy { from, frames } if in_window(k, from, frames) => TapVerdict::Lose,
                _ => TapVerdict::Deliver,
            };
            // Severity: silence > restart > loss > normal delivery.
            let rank = |v: TapVerdict| match v {
                TapVerdict::Suppress => 3,
                TapVerdict::Restart => 2,
                TapVerdict::Lose => 1,
                TapVerdict::Deliver => 0,
            };
            if rank(v) > rank(verdict) {
                verdict = v;
            }
        }
        verdict
    }
}

impl FrameTap for FaultScript {
    fn tap(&mut self, k: u64, frame: &mut StampedFrame) -> TapVerdict {
        let verdict = self.verdict(k);
        // Pixels only matter for frames that will actually deliver.
        if matches!(verdict, TapVerdict::Deliver | TapVerdict::Restart) {
            self.corrupt(k, frame);
        }
        verdict
    }
}

/// Corrupts `ceil(rate · len)` seeded pixel positions with `value`.
fn splatter(seed: u64, salt: u64, k: u64, frame: &mut LabeledFrame, rate: f32, value: f32) {
    let px = frame.image.as_mut_slice();
    let count = ((rate * px.len() as f32).ceil() as usize).clamp(1, px.len());
    let mut rng = SeededRng::new(mix_seed(mix_seed(seed, salt), k));
    for _ in 0..count {
        px[rng.index(px.len())] = value;
    }
}

/// A drift **storm** as a `StreamSet`-composable schedule: the appearance
/// slams between a washed-out glare extreme and a near-black extreme every
/// `period` frames — the schedule-level twin of [`Fault::DriftStorm`],
/// for stressing the governor through the normal rendering path.
///
/// # Panics
///
/// Panics if `frames == 0` or `period == 0`.
pub fn storm_schedule(frames: usize, period: usize) -> DriftSchedule {
    assert!(frames > 0, "storm_schedule: zero frames");
    assert!(period > 0, "storm_schedule: zero period");
    let mut bright = AppearanceRanges::molane_target().base().clone();
    bright.brightness += 0.35;
    bright.contrast *= 1.6;
    bright.sky = [0.95, 0.95, 0.9];
    let mut dark = AppearanceRanges::molane_target().base().clone();
    dark.brightness -= 0.3;
    dark.contrast *= 0.45;
    dark.sky = [0.05, 0.05, 0.08];
    let mut phases = Vec::new();
    let mut at = 0usize;
    let mut i = 0usize;
    while at < frames {
        let (name, app) = if i.is_multiple_of(2) {
            (format!("storm-glare-{i}"), bright.clone())
        } else {
            (format!("storm-dark-{i}"), dark.clone())
        };
        phases.push(DriftPhase {
            name,
            at_frame: at,
            appearance: app,
        });
        at += period;
        i += 1;
    }
    DriftSchedule::new(phases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_carlane::{Benchmark, FrameSpec, StreamSet};
    use ld_ingest::{IngestConfig, IngestFrontEnd};

    fn tiny_streams(n: usize) -> StreamSet {
        StreamSet::drifting(Benchmark::MoLane, FrameSpec::new(32, 16, 6, 4, 2), n, 16, 5)
    }

    fn run_tapped(script: Option<FaultScript>, ticks: usize) -> Vec<Vec<(usize, u64, Vec<u32>)>> {
        let streams = tiny_streams(2);
        let cfg = IngestConfig::new(1_000_000).without_jitter();
        let taps: Vec<(usize, Box<dyn FrameTap>)> = match script {
            Some(s) => vec![(1, Box::new(s) as Box<dyn FrameTap>)],
            None => Vec::new(),
        };
        let mut fe = IngestFrontEnd::manual_with_taps(&streams, &cfg, taps);
        let mut out = Vec::new();
        for _ in 0..ticks {
            fe.next_tick();
            let frames = fe
                .drain()
                .into_iter()
                .map(|f| {
                    (
                        f.cam,
                        f.seq,
                        f.frame
                            .image
                            .as_slice()
                            .iter()
                            .map(|p| p.to_bits())
                            .collect(),
                    )
                })
                .collect();
            out.push(frames);
            fe.record_busy(0);
        }
        out
    }

    #[test]
    fn scripts_are_bitwise_reproducible() {
        let mk = || {
            FaultScript::new(7)
                .with(Fault::NanPixels {
                    from: 1,
                    frames: 2,
                    rate: 0.03,
                })
                .with(Fault::BitFlips {
                    from: 4,
                    frames: 2,
                    flips: 3,
                })
        };
        assert_eq!(run_tapped(Some(mk()), 8), run_tapped(Some(mk()), 8));
    }

    #[test]
    fn faults_on_one_camera_leave_the_other_bitwise_untouched() {
        let chaos = run_tapped(
            Some(
                FaultScript::new(3)
                    .with(Fault::Stall { from: 2, frames: 3 })
                    .with(Fault::NanPixels {
                        from: 6,
                        frames: 2,
                        rate: 0.1,
                    }),
            ),
            8,
        );
        let clean = run_tapped(None, 8);
        for (tick, (c, f)) in chaos.iter().zip(&clean).enumerate() {
            let cam0_chaos: Vec<_> = c.iter().filter(|e| e.0 == 0).collect();
            let cam0_clean: Vec<_> = f.iter().filter(|e| e.0 == 0).collect();
            assert_eq!(cam0_chaos, cam0_clean, "cam 0 diverged at tick {tick}");
        }
    }

    #[test]
    fn nan_fault_poisons_exactly_the_window() {
        let runs = run_tapped(
            Some(FaultScript::new(11).with(Fault::NanPixels {
                from: 2,
                frames: 3,
                rate: 0.02,
            })),
            8,
        );
        for (tick, frames) in runs.iter().enumerate() {
            let cam1 = frames.iter().find(|e| e.0 == 1).expect("cam 1 delivers");
            let has_nan = cam1.2.iter().any(|&b| f32::from_bits(b).is_nan());
            assert_eq!(
                has_nan,
                (2..5).contains(&tick),
                "tick {tick}: NaN presence must match the fault window"
            );
        }
    }

    #[test]
    fn death_silences_and_restart_regresses() {
        let runs = run_tapped(
            Some(
                FaultScript::new(5)
                    .with(Fault::Restart { at: 3 })
                    .with(Fault::Death { from: 6 }),
            ),
            10,
        );
        for (tick, frames) in runs.iter().enumerate() {
            let cam1: Vec<_> = frames.iter().filter(|e| e.0 == 1).collect();
            if tick >= 6 {
                assert!(cam1.is_empty(), "tick {tick}: the camera is dead");
            } else {
                let seq = cam1[0].1;
                let want = if tick < 3 {
                    tick as u64
                } else {
                    tick as u64 - 3
                };
                assert_eq!(seq, want, "tick {tick}: reboot restarts the counter");
            }
        }
    }

    #[test]
    fn freeze_repeats_the_window_start_frame() {
        let runs = run_tapped(
            Some(FaultScript::new(2).with(Fault::Freeze { from: 2, frames: 4 })),
            8,
        );
        let cam1_at = |t: usize| {
            runs[t]
                .iter()
                .find(|e| e.0 == 1)
                .expect("cam 1 delivers")
                .2
                .clone()
        };
        assert_eq!(cam1_at(3), cam1_at(2), "frozen");
        assert_eq!(cam1_at(5), cam1_at(2), "still frozen");
        assert_ne!(cam1_at(6), cam1_at(2), "thawed");
        assert_ne!(cam1_at(1), cam1_at(2), "pre-window frames are live");
    }

    #[test]
    fn storm_schedule_oscillates_between_extremes() {
        let sched = storm_schedule(20, 5);
        assert!(sched.phases().len() >= 4);
        let a = sched.appearance_at(0);
        let b = sched.appearance_at(5);
        assert!(
            (a.brightness - b.brightness).abs() > 0.3,
            "consecutive storm phases must be far apart"
        );
        assert!(sched.phase_name_at(0).starts_with("storm-"));
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn rejects_nonsense_corruption_rate() {
        let _ = FaultScript::new(1).with(Fault::NanPixels {
            from: 0,
            frames: 1,
            rate: 0.0,
        });
    }
}
