//! # LD-BN-ADAPT — facade crate
//!
//! Reproduction of *"Real-Time Fully Unsupervised Domain Adaptation for Lane
//! Detection in Autonomous Driving"* (DATE 2023). This crate re-exports the
//! whole workspace under one roof; see the individual crates for details:
//!
//! * [`tensor`] — dense `f32` tensors, GEMM, im2col ([`ld_tensor`])
//! * [`nn`] — layers/losses/optimizers with hand-derived backprop ([`ld_nn`])
//! * [`cluster`] — k-means (SOTA-baseline substrate) ([`ld_cluster`])
//! * [`ufld`] — the Ultra-Fast Lane Detection model ([`ld_ufld`])
//! * [`carlane`] — synthetic CARLANE sim-to-real benchmarks ([`ld_carlane`])
//! * [`ingest`] — real-time frame ingest: lock-free per-camera mailboxes,
//!   tick scheduling, backpressure telemetry, camera health state machine
//!   ([`ld_ingest`])
//! * [`fault`] — deterministic seeded fault injection: camera
//!   stall/death/restart, frame corruption, drift storms ([`ld_fault`])
//! * [`adapt`] — **the paper's contribution**: LD-BN-ADAPT, baselines,
//!   ablations and the evaluation harness ([`ld_adapt`])
//! * [`orin`] — the Jetson AGX Orin roofline latency/energy model
//!   ([`ld_orin`])
//! * [`quant`] — the int8 quantized inference subsystem ([`ld_quant`])
//! * [`fleet`] — sharded fleet serving: K in-process server shards under
//!   one control plane, with live camera migration and a pressure-driven
//!   rebalancer ([`ld_fleet`])
//! * [`obs`] — deterministic observability: metrics registry, log2
//!   histograms, tick tracing and Perfetto export ([`ld_obs`])
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`; in short:
//!
//! ```no_run
//! use ld_bn_adapt::prelude::*;
//!
//! // Build a (scaled) UFLD model, pre-train on the simulated source domain,
//! // then run the LD-BN-ADAPT online loop over a target stream.
//! let cfg = UfldConfig::scaled(Backbone::ResNet18, 2);
//! let model = UfldModel::new(&cfg, 42);
//! ```

pub use ld_adapt as adapt;
pub use ld_carlane as carlane;
pub use ld_cluster as cluster;
pub use ld_fault as fault;
pub use ld_fleet as fleet;
pub use ld_ingest as ingest;
pub use ld_nn as nn;
pub use ld_obs as obs;
pub use ld_orin as orin;
pub use ld_quant as quant;
pub use ld_tensor as tensor;
pub use ld_ufld as ufld;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use ld_adapt::*;
    pub use ld_carlane::{Benchmark, Domain};
    pub use ld_ingest::{IngestConfig, IngestFrontEnd, OverflowPolicy};
    pub use ld_nn::{BnStatsPolicy, Layer, Mode, ParamFilter};
    pub use ld_quant::{QuantUfldModel, QuantizeModel};
    pub use ld_tensor::Tensor;
    pub use ld_ufld::{Backbone, UfldConfig, UfldModel};
}
